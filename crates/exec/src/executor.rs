//! Data-parallel execution backends.
//!
//! The samplers express their bulk work (generate N proposals, score P site
//! patterns, evaluate M posterior terms) as pure per-item closures; the
//! [`Backend`] decides whether that work runs serially or on the rayon
//! thread pool. This mirrors the structure of the CUDA implementation, where
//! the same loops are expressed as kernels with one thread per item.
//!
//! Backends are selected by value (or parsed from CLI-style names) and
//! passed down to whatever owns the loop — the seam a device backend plugs
//! into later:
//!
//! ```
//! use exec::Backend;
//!
//! // Parse a user-facing name, inspect it, and run a data-parallel map.
//! let backend: Backend = "serial".parse().unwrap();
//! assert_eq!(backend, Backend::Serial);
//! assert_eq!(backend.threads(), 1);
//! let squares = backend.map_indexed(4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//!
//! // The default backend is the rayon thread pool; results are identical.
//! assert_eq!(Backend::default(), Backend::Rayon);
//! assert_eq!(Backend::Rayon.map_indexed(4, |i| i * i), squares);
//! ```

use std::fmt;
use std::str::FromStr;

use rayon::prelude::*;

/// Where data-parallel work runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Run everything on the calling thread.
    Serial,
    /// Run on the global rayon thread pool.
    #[default]
    Rayon,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Serial => "serial",
            Backend::Rayon => "rayon",
        })
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parse a CLI-style backend name (`serial` or `rayon`, case
    /// insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "serial" => Ok(Backend::Serial),
            "rayon" => Ok(Backend::Rayon),
            other => Err(format!("unknown backend {other:?} (expected \"serial\" or \"rayon\")")),
        }
    }
}

impl Backend {
    /// The number of worker threads this backend will use.
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Rayon => rayon::current_num_threads(),
        }
    }

    /// Map `f` over `0..n`, collecting results in index order.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync + Send,
    {
        match self {
            Backend::Serial => (0..n).map(f).collect(),
            Backend::Rayon => (0..n).into_par_iter().map(f).collect(),
        }
    }

    /// Map `f` over the row-major `(row, col)` cells of a `rows × cols` grid
    /// in **one** flattened dispatch, collecting results in row-major order
    /// (`result[row * cols + col]`).
    ///
    /// This is the helper behind flattened (locus × proposal) likelihood
    /// batching: scheduling the full grid as a single `rows * cols`-item map
    /// keeps every worker busy even when one dimension is small, where a
    /// per-row loop of `cols`-item dispatches would leave threads idle at
    /// each row boundary.
    ///
    /// ```
    /// use exec::Backend;
    /// let grid = Backend::Serial.map_grid(2, 3, |row, col| 10 * row + col);
    /// assert_eq!(grid, vec![0, 1, 2, 10, 11, 12]);
    /// ```
    pub fn map_grid<U, F>(&self, rows: usize, cols: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, usize) -> U + Sync + Send,
    {
        if cols == 0 {
            return Vec::new();
        }
        self.map_indexed(rows * cols, move |i| f(i / cols, i % cols))
    }

    /// Map `f` over the elements of a mutable slice, collecting results in
    /// index order. Each element is visited by exactly one worker, so `f` may
    /// freely mutate it — this is the dispatch shape of *chain sharding*,
    /// where every item is a whole MCMC chain advancing by one kernel
    /// iteration and the per-chain state (sampler, RNG stream) is owned by
    /// the item.
    ///
    /// [`Backend::Serial`] visits the items round-robin on the calling
    /// thread; [`Backend::Rayon`] runs one scoped thread per item
    /// (`std::thread::scope`), which is the right grain for a handful of
    /// coarse chains (each item is thousands of likelihood evaluations, so
    /// spawn cost is noise). Because every item owns its state, the two
    /// backends produce bit-identical results.
    ///
    /// ```
    /// use exec::Backend;
    /// let mut counters = vec![0u64; 4];
    /// let doubled = Backend::Rayon.map_mut(&mut counters, |i, c| {
    ///     *c += i as u64;
    ///     *c * 2
    /// });
    /// assert_eq!(counters, vec![0, 1, 2, 3]);
    /// assert_eq!(doubled, vec![0, 2, 4, 6]);
    /// ```
    pub fn map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        match self {
            Backend::Serial => items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect(),
            Backend::Rayon => std::thread::scope(|scope| {
                let f = &f;
                let handles: Vec<_> = items
                    .iter_mut()
                    .enumerate()
                    .map(|(i, item)| scope.spawn(move || f(i, item)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("map_mut worker panicked")).collect()
            }),
        }
    }

    /// Map `f` over a slice, collecting results in order.
    pub fn map_slice<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync + Send,
    {
        match self {
            Backend::Serial => items.iter().map(f).collect(),
            Backend::Rayon => items.par_iter().map(f).collect(),
        }
    }

    /// Sum `f(i)` over `0..n` (an additive reduction, the operation the
    /// paper implements with warp shuffles).
    pub fn sum_indexed<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync + Send,
    {
        match self {
            Backend::Serial => (0..n).map(f).sum(),
            Backend::Rayon => (0..n).into_par_iter().map(f).sum(),
        }
    }

    /// Maximum of `f(i)` over `0..n` (the normalising reduction used by the
    /// posterior kernel before its additive reduction, Section 5.2.3).
    pub fn max_indexed<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync + Send,
    {
        match self {
            Backend::Serial => (0..n).map(f).fold(f64::NEG_INFINITY, f64::max),
            Backend::Rayon => (0..n).into_par_iter().map(f).reduce(|| f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for backend in [Backend::Serial, Backend::Rayon] {
            let out = backend.map_indexed(100, |i| i * i);
            assert_eq!(out.len(), 100);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn map_grid_flattens_row_major_on_both_backends() {
        for backend in [Backend::Serial, Backend::Rayon] {
            let grid = backend.map_grid(7, 13, |r, c| (r, c));
            assert_eq!(grid.len(), 7 * 13);
            for (i, &(r, c)) in grid.iter().enumerate() {
                assert_eq!((r, c), (i / 13, i % 13));
            }
            assert!(backend.map_grid(0, 13, |r, c| r + c).is_empty());
            assert!(backend.map_grid(7, 0, |r, c| r + c).is_empty());
        }
    }

    #[test]
    fn map_mut_mutates_every_item_once_on_both_backends() {
        for backend in [Backend::Serial, Backend::Rayon] {
            let mut items: Vec<usize> = (0..37).collect();
            let out = backend.map_mut(&mut items, |i, item| {
                *item += 100;
                *item + i
            });
            assert_eq!(items, (100..137).collect::<Vec<_>>());
            assert_eq!(out, (0..37).map(|i| 100 + 2 * i).collect::<Vec<_>>());
            let mut empty: Vec<usize> = vec![];
            assert!(backend.map_mut(&mut empty, |_, _| ()).is_empty());
        }
    }

    #[test]
    fn map_slice_matches_serial_reference() {
        let items: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let serial = Backend::Serial.map_slice(&items, |x| x.sin());
        let parallel = Backend::Rayon.map_slice(&items, |x| x.sin());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reductions_agree_between_backends() {
        let f = |i: usize| ((i as f64) * 0.37).cos();
        let s1 = Backend::Serial.sum_indexed(5_000, f);
        let s2 = Backend::Rayon.sum_indexed(5_000, f);
        assert!((s1 - s2).abs() < 1e-9);
        let m1 = Backend::Serial.max_indexed(5_000, f);
        let m2 = Backend::Rayon.max_indexed(5_000, f);
        assert_eq!(m1, m2);
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert!(Backend::Rayon.map_indexed(0, |i| i).is_empty());
        assert_eq!(Backend::Serial.sum_indexed(0, |_| 1.0), 0.0);
        assert_eq!(Backend::Rayon.max_indexed(0, |_| 1.0), f64::NEG_INFINITY);
        let empty: Vec<u8> = vec![];
        assert!(Backend::Serial.map_slice(&empty, |&x| x).is_empty());
    }

    #[test]
    fn thread_counts_are_sensible() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert!(Backend::Rayon.threads() >= 1);
        assert_eq!(Backend::default(), Backend::Rayon);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [Backend::Serial, Backend::Rayon] {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!("SERIAL".parse::<Backend>().unwrap(), Backend::Serial);
        assert!("cuda".parse::<Backend>().is_err());
    }
}
