//! Data-parallel execution backends.
//!
//! The samplers express their bulk work (generate N proposals, score P site
//! patterns, evaluate M posterior terms) as pure per-item closures; the
//! [`Backend`] decides whether that work runs serially or on the rayon
//! thread pool. This mirrors the structure of the CUDA implementation, where
//! the same loops are expressed as kernels with one thread per item.
//!
//! Backends are selected by value (or parsed from CLI-style names) and
//! passed down to whatever owns the loop — the seam a device backend plugs
//! into later:
//!
//! ```
//! use exec::Backend;
//!
//! // Parse a user-facing name, inspect it, and run a data-parallel map.
//! let backend: Backend = "serial".parse().unwrap();
//! assert_eq!(backend, Backend::Serial);
//! assert_eq!(backend.threads(), 1);
//! let squares = backend.map_indexed(4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//!
//! // The default backend is the rayon thread pool; results are identical.
//! assert_eq!(Backend::default(), Backend::Rayon);
//! assert_eq!(Backend::Rayon.map_indexed(4, |i| i * i), squares);
//! ```

use std::fmt;
use std::str::FromStr;

use rayon::prelude::*;

use crate::device::DeviceSpec;
use crate::device::GridProfile;
#[cfg(feature = "device")]
use crate::device::Queue;

/// Modelled arithmetic charged per item for submissions that arrive without
/// a [`GridProfile`] (plain `map_indexed`/`map_slice`/reductions on the
/// device backend): the order of a small per-item task. Profiled grid
/// submissions — the likelihood hot path — never use this.
#[cfg(feature = "device")]
const UNPROFILED_ITEM_FLOPS: f64 = 1_000.0;

/// Where data-parallel work runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Backend {
    /// Run everything on the calling thread.
    Serial,
    /// Run on the global rayon thread pool.
    #[default]
    Rayon,
    /// Route every dispatch through the simulated accelerator command queue
    /// ([`crate::device::Queue`], `device` cargo feature): submissions are
    /// coalesced into batched kernel launches, executed synchronously on the
    /// host (bit-identical to [`Backend::Serial`]), and charged against this
    /// [`DeviceSpec`]'s cost model. The dress rehearsal for a real GPU
    /// backend behind the same seam.
    #[cfg(feature = "device")]
    Device(DeviceSpec),
}

impl fmt::Display for Backend {
    /// CLI-style name. Round-trips through [`Backend::from_str`] for
    /// `Serial`, `Rayon` and the device *presets*; a device backend over a
    /// custom [`DeviceSpec`] renders as plain `"device"`, which re-parses to
    /// the Kepler preset — custom specs are a programmatic-API-only
    /// construction and have no spellable name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Serial => f.write_str("serial"),
            Backend::Rayon => f.write_str("rayon"),
            #[cfg(feature = "device")]
            Backend::Device(spec) => match spec.preset_name() {
                Some(name) => write!(f, "device:{name}"),
                None => f.write_str("device"),
            },
        }
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parse a CLI-style backend name (case insensitive): `serial`, `rayon`,
    /// or — with the `device` feature — `device` (Kepler-class default) and
    /// `device:<preset>` (`device:kepler` / `device:modern`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "serial" => Ok(Backend::Serial),
            "rayon" => Ok(Backend::Rayon),
            name if name == "device" || name.starts_with("device:") => {
                let preset = name.strip_prefix("device:").unwrap_or("kepler");
                let spec = DeviceSpec::from_preset(preset).ok_or_else(|| {
                    format!("unknown device preset {preset:?} (expected \"kepler\" or \"modern\")")
                })?;
                #[cfg(feature = "device")]
                {
                    Ok(Backend::Device(spec))
                }
                #[cfg(not(feature = "device"))]
                {
                    let _ = spec;
                    Err("backend \"device\" requires a build with the `device` feature \
                         (rebuild with `--features device`)"
                        .to_string())
                }
            }
            other => Err(format!(
                "unknown backend {other:?} (expected \"serial\", \"rayon\" or \"device[:preset]\")"
            )),
        }
    }
}

impl Backend {
    /// The device backend over `spec` (`device` cargo feature). The spelled
    /// constructor every driver uses: `Backend::device(DeviceSpec::kepler())`.
    #[cfg(feature = "device")]
    pub fn device(spec: DeviceSpec) -> Backend {
        Backend::Device(spec)
    }

    /// The device spec this backend dispatches through, when it is the
    /// device backend. Always `None` without the `device` feature, so
    /// downstream report plumbing needs no feature gates.
    pub fn device_spec(&self) -> Option<DeviceSpec> {
        match self {
            #[cfg(feature = "device")]
            Backend::Device(spec) => Some(*spec),
            _ => None,
        }
    }

    /// Whether this is the device backend.
    pub fn is_device(&self) -> bool {
        self.device_spec().is_some()
    }

    /// The number of *host* worker threads this backend will use. The device
    /// backend executes its queue on the calling thread (the simulated
    /// device's parallelism lives in the cost model, not in host threads).
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Rayon => rayon::current_num_threads(),
            #[cfg(feature = "device")]
            Backend::Device(_) => 1,
        }
    }

    /// Map `f` over `0..n`, collecting results in index order.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync + Send,
    {
        match self {
            Backend::Serial => (0..n).map(f).collect(),
            Backend::Rayon => (0..n).into_par_iter().map(f).collect(),
            #[cfg(feature = "device")]
            Backend::Device(spec) => Queue::submit(
                spec,
                &GridProfile::uniform(n, UNPROFILED_ITEM_FLOPS),
                false,
                n,
                || (0..n).map(f).collect(),
            ),
        }
    }

    /// Map `f` over the row-major `(row, col)` cells of a `rows × cols` grid
    /// in **one** flattened dispatch, collecting results in row-major order
    /// (`result[row * cols + col]`).
    ///
    /// This is the helper behind flattened (locus × proposal) likelihood
    /// batching: scheduling the full grid as a single `rows * cols`-item map
    /// keeps every worker busy even when one dimension is small, where a
    /// per-row loop of `cols`-item dispatches would leave threads idle at
    /// each row boundary.
    ///
    /// ```
    /// use exec::Backend;
    /// let grid = Backend::Serial.map_grid(2, 3, |row, col| 10 * row + col);
    /// assert_eq!(grid, vec![0, 1, 2, 10, 11, 12]);
    /// ```
    pub fn map_grid<U, F>(&self, rows: usize, cols: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, usize) -> U + Sync + Send,
    {
        self.map_grid_profiled(None, rows, cols, f)
    }

    /// [`Backend::map_grid`] with an optional [`GridProfile`] describing the
    /// kernel launch the grid *stands for*. `Serial` and `Rayon` ignore the
    /// profile entirely (it never changes results); the device backend uses
    /// it to account the submission as one batched launch of
    /// `profile.logical_threads` device threads — the seam through which the
    /// likelihood engine reports the paper's one-thread-per-(proposal, site)
    /// mapping, whose thread count (not the closure-grid size) drives
    /// occupancy and latency hiding. Without a profile the device backend
    /// charges a nominal per-item cost.
    pub fn map_grid_profiled<U, F>(
        &self,
        profile: Option<&GridProfile>,
        rows: usize,
        cols: usize,
        f: F,
    ) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, usize) -> U + Sync + Send,
    {
        #[cfg(not(feature = "device"))]
        let _ = profile;
        if rows == 0 || cols == 0 {
            return Vec::new();
        }
        match self {
            #[cfg(feature = "device")]
            Backend::Device(spec) => {
                let n = rows * cols;
                let default = GridProfile::uniform(n, UNPROFILED_ITEM_FLOPS);
                let profile = profile.copied().unwrap_or(default);
                Queue::submit(spec, &profile, true, n, move || {
                    (0..n).map(|i| f(i / cols, i % cols)).collect()
                })
            }
            _ => self.map_indexed(rows * cols, move |i| f(i / cols, i % cols)),
        }
    }

    /// Map `f` over the elements of a mutable slice, collecting results in
    /// index order. Each element is visited by exactly one worker, so `f` may
    /// freely mutate it — this is the dispatch shape of *chain sharding*,
    /// where every item is a whole MCMC chain advancing by one kernel
    /// iteration and the per-chain state (sampler, RNG stream) is owned by
    /// the item.
    ///
    /// [`Backend::Serial`] visits the items round-robin on the calling
    /// thread; [`Backend::Rayon`] runs one scoped thread per item
    /// (`std::thread::scope`), which is the right grain for a handful of
    /// coarse chains (each item is thousands of likelihood evaluations, so
    /// spawn cost is noise). Because every item owns its state, the two
    /// backends produce bit-identical results.
    ///
    /// ```
    /// use exec::Backend;
    /// let mut counters = vec![0u64; 4];
    /// let doubled = Backend::Rayon.map_mut(&mut counters, |i, c| {
    ///     *c += i as u64;
    ///     *c * 2
    /// });
    /// assert_eq!(counters, vec![0, 1, 2, 3]);
    /// assert_eq!(doubled, vec![0, 2, 4, 6]);
    /// ```
    pub fn map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        match self {
            Backend::Serial => items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect(),
            // One simulated device shared by every item: chain-level dispatch
            // serialises through the command queue on the calling thread.
            // This is host-side orchestration, not device work — the device
            // sees only the grids the items themselves submit — so no launch
            // is charged here (and the items' own submissions stay on this
            // thread, where the queue accounts them).
            #[cfg(feature = "device")]
            Backend::Device(_) => {
                items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect()
            }
            Backend::Rayon => std::thread::scope(|scope| {
                let f = &f;
                let handles: Vec<_> = items
                    .iter_mut()
                    .enumerate()
                    .map(|(i, item)| scope.spawn(move || f(i, item)))
                    .collect();
                // mpcgs-analyze: allow(r1, reason = "join() fails only if the worker panicked; re-raising on the dispatching thread beats silently dropping that shard's writes — the serve layer isolates faults per job above this seam")
                handles.into_iter().map(|h| h.join().expect("map_mut worker panicked")).collect()
            }),
        }
    }

    /// Map `f` over a slice, collecting results in order.
    pub fn map_slice<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync + Send,
    {
        match self {
            Backend::Serial => items.iter().map(f).collect(),
            Backend::Rayon => items.par_iter().map(f).collect(),
            #[cfg(feature = "device")]
            Backend::Device(spec) => Queue::submit(
                spec,
                &GridProfile::uniform(items.len(), UNPROFILED_ITEM_FLOPS),
                false,
                items.len(),
                || items.iter().map(f).collect(),
            ),
        }
    }

    /// Sum `f(i)` over `0..n` (an additive reduction, the operation the
    /// paper implements with warp shuffles).
    pub fn sum_indexed<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync + Send,
    {
        match self {
            Backend::Serial => (0..n).map(f).sum(),
            Backend::Rayon => (0..n).into_par_iter().map(f).sum(),
            #[cfg(feature = "device")]
            Backend::Device(spec) => Queue::submit(
                spec,
                &GridProfile::uniform(n, UNPROFILED_ITEM_FLOPS),
                false,
                n,
                || (0..n).map(f).sum(),
            ),
        }
    }

    /// Maximum of `f(i)` over `0..n` (the normalising reduction used by the
    /// posterior kernel before its additive reduction, Section 5.2.3).
    pub fn max_indexed<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync + Send,
    {
        match self {
            Backend::Serial => (0..n).map(f).fold(f64::NEG_INFINITY, f64::max),
            Backend::Rayon => (0..n).into_par_iter().map(f).reduce(|| f64::NEG_INFINITY, f64::max),
            #[cfg(feature = "device")]
            Backend::Device(spec) => Queue::submit(
                spec,
                &GridProfile::uniform(n, UNPROFILED_ITEM_FLOPS),
                false,
                n,
                || (0..n).map(f).fold(f64::NEG_INFINITY, f64::max),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for backend in [Backend::Serial, Backend::Rayon] {
            let out = backend.map_indexed(100, |i| i * i);
            assert_eq!(out.len(), 100);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn map_grid_flattens_row_major_on_both_backends() {
        for backend in [Backend::Serial, Backend::Rayon] {
            let grid = backend.map_grid(7, 13, |r, c| (r, c));
            assert_eq!(grid.len(), 7 * 13);
            for (i, &(r, c)) in grid.iter().enumerate() {
                assert_eq!((r, c), (i / 13, i % 13));
            }
            assert!(backend.map_grid(0, 13, |r, c| r + c).is_empty());
            assert!(backend.map_grid(7, 0, |r, c| r + c).is_empty());
        }
    }

    #[test]
    fn map_mut_mutates_every_item_once_on_both_backends() {
        for backend in [Backend::Serial, Backend::Rayon] {
            let mut items: Vec<usize> = (0..37).collect();
            let out = backend.map_mut(&mut items, |i, item| {
                *item += 100;
                *item + i
            });
            assert_eq!(items, (100..137).collect::<Vec<_>>());
            assert_eq!(out, (0..37).map(|i| 100 + 2 * i).collect::<Vec<_>>());
            let mut empty: Vec<usize> = vec![];
            assert!(backend.map_mut(&mut empty, |_, _| ()).is_empty());
        }
    }

    #[test]
    fn map_slice_matches_serial_reference() {
        let items: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let serial = Backend::Serial.map_slice(&items, |x| x.sin());
        let parallel = Backend::Rayon.map_slice(&items, |x| x.sin());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reductions_agree_between_backends() {
        let f = |i: usize| ((i as f64) * 0.37).cos();
        let s1 = Backend::Serial.sum_indexed(5_000, f);
        let s2 = Backend::Rayon.sum_indexed(5_000, f);
        assert!((s1 - s2).abs() < 1e-9);
        let m1 = Backend::Serial.max_indexed(5_000, f);
        let m2 = Backend::Rayon.max_indexed(5_000, f);
        assert_eq!(m1, m2);
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert!(Backend::Rayon.map_indexed(0, |i| i).is_empty());
        assert_eq!(Backend::Serial.sum_indexed(0, |_| 1.0), 0.0);
        assert_eq!(Backend::Rayon.max_indexed(0, |_| 1.0), f64::NEG_INFINITY);
        let empty: Vec<u8> = vec![];
        assert!(Backend::Serial.map_slice(&empty, |&x| x).is_empty());
    }

    #[test]
    fn thread_counts_are_sensible() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert!(Backend::Rayon.threads() >= 1);
        assert_eq!(Backend::default(), Backend::Rayon);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [Backend::Serial, Backend::Rayon] {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!("SERIAL".parse::<Backend>().unwrap(), Backend::Serial);
        assert!("cuda".parse::<Backend>().is_err());
        // "device" parses only when the feature is compiled in, and the
        // error without it points at the fix.
        #[cfg(not(feature = "device"))]
        {
            let err = "device".parse::<Backend>().unwrap_err();
            assert!(err.contains("--features device"), "unhelpful error: {err}");
        }
    }

    #[test]
    fn non_device_backends_report_no_spec() {
        assert_eq!(Backend::Serial.device_spec(), None);
        assert_eq!(Backend::Rayon.device_spec(), None);
        assert!(!Backend::Rayon.is_device());
    }

    #[cfg(feature = "device")]
    mod device {
        use super::*;
        use crate::device::{DeviceSpec, Queue};

        #[test]
        fn device_backend_parses_displays_and_exposes_its_spec() {
            let kepler = "device".parse::<Backend>().unwrap();
            assert_eq!(kepler, Backend::device(DeviceSpec::kepler()));
            assert_eq!(kepler.to_string(), "device:kepler");
            assert_eq!(kepler.to_string().parse::<Backend>().unwrap(), kepler);
            let modern = "device:modern".parse::<Backend>().unwrap();
            assert_eq!(modern.device_spec(), Some(DeviceSpec::modern()));
            assert_eq!(modern.to_string().parse::<Backend>().unwrap(), modern);
            assert!("device:tpu".parse::<Backend>().is_err());
            assert!(kepler.is_device());
            assert_eq!(kepler.threads(), 1);
        }

        #[test]
        fn device_dispatch_is_bit_identical_to_serial_and_accounted() {
            // A dedicated thread isolates the thread-local queue accounting.
            std::thread::spawn(|| {
                let device = Backend::device(DeviceSpec::kepler());
                Queue::reset();

                let f = |i: usize| ((i as f64) * 0.37).sin();
                assert_eq!(device.map_indexed(100, f), Backend::Serial.map_indexed(100, f));
                let grid = |r: usize, c: usize| ((r * 31 + c) as f64).cos();
                assert_eq!(device.map_grid(7, 13, grid), Backend::Serial.map_grid(7, 13, grid));
                let profile = GridProfile::uniform(7 * 13 * 100, 64.0);
                assert_eq!(
                    device.map_grid_profiled(Some(&profile), 7, 13, grid),
                    Backend::Serial.map_grid(7, 13, grid)
                );
                let items: Vec<f64> = (0..50).map(|i| i as f64).collect();
                assert_eq!(
                    device.map_slice(&items, |x| x.sqrt()),
                    Backend::Serial.map_slice(&items, |x| x.sqrt())
                );
                assert_eq!(device.sum_indexed(500, f), Backend::Serial.sum_indexed(500, f));
                assert_eq!(device.max_indexed(500, f), Backend::Serial.max_indexed(500, f));
                let mut a: Vec<usize> = (0..9).collect();
                let mut b = a.clone();
                assert_eq!(
                    device.map_mut(&mut a, |i, x| {
                        *x += i;
                        *x
                    }),
                    Backend::Serial.map_mut(&mut b, |i, x| {
                        *x += i;
                        *x
                    })
                );
                assert_eq!(a, b);

                let stats = Queue::stats();
                // One launch per dispatch except map_mut (host orchestration).
                assert_eq!(stats.launches, 6);
                assert_eq!(stats.grid_batches, 2);
                // The profiled grid was accounted at its logical size.
                assert_eq!(
                    stats.logical_threads,
                    (100 + 7 * 13 + 7 * 13 * 100 + 50 + 500 + 500) as u64
                );
                assert_eq!(stats.host_items, (100 + 7 * 13 + 7 * 13 + 50 + 500 + 500) as u64);
            })
            .join()
            .unwrap();
        }

        #[test]
        fn empty_device_dispatches_record_nothing() {
            std::thread::spawn(|| {
                let device = Backend::device(DeviceSpec::modern());
                Queue::reset();
                assert!(device.map_grid(0, 13, |r, c| r + c).is_empty());
                assert!(device.map_grid(13, 0, |r, c| r + c).is_empty());
                // Every dispatch entry point shares the no-op guard, not
                // just the grid path — an empty map or reduction must not
                // be charged as a kernel launch.
                assert!(device.map_indexed(0, |i| i).is_empty());
                let empty: Vec<f64> = vec![];
                assert!(device.map_slice(&empty, |&x| x).is_empty());
                assert_eq!(device.sum_indexed(0, |_| 1.0), 0.0);
                assert_eq!(device.max_indexed(0, |_| 1.0), f64::NEG_INFINITY);
                assert!(Queue::stats().is_empty());
            })
            .join()
            .unwrap();
        }
    }
}
