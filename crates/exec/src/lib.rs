//! Parallel execution substrate.
//!
//! The original system runs its three kernels (proposal, data likelihood,
//! posterior likelihood) on a CUDA device (Section 4.4). This workspace has
//! no GPU, so the crate provides the two substitutes described in DESIGN.md:
//!
//! * [`executor`] — a real data-parallel backend: an [`executor::Backend`]
//!   that maps closures over work items either serially or on the rayon
//!   thread pool. The samplers use it for proposal generation and per-site
//!   likelihood work, which is exactly the work the paper offloads to the
//!   GPU.
//! * [`device`] — a *simulated* SIMD device: an explicit cost model with
//!   kernel-launch overhead, core count, warp width, occupancy and
//!   latency hiding, used to regenerate the paper's speedup figures
//!   (Figures 14–16) from measured operation counts.
//! * [`host`] — the corresponding serial-host cost model (the baseline
//!   LAMARC side of the speedup ratio).
//! * [`amdahl`] — Amdahl/Gustafson speedup laws and the `B + N/P`
//!   multi-chain efficiency model of Section 3 / Figure 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amdahl;
pub mod device;
pub mod executor;
pub mod host;

pub use amdahl::{amdahl_speedup, gustafson_speedup, multichain_time, parallel_burnin_time};
#[cfg(feature = "device")]
pub use device::Queue;
pub use device::{
    DeviceModel, DeviceReport, DeviceSpec, DeviceStats, GridProfile, KernelLaunch, DEVICE_INIT_US,
};
pub use executor::Backend;
pub use host::HostModel;
