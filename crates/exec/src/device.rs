//! A simulated SIMD (GPGPU-style) device with an occupancy / latency-hiding
//! cost model.
//!
//! The paper's speedups come from mapping the sampler's three kernels onto a
//! CUDA device (compute capability 3.5, Kepler). No GPU is available in this
//! environment, so the speedup *figures* are regenerated from this explicit
//! cost model driven by the real operation counts of the Rust sampler. The
//! model captures the three effects the paper credits for the observed
//! curves:
//!
//! 1. **Kernel launch overhead and serial residue** — fixed per-iteration
//!    costs that amortise as the number of samples grows (Figure 14's gentle
//!    rise).
//! 2. **Occupancy-driven latency hiding** — the device only reaches full
//!    throughput when enough threads are resident to cover memory latency;
//!    the data-likelihood kernel launches one thread per (proposal, site)
//!    pair, so throughput — and therefore speedup — grows roughly linearly
//!    with sequence length until the device saturates (Figure 16, and the
//!    paper's observation that "increasing sequence size primarily increases
//!    the number of data likelihood threads executing simultaneously ...
//!    hiding memory latency").
//! 3. **Per-thread memory pressure** — each thread's tree traversal touches
//!    memory proportionally to the number of nodes, and beyond the register /
//!    L1 budget the recursion spills, so larger trees expose more latency and
//!    erode speedup slightly (Figure 15's mild decline).

/// Physical characteristics of the simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp (32 on every CUDA generation).
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: usize,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Global-memory latency in cycles.
    pub global_latency_cycles: f64,
    /// Constant-memory (cached, broadcast) latency in cycles.
    pub const_latency_cycles: f64,
    /// Number of registers' worth of per-thread working set before traversal
    /// state spills to local (global) memory.
    pub register_budget: usize,
}

impl DeviceSpec {
    /// A Kepler-class card comparable to the compute-3.5 hardware used in the
    /// thesis (GK110-like: 13 SMs × 192 cores).
    pub fn kepler() -> Self {
        DeviceSpec {
            sms: 13,
            cores_per_sm: 192,
            warp_size: 32,
            clock_ghz: 0.824,
            max_threads_per_sm: 2_048,
            launch_overhead_us: 8.0,
            global_latency_cycles: 400.0,
            const_latency_cycles: 12.0,
            register_budget: 64,
        }
    }

    /// A modern-generation card (Ampere-like: many more SMs, faster clock,
    /// cheaper launches, a deeper register file). Used to show how the same
    /// measured operation counts land on newer hardware.
    pub fn modern() -> Self {
        DeviceSpec {
            sms: 68,
            cores_per_sm: 128,
            warp_size: 32,
            clock_ghz: 1.41,
            max_threads_per_sm: 1_536,
            launch_overhead_us: 3.5,
            global_latency_cycles: 350.0,
            const_latency_cycles: 10.0,
            register_budget: 128,
        }
    }

    /// The name of the preset this spec equals (`"kepler"` / `"modern"`), or
    /// `None` for a custom spec. This is what `Backend::Device` round-trips
    /// through `Display`/`FromStr`.
    pub fn preset_name(&self) -> Option<&'static str> {
        if *self == DeviceSpec::kepler() {
            Some("kepler")
        } else if *self == DeviceSpec::modern() {
            Some("modern")
        } else {
            None
        }
    }

    /// Look a preset up by name (case insensitive).
    pub fn from_preset(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "kepler" => Some(DeviceSpec::kepler()),
            "modern" => Some(DeviceSpec::modern()),
            _ => None,
        }
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> usize {
        self.sms * self.cores_per_sm
    }

    /// Maximum number of resident threads across the device.
    pub fn max_resident_threads(&self) -> usize {
        self.sms * self.max_threads_per_sm
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::kepler()
    }
}

/// One kernel launch, described by its thread count and per-thread work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelLaunch {
    /// Number of threads launched.
    pub threads: usize,
    /// Arithmetic operations per thread.
    pub flops_per_thread: f64,
    /// Global-memory accesses per thread.
    pub global_accesses_per_thread: f64,
    /// Constant-memory accesses per thread.
    pub const_accesses_per_thread: f64,
    /// Fraction of the kernel's total work that executes serially (final
    /// block-level reductions, Section 5.2.1's single-thread reduction tail).
    pub serial_fraction: f64,
}

impl KernelLaunch {
    /// A launch with the given thread count and per-thread work and no
    /// serial residue.
    pub fn new(threads: usize, flops: f64, global: f64, constant: f64) -> Self {
        KernelLaunch {
            threads,
            flops_per_thread: flops,
            global_accesses_per_thread: global,
            const_accesses_per_thread: constant,
            serial_fraction: 0.0,
        }
    }

    /// Set the serial residue fraction.
    pub fn with_serial_fraction(mut self, fraction: f64) -> Self {
        self.serial_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Cycles of work a single thread performs, with the exposed fraction of
    /// memory latency given.
    fn cycles_per_thread(&self, spec: &DeviceSpec, exposed: f64) -> f64 {
        self.flops_per_thread
            + self.global_accesses_per_thread * spec.global_latency_cycles * exposed
            + self.const_accesses_per_thread * spec.const_latency_cycles * exposed
    }
}

/// The device cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceModel {
    spec: DeviceSpec,
}

impl DeviceModel {
    /// Create a model over the given device.
    pub fn new(spec: DeviceSpec) -> Self {
        DeviceModel { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Occupancy of a launch: the fraction of the device's resident-thread
    /// capacity that the launch fills (rounded up to whole warps).
    pub fn occupancy(&self, launch: &KernelLaunch) -> f64 {
        if launch.threads == 0 {
            return 0.0;
        }
        let warps = launch.threads.div_ceil(self.spec.warp_size);
        let threads = warps * self.spec.warp_size;
        (threads as f64 / self.spec.max_resident_threads() as f64).min(1.0)
    }

    /// The fraction of memory latency left exposed after occupancy-based
    /// hiding: with a full complement of resident warps the scheduler can
    /// almost always find an eligible warp, with few warps stalls are fully
    /// exposed.
    pub fn exposed_latency_fraction(&self, launch: &KernelLaunch) -> f64 {
        // Hiding improves with occupancy; the floor keeps even a saturated
        // device from being modelled as latency-free.
        let occupancy = self.occupancy(launch);
        (1.0 - 0.95 * occupancy).clamp(0.05, 1.0)
    }

    /// Modelled execution time of one kernel launch, in microseconds.
    pub fn kernel_time_us(&self, launch: &KernelLaunch) -> f64 {
        if launch.threads == 0 {
            return self.spec.launch_overhead_us;
        }
        let exposed = self.exposed_latency_fraction(launch);
        let cycles_per_thread = launch.cycles_per_thread(&self.spec, exposed);
        let total_cycles = cycles_per_thread * launch.threads as f64;
        // Parallel portion: spread over all cores.
        let parallel_cycles =
            total_cycles * (1.0 - launch.serial_fraction) / self.spec.total_cores() as f64;
        // Serial portion: one core.
        let serial_cycles = total_cycles * launch.serial_fraction;
        let cycles = parallel_cycles + serial_cycles;
        self.spec.launch_overhead_us + cycles / (self.spec.clock_ghz * 1_000.0)
    }

    /// Modelled time for a sequence of launches (microseconds).
    pub fn total_time_us(&self, launches: &[KernelLaunch]) -> f64 {
        launches.iter().map(|l| self.kernel_time_us(l)).sum()
    }

    /// Per-thread global-memory accesses for a pruning traversal over a tree
    /// with `tree_nodes` nodes: structural reads plus spill traffic once the
    /// working set exceeds the register budget (the effect the paper notes as
    /// "the real possibility that a set of sequence data could overrun the
    /// stack", Section 5.2.2).
    pub fn traversal_global_accesses(&self, tree_nodes: usize) -> f64 {
        let structural = tree_nodes as f64;
        let excess = tree_nodes.saturating_sub(self.spec.register_budget) as f64;
        structural + 0.5 * excess
    }
}

/// Per-thread work description of a grid submitted to the device backend.
///
/// The dispatch seams (`Backend::map_grid_profiled`) carry a `GridProfile`
/// alongside the closure so the `Queue` can account a submission as the
/// kernel launch it *represents* rather than the `rows × cols` closure grid
/// it executes: the paper's data-likelihood kernel launches one thread per
/// (proposal, site) pair, so a `(locus × proposal)` closure grid over
/// pattern-compressed loci stands for `proposals × Σ_l patterns(l)` logical
/// device threads — which is what drives occupancy and latency hiding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridProfile {
    /// Logical device threads the submission stands for (occupancy driver).
    pub logical_threads: usize,
    /// Arithmetic operations per logical thread.
    pub flops_per_thread: f64,
    /// Global-memory accesses per logical thread. When
    /// [`GridProfile::traversal_nodes`] is set this is ignored and derived
    /// from the device's register budget instead.
    pub global_accesses_per_thread: f64,
    /// Constant-memory (cached, broadcast) accesses per logical thread.
    pub const_accesses_per_thread: f64,
    /// Fraction of the kernel's work that executes serially (reduction tail).
    pub serial_fraction: f64,
    /// When the per-thread work is a tree traversal, the node count of the
    /// traversed tree: global accesses are then derived per device via
    /// [`DeviceModel::traversal_global_accesses`] (register-spill pressure).
    pub traversal_nodes: Option<usize>,
    /// Arithmetic the serial-host *baseline* retires per logical thread for
    /// the same work. Usually equal to [`GridProfile::flops_per_thread`],
    /// but the pruning kernel differs by design: the device "simply
    /// recalculates the likelihood of every node" while LAMARC's host
    /// baseline updates only the O(log n) dirty path (Section 5.2.2) — the
    /// asymmetry behind Figure 15's decline with tree size.
    pub host_flops_per_thread: f64,
}

/// Arithmetic operations per (site, node) cell of the pruning recursion (two
/// 4×4 matrix–vector products and a Hadamard product).
pub const PRUNING_FLOPS_PER_CELL: f64 = 64.0;

impl GridProfile {
    /// A uniform profile: `logical_threads` threads of `flops_per_thread`
    /// arithmetic each, no modelled memory traffic beyond the launch.
    pub fn uniform(logical_threads: usize, flops_per_thread: f64) -> Self {
        GridProfile {
            logical_threads,
            flops_per_thread,
            global_accesses_per_thread: 0.0,
            const_accesses_per_thread: 0.0,
            serial_fraction: 0.0,
            traversal_nodes: None,
            host_flops_per_thread: flops_per_thread,
        }
    }

    /// The profile of a batched pruning-likelihood grid: one logical thread
    /// per (proposal, site) pair, each recomputing every interior node of the
    /// tree for its site (the paper's device kernel "simply recalculates the
    /// likelihood of every node", Section 5.2.2), with traversal state
    /// subject to register spill and the tip states read through constant
    /// memory. The serial-host baseline for the same submission is LAMARC's
    /// incremental update: only the ~`2 + log2(tips)` dirty-path nodes per
    /// (proposal, site) pair.
    pub fn pruning(
        logical_threads: usize,
        interior_nodes: usize,
        tree_nodes: usize,
        n_tips: usize,
    ) -> Self {
        let path_nodes = 2.0 + (n_tips.max(2) as f64).log2().ceil();
        GridProfile {
            logical_threads,
            flops_per_thread: interior_nodes as f64 * PRUNING_FLOPS_PER_CELL,
            global_accesses_per_thread: 0.0,
            const_accesses_per_thread: n_tips as f64,
            serial_fraction: 0.0,
            traversal_nodes: Some(tree_nodes),
            host_flops_per_thread: path_nodes.min(interior_nodes as f64) * PRUNING_FLOPS_PER_CELL,
        }
    }

    /// Resolve the profile into a [`KernelLaunch`] on a concrete device.
    pub fn launch(&self, spec: &DeviceSpec) -> KernelLaunch {
        let global = match self.traversal_nodes {
            Some(nodes) => DeviceModel::new(*spec).traversal_global_accesses(nodes),
            None => self.global_accesses_per_thread,
        };
        KernelLaunch::new(
            self.logical_threads,
            self.flops_per_thread,
            global,
            self.const_accesses_per_thread,
        )
        .with_serial_fraction(self.serial_fraction)
    }

    /// Serial-host operation count for the same work (the baseline side of
    /// the report's host-vs-device breakdown): every logical thread's
    /// host-side arithmetic retired one after another.
    pub fn host_ops(&self) -> f64 {
        self.logical_threads as f64 * self.host_flops_per_thread
    }
}

/// Aggregate accounting of everything a device `Queue` executed.
///
/// All counters are cumulative; [`DeviceStats::delta`] subtracts a baseline
/// snapshot so drivers can report per-run sections from a long-lived queue.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceStats {
    /// Kernel launches accounted (one per dispatched submission).
    pub launches: u64,
    /// Submissions that arrived as flattened grids (`map_grid` family) — the
    /// batched dispatch shape, as opposed to plain maps and reductions.
    pub grid_batches: u64,
    /// Total logical device threads across all launches.
    pub logical_threads: u64,
    /// Closure invocations actually executed on the host.
    pub host_items: u64,
    /// Modelled device time across all launches, microseconds (includes
    /// launch overhead).
    pub modelled_device_us: f64,
    /// The launch-overhead share of [`DeviceStats::modelled_device_us`].
    pub launch_overhead_us: f64,
    /// Sum of per-launch occupancies (divide by `launches` for the mean).
    pub occupancy_sum: f64,
    /// Launches that filled the device's resident-thread capacity.
    pub saturated_launches: u64,
    /// Serial-host operation count for the same submissions (what the
    /// modelled host baseline retires).
    pub modelled_host_ops: f64,
    /// Wall-clock actually spent executing the submissions on this host,
    /// microseconds.
    pub measured_host_us: f64,
}

impl DeviceStats {
    /// The stats accumulated since `baseline` was snapshotted.
    pub fn delta(&self, baseline: &DeviceStats) -> DeviceStats {
        DeviceStats {
            launches: self.launches.saturating_sub(baseline.launches),
            grid_batches: self.grid_batches.saturating_sub(baseline.grid_batches),
            logical_threads: self.logical_threads.saturating_sub(baseline.logical_threads),
            host_items: self.host_items.saturating_sub(baseline.host_items),
            modelled_device_us: self.modelled_device_us - baseline.modelled_device_us,
            launch_overhead_us: self.launch_overhead_us - baseline.launch_overhead_us,
            occupancy_sum: self.occupancy_sum - baseline.occupancy_sum,
            saturated_launches: self.saturated_launches.saturating_sub(baseline.saturated_launches),
            modelled_host_ops: self.modelled_host_ops - baseline.modelled_host_ops,
            measured_host_us: self.measured_host_us - baseline.measured_host_us,
        }
    }

    /// Mean occupancy across launches (0 when nothing launched).
    pub fn mean_occupancy(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.occupancy_sum / self.launches as f64
        }
    }

    /// Whether anything was accounted.
    pub fn is_empty(&self) -> bool {
        self.launches == 0 && self.host_items == 0
    }
}

/// Fixed device-side initialisation cost charged once per run report,
/// microseconds: pre-allocation of the proposal set and sample buffers,
/// stack resizing and PRNG setup (Section 5.1.3 of the paper). Amortising
/// this constant over longer chains is what makes the modelled speedup rise
/// gently with the number of samples (Figure 14).
pub const DEVICE_INIT_US: f64 = 60_000.0;

/// The measured host-vs-modelled-device cost breakdown of one run on the
/// device backend: the queue's accounting plus the serial-host baseline the
/// same operation counts imply. This is the "section" `CachingReport`,
/// `SessionReport` and `EnsembleReport` carry when a run used
/// `Backend::Device`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// The device the run was accounted against.
    pub spec: DeviceSpec,
    /// What the queue executed and charged.
    pub stats: DeviceStats,
    /// Modelled serial-host time for the same submissions, microseconds
    /// ([`crate::host::HostModel::workstation`] over [`DeviceStats::modelled_host_ops`]).
    pub modelled_host_us: f64,
    /// Fixed per-run device initialisation charge ([`DEVICE_INIT_US`]).
    pub init_us: f64,
}

impl DeviceReport {
    /// Build a report from a device spec and a (delta) stats snapshot.
    pub fn new(spec: DeviceSpec, stats: DeviceStats) -> Self {
        let modelled_host_us =
            crate::host::HostModel::workstation().time_us(stats.modelled_host_ops);
        DeviceReport { spec, stats, modelled_host_us, init_us: DEVICE_INIT_US }
    }

    /// Total modelled device time for the run: the queue's launch accounting
    /// plus the fixed per-run initialisation charge.
    pub fn modelled_device_us(&self) -> f64 {
        self.stats.modelled_device_us + self.init_us
    }

    /// Modelled speedup of the device over the serial host for the work this
    /// run actually submitted, initialisation included (1 when nothing was
    /// launched). Rises with chain length as the fixed init charge
    /// amortises — the Figure 14 curve.
    pub fn modelled_speedup(&self) -> f64 {
        if self.stats.launches > 0 {
            self.modelled_host_us / self.modelled_device_us()
        } else {
            1.0
        }
    }

    /// The sustained modelled speedup a long chain approaches: per-launch
    /// device time only, the fixed initialisation charge excluded. This is
    /// the regime the paper's Figures 15 and 16 are measured in (20 000+
    /// samples, init long amortised).
    pub fn kernel_speedup(&self) -> f64 {
        if self.stats.modelled_device_us > 0.0 {
            self.modelled_host_us / self.stats.modelled_device_us
        } else {
            1.0
        }
    }

    /// The launch-overhead share of the modelled (per-launch) device time.
    pub fn launch_overhead_fraction(&self) -> f64 {
        if self.stats.modelled_device_us > 0.0 {
            self.stats.launch_overhead_us / self.stats.modelled_device_us
        } else {
            0.0
        }
    }

    /// Mean occupancy across the run's launches.
    pub fn mean_occupancy(&self) -> f64 {
        self.stats.mean_occupancy()
    }

    /// A compact human-readable section (what the CLI prints).
    pub fn summary(&self) -> String {
        format!(
            "device {}: {} launches ({} batched grids), {:.1}M logical threads, \
             mean occupancy {:.1}%\n  modelled device {:.2} ms (incl. {:.0} ms init, \
             {:.1}% launch overhead) vs modelled serial host {:.2} ms -> {:.2}x\n  \
             measured host execution {:.2} ms",
            self.spec.preset_name().unwrap_or("custom"),
            self.stats.launches,
            self.stats.grid_batches,
            self.stats.logical_threads as f64 / 1.0e6,
            self.mean_occupancy() * 100.0,
            self.modelled_device_us() / 1_000.0,
            self.init_us / 1_000.0,
            self.launch_overhead_fraction() * 100.0,
            self.modelled_host_us / 1_000.0,
            self.modelled_speedup(),
            self.stats.measured_host_us / 1_000.0,
        )
    }
}

/// The simulated command queue behind [`crate::Backend::Device`] (`device`
/// feature).
///
/// Work reaches the queue as *submissions* — one per dispatch-seam call
/// (`map_grid`, `map_indexed`, reductions). Each submission is coalesced into
/// a single [`KernelLaunch`] record covering the whole grid (the batched
/// shape the paper gets from dynamic parallelism), executed **synchronously
/// on the host in submission order**, and charged against the owning
/// backend's [`DeviceSpec`] cost model: launch overhead, occupancy-driven
/// latency hiding, and register-spill traffic for traversal work. Because
/// execution is the same serial loop `Backend::Serial` runs, results are
/// bit-identical to the serial backend — the queue changes *where and in
/// what order batches are accounted*, never the arithmetic. A real GPU
/// backend would overlap execution behind the same seam.
///
/// Accounting is **thread-local**: a run's submissions are visible to
/// [`Queue::stats`] on the thread that dispatched them. Chain-level dispatch
/// on the device backend therefore serialises through the queue
/// ([`crate::Backend::map_mut`] visits items in order on the calling
/// thread), which is also the physically honest model of one device shared
/// by many chains.
#[cfg(feature = "device")]
pub struct Queue;

#[cfg(feature = "device")]
mod queue_state {
    use std::cell::RefCell;

    use super::{DeviceModel, DeviceStats, GridProfile, Queue};

    thread_local! {
        static STATS: RefCell<DeviceStats> = RefCell::new(DeviceStats::default());
    }

    impl Queue {
        /// Snapshot this thread's cumulative accounting.
        pub fn stats() -> DeviceStats {
            STATS.with(|s| *s.borrow())
        }

        /// Clear this thread's accounting.
        pub fn reset() {
            STATS.with(|s| *s.borrow_mut() = DeviceStats::default());
        }

        /// Snapshot and clear in one step.
        pub fn take() -> DeviceStats {
            STATS.with(|s| std::mem::take(&mut *s.borrow_mut()))
        }

        /// Execute one submission on the host and charge it to the queue:
        /// `host_items` closure invocations standing for the launch described
        /// by `profile`, on device `spec`. `grid` marks batched-grid
        /// submissions. Used by the `Backend::Device` dispatch arms.
        ///
        /// An empty submission (nothing to execute, no logical threads) is
        /// executed but not charged — no real runtime would launch a kernel
        /// for it, and charging launch overhead for no-ops would skew every
        /// occupancy and overhead statistic.
        pub fn submit<U>(
            spec: &super::DeviceSpec,
            profile: &GridProfile,
            grid: bool,
            host_items: usize,
            execute: impl FnOnce() -> U,
        ) -> U {
            if host_items == 0 && profile.logical_threads == 0 {
                return execute();
            }
            // mpcgs-analyze: allow(d4, reason = "device cost accounting: measures kernel wall time for the modelled DeviceStats report; the measurement never feeds sampler state")
            let started = std::time::Instant::now();
            let out = execute();
            let measured_us = started.elapsed().as_secs_f64() * 1.0e6;
            let launch = profile.launch(spec);
            let model = DeviceModel::new(*spec);
            let occupancy = model.occupancy(&launch);
            STATS.with(|s| {
                let stats = &mut *s.borrow_mut();
                stats.launches += 1;
                stats.grid_batches += grid as u64;
                stats.logical_threads += launch.threads as u64;
                stats.host_items += host_items as u64;
                stats.modelled_device_us += model.kernel_time_us(&launch);
                stats.launch_overhead_us += spec.launch_overhead_us;
                stats.occupancy_sum += occupancy;
                stats.saturated_launches += (occupancy >= 1.0) as u64;
                stats.modelled_host_ops += profile.host_ops();
                stats.measured_host_us += measured_us;
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DeviceModel {
        DeviceModel::new(DeviceSpec::kepler())
    }

    #[test]
    fn spec_accessors() {
        let spec = DeviceSpec::kepler();
        assert_eq!(spec.total_cores(), 13 * 192);
        assert_eq!(spec.max_resident_threads(), 13 * 2_048);
        assert_eq!(DeviceSpec::default(), spec);
        assert_eq!(*model().spec(), spec);
    }

    #[test]
    fn occupancy_grows_with_threads_and_saturates() {
        let m = model();
        let small = KernelLaunch::new(640, 100.0, 10.0, 5.0);
        let large = KernelLaunch::new(40_000, 100.0, 10.0, 5.0);
        assert!(m.occupancy(&small) < m.occupancy(&large));
        assert!(m.occupancy(&large) <= 1.0);
        let huge = KernelLaunch::new(10_000_000, 100.0, 10.0, 5.0);
        assert_eq!(m.occupancy(&huge), 1.0);
        assert_eq!(m.occupancy(&KernelLaunch::new(0, 1.0, 1.0, 1.0)), 0.0);
        // Rounded up to a full warp.
        let one = KernelLaunch::new(1, 1.0, 0.0, 0.0);
        assert!(m.occupancy(&one) > 0.0);
    }

    #[test]
    fn higher_occupancy_hides_more_latency() {
        let m = model();
        let small = KernelLaunch::new(640, 100.0, 10.0, 5.0);
        let large = KernelLaunch::new(26_000, 100.0, 10.0, 5.0);
        assert!(m.exposed_latency_fraction(&large) < m.exposed_latency_fraction(&small));
        assert!(m.exposed_latency_fraction(&large) >= 0.05);
    }

    #[test]
    fn kernel_time_includes_launch_overhead() {
        let m = model();
        let empty = KernelLaunch::new(0, 0.0, 0.0, 0.0);
        assert_eq!(m.kernel_time_us(&empty), DeviceSpec::kepler().launch_overhead_us);
        let tiny = KernelLaunch::new(32, 10.0, 0.0, 0.0);
        assert!(m.kernel_time_us(&tiny) > DeviceSpec::kepler().launch_overhead_us);
    }

    #[test]
    fn throughput_efficiency_improves_with_thread_count() {
        // Time per thread should drop as the launch grows (latency hiding),
        // i.e. doubling the threads less than doubles the time for
        // memory-bound kernels.
        let m = model();
        let work = |threads: usize| KernelLaunch::new(threads, 50.0, 20.0, 10.0);
        let t1 = m.kernel_time_us(&work(2_000));
        let t2 = m.kernel_time_us(&work(20_000));
        assert!(t2 < 10.0 * t1 * 0.9, "expected sublinear growth: {t1} -> {t2}");
    }

    #[test]
    fn serial_fraction_slows_the_kernel() {
        let m = model();
        let base = KernelLaunch::new(10_000, 200.0, 10.0, 0.0);
        let with_serial = base.with_serial_fraction(0.01);
        assert!(m.kernel_time_us(&with_serial) > m.kernel_time_us(&base));
        // Clamping.
        assert_eq!(base.with_serial_fraction(2.0).serial_fraction, 1.0);
        assert_eq!(base.with_serial_fraction(-1.0).serial_fraction, 0.0);
    }

    #[test]
    fn traversal_spill_grows_superlinearly_past_the_register_budget() {
        let m = model();
        let small = m.traversal_global_accesses(23); // 12-tip tree
        let large = m.traversal_global_accesses(263); // 132-tip tree
        assert!(small < large);
        // Below the budget there is no spill: accesses equal node count.
        assert_eq!(m.traversal_global_accesses(23), 23.0);
        // Above the budget the per-node cost exceeds 1.
        assert!(m.traversal_global_accesses(263) > 263.0);
    }

    #[test]
    fn spec_presets_round_trip_by_name() {
        assert_eq!(DeviceSpec::kepler().preset_name(), Some("kepler"));
        assert_eq!(DeviceSpec::modern().preset_name(), Some("modern"));
        assert_eq!(DeviceSpec::from_preset("KEPLER"), Some(DeviceSpec::kepler()));
        assert_eq!(DeviceSpec::from_preset("modern"), Some(DeviceSpec::modern()));
        assert_eq!(DeviceSpec::from_preset("cuda"), None);
        let custom = DeviceSpec { sms: 1, ..DeviceSpec::kepler() };
        assert_eq!(custom.preset_name(), None);
        // The modern preset is a genuinely bigger device.
        assert!(DeviceSpec::modern().total_cores() > DeviceSpec::kepler().total_cores());
        assert!(DeviceSpec::modern().launch_overhead_us < DeviceSpec::kepler().launch_overhead_us);
    }

    #[test]
    fn grid_profiles_resolve_to_launches() {
        let spec = DeviceSpec::kepler();
        let uniform = GridProfile::uniform(640, 50.0);
        let launch = uniform.launch(&spec);
        assert_eq!(launch.threads, 640);
        assert_eq!(launch.flops_per_thread, 50.0);
        assert_eq!(launch.global_accesses_per_thread, 0.0);
        assert_eq!(uniform.host_ops(), 640.0 * 50.0);

        // Pruning profiles derive spill traffic from the tree size: a tree
        // past the register budget costs more global accesses per node.
        let small = GridProfile::pruning(1_000, 11, 23, 12).launch(&spec);
        let large = GridProfile::pruning(1_000, 131, 263, 132).launch(&spec);
        assert_eq!(small.flops_per_thread, 11.0 * PRUNING_FLOPS_PER_CELL);
        assert_eq!(small.global_accesses_per_thread, 23.0);
        assert!(large.global_accesses_per_thread > 263.0);
        assert_eq!(small.const_accesses_per_thread, 12.0);
        // The host baseline is incremental: ~2 + log2(tips) path nodes per
        // thread, far below the device's full recompute for big trees.
        let small_profile = GridProfile::pruning(1_000, 11, 23, 12);
        assert_eq!(small_profile.host_ops(), 1_000.0 * 6.0 * PRUNING_FLOPS_PER_CELL);
        let large_profile = GridProfile::pruning(1_000, 131, 263, 132);
        assert!(
            large_profile.host_ops()
                < large_profile.logical_threads as f64 * large_profile.flops_per_thread
        );
    }

    #[test]
    fn stats_delta_and_mean_occupancy() {
        let a = DeviceStats {
            launches: 10,
            grid_batches: 4,
            logical_threads: 1_000,
            host_items: 100,
            modelled_device_us: 50.0,
            launch_overhead_us: 20.0,
            occupancy_sum: 2.5,
            saturated_launches: 1,
            modelled_host_ops: 1.0e6,
            measured_host_us: 30.0,
        };
        let b = DeviceStats {
            launches: 4,
            grid_batches: 1,
            logical_threads: 400,
            host_items: 40,
            modelled_device_us: 20.0,
            launch_overhead_us: 8.0,
            occupancy_sum: 1.0,
            saturated_launches: 0,
            modelled_host_ops: 4.0e5,
            measured_host_us: 12.0,
        };
        let d = a.delta(&b);
        assert_eq!(d.launches, 6);
        assert_eq!(d.grid_batches, 3);
        assert_eq!(d.logical_threads, 600);
        assert!((d.modelled_device_us - 30.0).abs() < 1e-12);
        assert!((d.mean_occupancy() - 0.25).abs() < 1e-12);
        assert!(!d.is_empty());
        assert!(DeviceStats::default().is_empty());
        assert_eq!(DeviceStats::default().mean_occupancy(), 0.0);
    }

    #[test]
    fn device_report_derives_speedup_and_overhead() {
        let stats = DeviceStats {
            launches: 2,
            logical_threads: 2_000,
            modelled_device_us: 100.0,
            launch_overhead_us: 16.0,
            occupancy_sum: 1.0,
            modelled_host_ops: 3.0e6,
            ..DeviceStats::default()
        };
        let report = DeviceReport::new(DeviceSpec::kepler(), stats);
        assert!(report.modelled_host_us > 0.0);
        assert_eq!(report.modelled_device_us(), 100.0 + DEVICE_INIT_US);
        let expected = report.modelled_host_us / (100.0 + DEVICE_INIT_US);
        assert!((report.modelled_speedup() - expected).abs() < 1e-12);
        assert!((report.kernel_speedup() - report.modelled_host_us / 100.0).abs() < 1e-12);
        assert!(report.kernel_speedup() > report.modelled_speedup());
        assert!((report.launch_overhead_fraction() - 0.16).abs() < 1e-12);
        assert!((report.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!(report.summary().contains("kepler"));
        // An empty report degrades to neutral ratios.
        let empty = DeviceReport::new(DeviceSpec::kepler(), DeviceStats::default());
        assert_eq!(empty.modelled_speedup(), 1.0);
        assert_eq!(empty.launch_overhead_fraction(), 0.0);
    }

    #[cfg(feature = "device")]
    #[test]
    fn queue_accounts_submissions_per_thread() {
        // Run on a dedicated thread so concurrent tests cannot interleave
        // with this thread-local accounting.
        std::thread::spawn(|| {
            Queue::reset();
            assert!(Queue::stats().is_empty());
            let spec = DeviceSpec::kepler();
            let profile = GridProfile::uniform(64_000, 100.0);
            let out = Queue::submit(&spec, &profile, true, 12, || 7usize);
            assert_eq!(out, 7);
            let stats = Queue::stats();
            assert_eq!(stats.launches, 1);
            assert_eq!(stats.grid_batches, 1);
            assert_eq!(stats.logical_threads, 64_000);
            assert_eq!(stats.host_items, 12);
            assert!(stats.modelled_device_us > spec.launch_overhead_us);
            assert!(stats.occupancy_sum > 0.0);
            assert_eq!(stats.modelled_host_ops, 64_000.0 * 100.0);
            assert!(stats.measured_host_us >= 0.0);
            // take() drains.
            let taken = Queue::take();
            assert_eq!(taken.launches, 1);
            assert!(Queue::stats().is_empty());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn total_time_sums_individual_launches() {
        let m = model();
        let a = KernelLaunch::new(1_000, 100.0, 10.0, 5.0);
        let b = KernelLaunch::new(5_000, 50.0, 5.0, 2.0);
        let total = m.total_time_us(&[a, b]);
        assert!((total - (m.kernel_time_us(&a) + m.kernel_time_us(&b))).abs() < 1e-9);
        assert_eq!(m.total_time_us(&[]), 0.0);
    }
}
