//! A simulated SIMD (GPGPU-style) device with an occupancy / latency-hiding
//! cost model.
//!
//! The paper's speedups come from mapping the sampler's three kernels onto a
//! CUDA device (compute capability 3.5, Kepler). No GPU is available in this
//! environment, so the speedup *figures* are regenerated from this explicit
//! cost model driven by the real operation counts of the Rust sampler. The
//! model captures the three effects the paper credits for the observed
//! curves:
//!
//! 1. **Kernel launch overhead and serial residue** — fixed per-iteration
//!    costs that amortise as the number of samples grows (Figure 14's gentle
//!    rise).
//! 2. **Occupancy-driven latency hiding** — the device only reaches full
//!    throughput when enough threads are resident to cover memory latency;
//!    the data-likelihood kernel launches one thread per (proposal, site)
//!    pair, so throughput — and therefore speedup — grows roughly linearly
//!    with sequence length until the device saturates (Figure 16, and the
//!    paper's observation that "increasing sequence size primarily increases
//!    the number of data likelihood threads executing simultaneously ...
//!    hiding memory latency").
//! 3. **Per-thread memory pressure** — each thread's tree traversal touches
//!    memory proportionally to the number of nodes, and beyond the register /
//!    L1 budget the recursion spills, so larger trees expose more latency and
//!    erode speedup slightly (Figure 15's mild decline).

/// Physical characteristics of the simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp (32 on every CUDA generation).
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: usize,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Global-memory latency in cycles.
    pub global_latency_cycles: f64,
    /// Constant-memory (cached, broadcast) latency in cycles.
    pub const_latency_cycles: f64,
    /// Number of registers' worth of per-thread working set before traversal
    /// state spills to local (global) memory.
    pub register_budget: usize,
}

impl DeviceSpec {
    /// A Kepler-class card comparable to the compute-3.5 hardware used in the
    /// thesis (GK110-like: 13 SMs × 192 cores).
    pub fn kepler() -> Self {
        DeviceSpec {
            sms: 13,
            cores_per_sm: 192,
            warp_size: 32,
            clock_ghz: 0.824,
            max_threads_per_sm: 2_048,
            launch_overhead_us: 8.0,
            global_latency_cycles: 400.0,
            const_latency_cycles: 12.0,
            register_budget: 64,
        }
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> usize {
        self.sms * self.cores_per_sm
    }

    /// Maximum number of resident threads across the device.
    pub fn max_resident_threads(&self) -> usize {
        self.sms * self.max_threads_per_sm
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::kepler()
    }
}

/// One kernel launch, described by its thread count and per-thread work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelLaunch {
    /// Number of threads launched.
    pub threads: usize,
    /// Arithmetic operations per thread.
    pub flops_per_thread: f64,
    /// Global-memory accesses per thread.
    pub global_accesses_per_thread: f64,
    /// Constant-memory accesses per thread.
    pub const_accesses_per_thread: f64,
    /// Fraction of the kernel's total work that executes serially (final
    /// block-level reductions, Section 5.2.1's single-thread reduction tail).
    pub serial_fraction: f64,
}

impl KernelLaunch {
    /// A launch with the given thread count and per-thread work and no
    /// serial residue.
    pub fn new(threads: usize, flops: f64, global: f64, constant: f64) -> Self {
        KernelLaunch {
            threads,
            flops_per_thread: flops,
            global_accesses_per_thread: global,
            const_accesses_per_thread: constant,
            serial_fraction: 0.0,
        }
    }

    /// Set the serial residue fraction.
    pub fn with_serial_fraction(mut self, fraction: f64) -> Self {
        self.serial_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Cycles of work a single thread performs, with the exposed fraction of
    /// memory latency given.
    fn cycles_per_thread(&self, spec: &DeviceSpec, exposed: f64) -> f64 {
        self.flops_per_thread
            + self.global_accesses_per_thread * spec.global_latency_cycles * exposed
            + self.const_accesses_per_thread * spec.const_latency_cycles * exposed
    }
}

/// The device cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceModel {
    spec: DeviceSpec,
}

impl DeviceModel {
    /// Create a model over the given device.
    pub fn new(spec: DeviceSpec) -> Self {
        DeviceModel { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Occupancy of a launch: the fraction of the device's resident-thread
    /// capacity that the launch fills (rounded up to whole warps).
    pub fn occupancy(&self, launch: &KernelLaunch) -> f64 {
        if launch.threads == 0 {
            return 0.0;
        }
        let warps = launch.threads.div_ceil(self.spec.warp_size);
        let threads = warps * self.spec.warp_size;
        (threads as f64 / self.spec.max_resident_threads() as f64).min(1.0)
    }

    /// The fraction of memory latency left exposed after occupancy-based
    /// hiding: with a full complement of resident warps the scheduler can
    /// almost always find an eligible warp, with few warps stalls are fully
    /// exposed.
    pub fn exposed_latency_fraction(&self, launch: &KernelLaunch) -> f64 {
        // Hiding improves with occupancy; the floor keeps even a saturated
        // device from being modelled as latency-free.
        let occupancy = self.occupancy(launch);
        (1.0 - 0.95 * occupancy).clamp(0.05, 1.0)
    }

    /// Modelled execution time of one kernel launch, in microseconds.
    pub fn kernel_time_us(&self, launch: &KernelLaunch) -> f64 {
        if launch.threads == 0 {
            return self.spec.launch_overhead_us;
        }
        let exposed = self.exposed_latency_fraction(launch);
        let cycles_per_thread = launch.cycles_per_thread(&self.spec, exposed);
        let total_cycles = cycles_per_thread * launch.threads as f64;
        // Parallel portion: spread over all cores.
        let parallel_cycles =
            total_cycles * (1.0 - launch.serial_fraction) / self.spec.total_cores() as f64;
        // Serial portion: one core.
        let serial_cycles = total_cycles * launch.serial_fraction;
        let cycles = parallel_cycles + serial_cycles;
        self.spec.launch_overhead_us + cycles / (self.spec.clock_ghz * 1_000.0)
    }

    /// Modelled time for a sequence of launches (microseconds).
    pub fn total_time_us(&self, launches: &[KernelLaunch]) -> f64 {
        launches.iter().map(|l| self.kernel_time_us(l)).sum()
    }

    /// Per-thread global-memory accesses for a pruning traversal over a tree
    /// with `tree_nodes` nodes: structural reads plus spill traffic once the
    /// working set exceeds the register budget (the effect the paper notes as
    /// "the real possibility that a set of sequence data could overrun the
    /// stack", Section 5.2.2).
    pub fn traversal_global_accesses(&self, tree_nodes: usize) -> f64 {
        let structural = tree_nodes as f64;
        let excess = tree_nodes.saturating_sub(self.spec.register_budget) as f64;
        structural + 0.5 * excess
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DeviceModel {
        DeviceModel::new(DeviceSpec::kepler())
    }

    #[test]
    fn spec_accessors() {
        let spec = DeviceSpec::kepler();
        assert_eq!(spec.total_cores(), 13 * 192);
        assert_eq!(spec.max_resident_threads(), 13 * 2_048);
        assert_eq!(DeviceSpec::default(), spec);
        assert_eq!(*model().spec(), spec);
    }

    #[test]
    fn occupancy_grows_with_threads_and_saturates() {
        let m = model();
        let small = KernelLaunch::new(640, 100.0, 10.0, 5.0);
        let large = KernelLaunch::new(40_000, 100.0, 10.0, 5.0);
        assert!(m.occupancy(&small) < m.occupancy(&large));
        assert!(m.occupancy(&large) <= 1.0);
        let huge = KernelLaunch::new(10_000_000, 100.0, 10.0, 5.0);
        assert_eq!(m.occupancy(&huge), 1.0);
        assert_eq!(m.occupancy(&KernelLaunch::new(0, 1.0, 1.0, 1.0)), 0.0);
        // Rounded up to a full warp.
        let one = KernelLaunch::new(1, 1.0, 0.0, 0.0);
        assert!(m.occupancy(&one) > 0.0);
    }

    #[test]
    fn higher_occupancy_hides_more_latency() {
        let m = model();
        let small = KernelLaunch::new(640, 100.0, 10.0, 5.0);
        let large = KernelLaunch::new(26_000, 100.0, 10.0, 5.0);
        assert!(m.exposed_latency_fraction(&large) < m.exposed_latency_fraction(&small));
        assert!(m.exposed_latency_fraction(&large) >= 0.05);
    }

    #[test]
    fn kernel_time_includes_launch_overhead() {
        let m = model();
        let empty = KernelLaunch::new(0, 0.0, 0.0, 0.0);
        assert_eq!(m.kernel_time_us(&empty), DeviceSpec::kepler().launch_overhead_us);
        let tiny = KernelLaunch::new(32, 10.0, 0.0, 0.0);
        assert!(m.kernel_time_us(&tiny) > DeviceSpec::kepler().launch_overhead_us);
    }

    #[test]
    fn throughput_efficiency_improves_with_thread_count() {
        // Time per thread should drop as the launch grows (latency hiding),
        // i.e. doubling the threads less than doubles the time for
        // memory-bound kernels.
        let m = model();
        let work = |threads: usize| KernelLaunch::new(threads, 50.0, 20.0, 10.0);
        let t1 = m.kernel_time_us(&work(2_000));
        let t2 = m.kernel_time_us(&work(20_000));
        assert!(t2 < 10.0 * t1 * 0.9, "expected sublinear growth: {t1} -> {t2}");
    }

    #[test]
    fn serial_fraction_slows_the_kernel() {
        let m = model();
        let base = KernelLaunch::new(10_000, 200.0, 10.0, 0.0);
        let with_serial = base.with_serial_fraction(0.01);
        assert!(m.kernel_time_us(&with_serial) > m.kernel_time_us(&base));
        // Clamping.
        assert_eq!(base.with_serial_fraction(2.0).serial_fraction, 1.0);
        assert_eq!(base.with_serial_fraction(-1.0).serial_fraction, 0.0);
    }

    #[test]
    fn traversal_spill_grows_superlinearly_past_the_register_budget() {
        let m = model();
        let small = m.traversal_global_accesses(23); // 12-tip tree
        let large = m.traversal_global_accesses(263); // 132-tip tree
        assert!(small < large);
        // Below the budget there is no spill: accesses equal node count.
        assert_eq!(m.traversal_global_accesses(23), 23.0);
        // Above the budget the per-node cost exceeds 1.
        assert!(m.traversal_global_accesses(263) > 263.0);
    }

    #[test]
    fn total_time_sums_individual_launches() {
        let m = model();
        let a = KernelLaunch::new(1_000, 100.0, 10.0, 5.0);
        let b = KernelLaunch::new(5_000, 50.0, 5.0, 2.0);
        let total = m.total_time_us(&[a, b]);
        assert!((total - (m.kernel_time_us(&a) + m.kernel_time_us(&b))).abs() < 1e-9);
        assert_eq!(m.total_time_us(&[]), 0.0);
    }
}
