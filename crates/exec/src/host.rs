//! The serial-host cost model (the baseline side of every speedup ratio).
//!
//! The paper's speedups compare mpcgs-on-GPU against LAMARC-on-CPU. The host
//! model is deliberately simple: a single core retiring a fixed number of
//! arithmetic operations per cycle, with memory traffic absorbed into an
//! effective cycles-per-operation figure (a serial pruning likelihood is
//! compute-bound and cache-friendly, so this is a reasonable abstraction).

/// A single-core host processor model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostModel {
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Average cycles retired per arithmetic operation (captures memory
    /// stalls, branch misses and instruction-level parallelism).
    pub cycles_per_op: f64,
}

impl HostModel {
    /// A contemporary workstation core (comparable to the thesis's host CPU).
    pub fn workstation() -> Self {
        HostModel { clock_ghz: 3.0, cycles_per_op: 1.4 }
    }

    /// Time in microseconds to retire `ops` operations serially.
    pub fn time_us(&self, ops: f64) -> f64 {
        debug_assert!(ops >= 0.0, "operation count must be non-negative");
        ops * self.cycles_per_op / (self.clock_ghz * 1_000.0)
    }

    /// Time in microseconds for `ops` operations spread perfectly over
    /// `cores` identical cores (used for the multi-chain baseline, which is
    /// embarrassingly parallel *outside* the burn-in).
    pub fn time_us_on_cores(&self, ops: f64, cores: usize) -> f64 {
        assert!(cores > 0, "core count must be positive");
        self.time_us(ops) / cores as f64
    }
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel::workstation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scales_linearly_with_work() {
        let host = HostModel::workstation();
        let t1 = host.time_us(1.0e6);
        let t2 = host.time_us(2.0e6);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert_eq!(host.time_us(0.0), 0.0);
    }

    #[test]
    fn workstation_throughput_is_plausible() {
        // ~2.1 Gop/s effective: one million operations near half a millisecond.
        let host = HostModel::default();
        let t = host.time_us(1.0e6);
        assert!(t > 100.0 && t < 2_000.0, "unexpected host time {t} us");
    }

    #[test]
    fn multicore_division() {
        let host = HostModel::workstation();
        assert!((host.time_us_on_cores(1e6, 4) - host.time_us(1e6) / 4.0).abs() < 1e-12);
        assert_eq!(host.time_us_on_cores(1e6, 1), host.time_us(1e6));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_is_rejected() {
        HostModel::workstation().time_us(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cores_is_rejected() {
        HostModel::workstation().time_us_on_cores(1.0, 0);
    }
}
