//! Speedup laws and the multi-chain efficiency model (Section 3, Figure 6).
//!
//! The paper's argument for Generalized Metropolis–Hastings is an Amdahl's
//! law argument: the per-chain burn-in `B` is a serial component that the
//! multi-independent-chain work-around cannot parallelise, so its cost
//! `B + N/P` approaches `B` as the processor count grows (Eq. 27), whereas
//! the multi-proposal scheme parallelises the burn-in too and keeps dividing,
//! `(B + N)/P`. These closed forms — together with the classical Amdahl and
//! Gustafson laws — feed the Figure 6 harness and the efficiency analyses in
//! the benches.

/// Amdahl's law: speedup of a workload with serial fraction `serial_fraction`
/// on `p` processors.
///
/// # Panics
/// Panics if `p == 0` or the fraction is outside `[0, 1]`.
pub fn amdahl_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!(p > 0, "processor count must be positive");
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1], got {serial_fraction}"
    );
    1.0 / (serial_fraction + (1.0 - serial_fraction) / p as f64)
}

/// Gustafson's law: scaled speedup when the parallel part grows with the
/// machine.
pub fn gustafson_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!(p > 0, "processor count must be positive");
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1], got {serial_fraction}"
    );
    p as f64 - serial_fraction * (p as f64 - 1.0)
}

/// Idealised time of the multi-chain work-around (Section 3): each of `p`
/// chains pays the full burn-in `b` and `n/p` of the sampling work.
pub fn multichain_time(b: f64, n: f64, p: usize) -> f64 {
    assert!(p > 0, "processor count must be positive");
    b + n / p as f64
}

/// Idealised time when the burn-in is parallelised as well (the
/// generalized-MH scheme): `(b + n)/p`.
pub fn parallel_burnin_time(b: f64, n: f64, p: usize) -> f64 {
    assert!(p > 0, "processor count must be positive");
    (b + n) / p as f64
}

/// Parallel efficiency of the multi-chain scheme relative to perfect scaling.
pub fn multichain_efficiency(b: f64, n: f64, p: usize) -> f64 {
    let ideal = (b + n) / p as f64;
    ideal / multichain_time(b, n, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert_eq!(amdahl_speedup(0.0, 8), 8.0);
        assert_eq!(amdahl_speedup(1.0, 8), 1.0);
        // 10% serial: classic asymptote at 10x.
        assert!(amdahl_speedup(0.1, 1_000_000) < 10.0);
        assert!(amdahl_speedup(0.1, 1_000_000) > 9.9);
        // Monotone in p.
        assert!(amdahl_speedup(0.2, 16) > amdahl_speedup(0.2, 4));
    }

    #[test]
    fn gustafson_grows_linearly() {
        assert_eq!(gustafson_speedup(0.0, 64), 64.0);
        assert_eq!(gustafson_speedup(1.0, 64), 1.0);
        let s8 = gustafson_speedup(0.25, 8);
        assert!((s8 - (8.0 - 0.25 * 7.0)).abs() < 1e-12);
    }

    #[test]
    fn figure6_arithmetic() {
        // B = 4, N = 4 as drawn in Figure 6.
        assert_eq!(multichain_time(4.0, 4.0, 1), 8.0);
        assert_eq!(multichain_time(4.0, 4.0, 2), 6.0);
        assert_eq!(multichain_time(4.0, 4.0, 4), 5.0);
        // Equation 27: the limit is B.
        assert!((multichain_time(4.0, 4.0, 1_000_000) - 4.0).abs() < 1e-3);
        // The parallel-burn-in scheme keeps dividing.
        assert_eq!(parallel_burnin_time(4.0, 4.0, 4), 2.0);
        assert!(parallel_burnin_time(4.0, 4.0, 8) < multichain_time(4.0, 4.0, 8));
    }

    #[test]
    fn efficiency_degrades_with_processor_count() {
        let e1 = multichain_efficiency(1_000.0, 10_000.0, 1);
        let e16 = multichain_efficiency(1_000.0, 10_000.0, 16);
        let e256 = multichain_efficiency(1_000.0, 10_000.0, 256);
        assert!((e1 - 1.0).abs() < 1e-12);
        assert!(e16 < 1.0);
        assert!(e256 < e16, "efficiency must keep dropping: {e16} vs {e256}");
        assert!(e256 < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_processors_rejected() {
        multichain_time(1.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn bad_fraction_rejected() {
        amdahl_speedup(1.5, 4);
    }
}
