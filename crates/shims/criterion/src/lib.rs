//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! package cannot be fetched. This shim implements the subset of the 0.5 API
//! the workspace's benches use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with honest wall-clock measurement: each
//! benchmark is warmed up, then timed over batched iterations sized so a
//! sample takes a meaningful slice of the measurement budget, and the
//! mean / min / max per-iteration times are printed in the familiar
//! `time: [low mean high]` format.
//!
//! No statistical regression machinery, plotting, or disk persistence is
//! provided; the numbers themselves are real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Re-export point for the measurement marker types.
pub mod measurement {
    /// Wall-clock time measurement (the only measurement this shim offers).
    pub struct WallTime;
}

/// Prevent the optimiser from discarding a value (forwarder to
/// `std::hint::black_box`).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Shared sampling configuration.
#[derive(Debug, Clone, Copy)]
struct SamplingConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark manager handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    config: SamplingConfig,
}

impl Criterion {
    /// Accept (and ignore) command-line configuration, as the real API does
    /// when the harness is driven by `cargo bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup { name: name.into(), config: self.config, _criterion: PhantomData }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.config, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    config: SamplingConfig,
    _criterion: PhantomData<&'a M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkLabel,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.config, f);
        self
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I, IN, F>(&mut self, id: I, input: &IN, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkLabel,
        IN: ?Sized,
        F: FnMut(&mut Bencher, &IN),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.config, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op here; results are printed as they complete).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion of the various id forms the API accepts into a printable label.
pub trait IntoBenchmarkLabel {
    /// The label under which results are reported.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The per-benchmark timing driver passed to the closure.
pub struct Bencher {
    config: SamplingConfig,
    /// Mean per-iteration nanoseconds of the last `iter` call.
    last_mean_ns: f64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time the closure: warm up, choose a batch size, then collect samples
    /// of mean per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, tracking a rough
        // per-iteration estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size batches so each of the `sample_size` samples takes an equal
        // share of the measurement budget.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.config.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).floor() as u64).max(1);

        let mut samples = Vec::with_capacity(self.config.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            // Respect the overall budget even if the estimate was far off,
            // but always collect at least two samples.
            if measure_start.elapsed() > self.config.measurement_time * 2 && samples.len() >= 2 {
                break;
            }
        }
        self.last_mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.samples_ns = samples;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, config: SamplingConfig, mut f: F) {
    let mut bencher = Bencher { config, last_mean_ns: 0.0, samples_ns: Vec::new() };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{label:<50} (no measurement: Bencher::iter was never called)");
        return;
    }
    let lo = bencher.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = bencher.samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<50} time: [{} {} {}]",
        format_ns(lo),
        format_ns(bencher.last_mean_ns),
        format_ns(hi)
    );
}

/// Define a function that runs a sequence of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let config = SamplingConfig {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(5),
        };
        let mut b = Bencher { config, last_mean_ns: 0.0, samples_ns: Vec::new() };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.last_mean_ns > 0.0);
        assert!(!b.samples_ns.is_empty());
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).into_label(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).into_label(), "7");
        assert_eq!("plain".into_label(), "plain");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
