//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no network access, so the real `rand` package
//! cannot be fetched from crates.io. This shim implements the exact subset of
//! the 0.8 API the workspace uses — [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait with `gen`/`gen_range`/`gen_bool`, and [`Error`] — with
//! source-compatible signatures, so replacing it with the real crate is a
//! one-line `Cargo.toml` change and zero source edits.
//!
//! All the workspace's actual generators (MT19937, SplitMix64) live in
//! `mcmc::rng`; this crate only provides the trait vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type reported by fallible RNG operations (`try_fill_bytes`).
///
/// The deterministic generators in this workspace never fail, so this type is
/// never constructed in practice; it exists to keep trait signatures
/// source-compatible with `rand` 0.8.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error carrying a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte fill.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`]; the default delegates to
    /// the infallible path.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type (e.g. `[u8; 4]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 into the seed
    /// bytes (the same scheme `rand` 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from an RNG's raw output (the shim's
/// equivalent of sampling from `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift; the O(2^-64) bias is far below
                // anything the statistical tests can resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as StandardSample>::sample(rng) as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard uniform distribution
    /// (`[0, 1)` for floats, full range for integers).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from a range.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must lie in [0,1], got {p}");
        self.gen::<f64>() < p
    }

    /// Fill a mutable slice with standard-uniform draws.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for testing the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = XorShift(0x1234_5678_9ABC_DEF0);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift(42);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i: usize = rng.gen_range(0..7);
            seen[i] = true;
            let j: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = XorShift(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = XorShift(99);
        let by_ref = &mut rng;
        let x = draw(by_ref);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn seed_from_u64_fills_every_byte() {
        struct SeedCapture([u8; 16]);
        impl SeedableRng for SeedCapture {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                SeedCapture(seed)
            }
        }
        let a = SeedCapture::seed_from_u64(1);
        let b = SeedCapture::seed_from_u64(2);
        assert_ne!(a.0, b.0);
        assert!(a.0.iter().any(|&x| x != 0));
    }
}
