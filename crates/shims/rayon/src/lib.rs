//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the real `rayon` package
//! cannot be fetched. This shim provides the subset of the parallel-iterator
//! API the workspace uses — `into_par_iter()` over `Range<usize>`,
//! `par_iter()` over slices, and the `map` / `collect` / `sum` / `reduce`
//! adaptors — with **real data parallelism**: work is split into contiguous
//! chunks and executed on scoped OS threads (`std::thread::scope`), one chunk
//! per available core. Results are always assembled in index order, so the
//! parallel path is deterministic and bit-identical to the serial path for
//! order-sensitive reductions assembled chunk-by-chunk.
//!
//! Unlike real rayon there is no work-stealing pool: each call spawns its
//! scoped threads and joins them before returning. For the coarse-grained
//! work the samplers offload (whole proposals, pattern chunks) the spawn cost
//! is noise; for very fine-grained items callers should batch, exactly as
//! they would to amortise rayon's per-item overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The number of worker threads parallel operations will use (the number of
/// available hardware threads).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim join worker panicked"))
    })
}

/// The common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A data source that can be evaluated independently at each index — the
/// execution model behind every parallel iterator in this shim.
pub trait ParallelIterator: Sized + Sync {
    /// The item produced at each index.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produce the item at `index`. Must be safe to call concurrently from
    /// multiple threads (enforced by the `Sync` supertrait).
    fn par_get(&self, index: usize) -> Self::Item;

    /// Map each item through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Execute and collect all items in index order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(run_in_chunks(&self))
    }

    /// Execute and sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        run_in_chunks(&self).into_iter().sum()
    }

    /// Execute and reduce the items with `op`, starting from `identity()`.
    /// `op` must be associative for the result to be well defined, as with
    /// real rayon.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        run_in_chunks(&self).into_iter().fold(identity(), &op)
    }

    /// Execute `f` on every item for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f).collect::<Vec<()>>();
    }
}

/// Evaluate every index of `source`, chunked across scoped OS threads, and
/// return the items in index order.
fn run_in_chunks<T: ParallelIterator>(source: &T) -> Vec<T::Item> {
    let n = source.par_len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(|i| source.par_get(i)).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(|i| source.par_get(i)).collect::<Vec<_>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Conversion into a parallel iterator (`(0..n).into_par_iter()`,
/// `vec.into_par_iter()` via references).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` over a borrowed collection, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (a reference into the collection).
    type Item: Send + 'data;

    /// Borrowing conversion into a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    fn par_get(&self, index: usize) -> usize {
        self.range.start + index
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// Parallel iterator over slice elements.
pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_get(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Iter = SliceParIter<'data, T>;
    type Item = &'data T;

    fn into_par_iter(self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Iter = SliceParIter<'data, T>;
    type Item = &'data T;

    fn into_par_iter(self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self.as_slice() }
    }
}

/// The `map` adaptor.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, U> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_get(&self, index: usize) -> U {
        (self.f)(self.base.par_get(index))
    }
}

/// Mirror of `rayon::iter` so fully-qualified paths keep working.
pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, Map, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let data: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        let parallel: Vec<f64> = data.par_iter().map(|x| x.sqrt()).collect();
        let serial: Vec<f64> = data.iter().map(|x| x.sqrt()).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sum_and_reduce_agree_with_serial() {
        let s: f64 = (0..10_000).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, (10_000.0 * 9_999.0) / 2.0);
        let m = (0..10_000)
            .into_par_iter()
            .map(|i| ((i as f64) * 0.1).sin())
            .reduce(|| f64::NEG_INFINITY, f64::max);
        let serial =
            (0..10_000).map(|i| ((i as f64) * 0.1).sin()).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(m, serial);
    }

    #[test]
    fn empty_inputs_work() {
        let out: Vec<usize> = (0..0).into_par_iter().collect();
        assert!(out.is_empty());
        let s: f64 = (0..0).into_par_iter().map(|_| 1.0f64).sum();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
