//! Forward-time Wright–Fisher drift simulation (Section 2.4, Eq. 14–16).
//!
//! A diploid population of `N` individuals carries `2N` allele copies; in
//! each discrete generation every copy picks its parent copy uniformly at
//! random, so the count of allele `A` in the next generation is binomial with
//! parameters `2N` and the current frequency (Eq. 16). The simulator exposes
//! single-generation steps, whole trajectories, fixation experiments and the
//! decay of heterozygosity — the quantities the paper's background uses to
//! motivate θ as the estimable compound parameter.

use rand::Rng;

use mcmc::rng::dist::binomial;

use crate::error::CoalescentError;

/// A Wright–Fisher population tracking a single bi-allelic locus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrightFisher {
    /// Number of diploid individuals (2N allele copies).
    population_size: u64,
}

/// Outcome of running a trajectory to fixation or loss.
#[derive(Debug, Clone, PartialEq)]
pub struct FixationOutcome {
    /// Whether the focal allele fixed (true) or was lost (false).
    pub fixed: bool,
    /// Number of generations until absorption.
    pub generations: usize,
    /// The full allele-count trajectory including both endpoints.
    pub trajectory: Vec<u64>,
}

impl WrightFisher {
    /// Create a population of `population_size` diploid individuals.
    pub fn new(population_size: u64) -> Result<Self, CoalescentError> {
        if population_size == 0 {
            return Err(CoalescentError::InvalidSize {
                what: "population",
                requested: 0,
                minimum: 1,
            });
        }
        Ok(WrightFisher { population_size })
    }

    /// Number of diploid individuals.
    pub fn population_size(&self) -> u64 {
        self.population_size
    }

    /// Number of allele copies (2N).
    pub fn allele_copies(&self) -> u64 {
        2 * self.population_size
    }

    /// One generation of drift: resample the allele count binomially
    /// (Eq. 16).
    pub fn step<R: Rng + ?Sized>(&self, rng: &mut R, count: u64) -> u64 {
        let copies = self.allele_copies();
        assert!(count <= copies, "allele count {count} exceeds {copies} copies");
        let p = count as f64 / copies as f64;
        binomial(rng, copies, p)
    }

    /// Simulate `generations` generations starting from `initial_count`,
    /// returning the trajectory (length `generations + 1`).
    pub fn trajectory<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        initial_count: u64,
        generations: usize,
    ) -> Vec<u64> {
        let mut out = Vec::with_capacity(generations + 1);
        let mut count = initial_count;
        out.push(count);
        for _ in 0..generations {
            count = self.step(rng, count);
            out.push(count);
        }
        out
    }

    /// Run until the allele fixes or is lost (absorbing states), up to
    /// `max_generations` (after which the run is truncated and reported as
    /// not fixed).
    pub fn run_to_fixation<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        initial_count: u64,
        max_generations: usize,
    ) -> FixationOutcome {
        let copies = self.allele_copies();
        let mut trajectory = vec![initial_count];
        let mut count = initial_count;
        for generation in 1..=max_generations {
            count = self.step(rng, count);
            trajectory.push(count);
            if count == 0 || count == copies {
                return FixationOutcome {
                    fixed: count == copies,
                    generations: generation,
                    trajectory,
                };
            }
        }
        FixationOutcome { fixed: false, generations: max_generations, trajectory }
    }

    /// Estimate the fixation probability of an allele starting at
    /// `initial_count` copies from `replicates` independent runs. Under pure
    /// drift this converges to `initial_count / 2N`.
    pub fn fixation_probability<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        initial_count: u64,
        replicates: usize,
    ) -> f64 {
        let max_gen = (40 * self.allele_copies()) as usize;
        let fixed = (0..replicates)
            .filter(|_| self.run_to_fixation(rng, initial_count, max_gen).fixed)
            .count();
        fixed as f64 / replicates as f64
    }

    /// Expected heterozygosity `2p(1−p)` of a frequency.
    pub fn heterozygosity(&self, count: u64) -> f64 {
        let p = count as f64 / self.allele_copies() as f64;
        2.0 * p * (1.0 - p)
    }

    /// The theoretical per-generation retention factor of heterozygosity
    /// under drift, `1 − 1/(2N)`.
    pub fn heterozygosity_retention(&self) -> f64 {
        1.0 - 1.0 / self.allele_copies() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmc::rng::Mt19937;

    #[test]
    fn constructor_validates_and_reports_sizes() {
        assert!(WrightFisher::new(0).is_err());
        let wf = WrightFisher::new(50).unwrap();
        assert_eq!(wf.population_size(), 50);
        assert_eq!(wf.allele_copies(), 100);
        assert!((wf.heterozygosity_retention() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn step_preserves_bounds_and_absorbing_states() {
        let mut rng = Mt19937::new(1);
        let wf = WrightFisher::new(20).unwrap();
        for _ in 0..200 {
            let next = wf.step(&mut rng, 10);
            assert!(next <= 40);
        }
        // Absorbing states stay absorbed.
        assert_eq!(wf.step(&mut rng, 0), 0);
        assert_eq!(wf.step(&mut rng, 40), 40);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn step_rejects_impossible_counts() {
        let mut rng = Mt19937::new(1);
        WrightFisher::new(10).unwrap().step(&mut rng, 21);
    }

    #[test]
    fn drift_is_unbiased_in_expectation() {
        let mut rng = Mt19937::new(2);
        let wf = WrightFisher::new(100).unwrap();
        let reps = 20_000;
        let mean: f64 = (0..reps).map(|_| wf.step(&mut rng, 60) as f64).sum::<f64>() / reps as f64;
        assert!((mean - 60.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn trajectory_has_requested_length_and_valid_values() {
        let mut rng = Mt19937::new(3);
        let wf = WrightFisher::new(25).unwrap();
        let traj = wf.trajectory(&mut rng, 25, 100);
        assert_eq!(traj.len(), 101);
        assert_eq!(traj[0], 25);
        assert!(traj.iter().all(|&c| c <= 50));
    }

    #[test]
    fn fixation_probability_equals_initial_frequency() {
        let mut rng = Mt19937::new(4);
        let wf = WrightFisher::new(25).unwrap();
        // Start at 20% frequency: fixation probability should be ~0.2.
        let p = wf.fixation_probability(&mut rng, 10, 2_000);
        assert!((p - 0.2).abs() < 0.03, "fixation probability {p}");
    }

    #[test]
    fn run_to_fixation_reaches_an_absorbing_state() {
        let mut rng = Mt19937::new(5);
        let wf = WrightFisher::new(10).unwrap();
        let outcome = wf.run_to_fixation(&mut rng, 10, 100_000);
        let last = *outcome.trajectory.last().unwrap();
        assert!(last == 0 || last == 20);
        assert_eq!(outcome.fixed, last == 20);
        assert_eq!(outcome.trajectory.len(), outcome.generations + 1);
    }

    #[test]
    fn heterozygosity_decays_at_the_predicted_rate() {
        let mut rng = Mt19937::new(6);
        let wf = WrightFisher::new(50).unwrap();
        let generations = 30usize;
        let reps = 3_000;
        let start = wf.allele_copies() / 2;
        let mut het_sum = 0.0;
        for _ in 0..reps {
            let traj = wf.trajectory(&mut rng, start, generations);
            het_sum += wf.heterozygosity(*traj.last().unwrap());
        }
        let observed = het_sum / reps as f64;
        let predicted =
            wf.heterozygosity(start) * wf.heterozygosity_retention().powi(generations as i32);
        assert!(
            (observed / predicted - 1.0).abs() < 0.1,
            "observed {observed} vs predicted {predicted}"
        );
    }

    #[test]
    fn heterozygosity_is_maximal_at_half_frequency() {
        let wf = WrightFisher::new(10).unwrap();
        assert_eq!(wf.heterozygosity(0), 0.0);
        assert_eq!(wf.heterozygosity(20), 0.0);
        assert!((wf.heterozygosity(10) - 0.5).abs() < 1e-12);
        assert!(wf.heterozygosity(10) > wf.heterozygosity(5));
    }
}
