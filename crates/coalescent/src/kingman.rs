//! The Kingman coalescent prior `P(G|θ)` (Eq. 17–18).
//!
//! Under the Wright–Fisher model with scaled parameter θ = mN_e (Section
//! 2.4), the waiting time to the next coalescence while `k` lineages exist is
//! exponential with rate `k(k−1)/θ`, and each specific genealogy picks up a
//! factor `2/θ` per coalescent event. The log prior of a genealogy is
//! therefore
//!
//! ```text
//! ln P(G|θ) = (n−1)·ln(2/θ) − Σ_intervals k(k−1)·t_k / θ
//! ```
//!
//! which is Eq. 18. The relative-likelihood ratio `P(G|θ)/P(G|θ₀)` of Eq. 25
//! is also provided directly since it is the quantity the MLE stage needs.

use phylo::tree::CoalescentIntervals;
use phylo::GeneTree;

use crate::error::CoalescentError;

/// The Kingman coalescent prior for a given θ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KingmanPrior {
    theta: f64,
}

impl KingmanPrior {
    /// Create a prior with the given θ (> 0).
    pub fn new(theta: f64) -> Result<Self, CoalescentError> {
        if !(theta > 0.0 && theta.is_finite()) {
            return Err(CoalescentError::InvalidParameter {
                name: "theta",
                value: theta,
                constraint: "theta > 0",
            });
        }
        Ok(KingmanPrior { theta })
    }

    /// The θ parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// `ln P(G|θ)` from an interval decomposition.
    pub fn log_prior_intervals(&self, intervals: &CoalescentIntervals) -> f64 {
        let events = intervals.n_coalescences() as f64;
        events * (2.0 / self.theta).ln() - intervals.waiting_statistic() / self.theta
    }

    /// `ln P(G|θ)` for a genealogy.
    pub fn log_prior(&self, tree: &GeneTree) -> f64 {
        self.log_prior_intervals(&tree.intervals())
    }

    /// The log relative likelihood `ln [P(G|θ)/P(G|θ₀)]` of Eq. 25, where
    /// `self` plays the role of the driving θ₀.
    pub fn log_relative_likelihood(
        &self,
        intervals: &CoalescentIntervals,
        theta: f64,
    ) -> Result<f64, CoalescentError> {
        let other = KingmanPrior::new(theta)?;
        Ok(other.log_prior_intervals(intervals) - self.log_prior_intervals(intervals))
    }

    /// Expected time to the most recent common ancestor of `n` samples:
    /// `θ·(1 − 1/n)` with the paper's rate convention.
    pub fn expected_tmrca(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        self.theta * (1.0 - 1.0 / n as f64)
    }

    /// Expected total branch length of a genealogy of `n` samples:
    /// `θ·Σ_{i=1}^{n−1} 1/i`.
    pub fn expected_total_branch_length(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        self.theta * (1..n).map(|i| 1.0 / i as f64).sum::<f64>()
    }

    /// Expected length of the interval during which `k` lineages exist:
    /// `θ / (k(k−1))`.
    pub fn expected_interval_length(&self, k: usize) -> f64 {
        if k < 2 {
            return 0.0;
        }
        self.theta / (k * (k - 1)) as f64
    }

    /// The density `p_k(t)` of Eq. 17: probability density that the most
    /// recent coalescence of `k` lineages occurred `t` time units ago.
    pub fn interval_density(&self, k: usize, t: f64) -> f64 {
        if k < 2 || t < 0.0 {
            return 0.0;
        }
        let rate = (k * (k - 1)) as f64 / self.theta;
        // Density of the waiting time: rate * exp(-rate * t). Eq. 17 writes
        // the per-pair form (2/θ)·exp(−k(k−1)t/θ); the total-event density
        // integrates to one and is what a simulator must use.
        rate * (-rate * t).exp()
    }

    /// Maximum-likelihood θ̂ given a single observed genealogy: setting
    /// `d/dθ ln P(G|θ) = d/dθ [−(n−1)·ln θ − W/θ] = 0` (with `W` the waiting
    /// statistic `Σ k(k−1) t_k`) gives `θ̂ = W / (n−1)`.
    pub fn mle_from_intervals(intervals: &CoalescentIntervals) -> f64 {
        let events = intervals.n_coalescences().max(1) as f64;
        intervals.waiting_statistic() / events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::tree::TreeBuilder;

    fn four_tip_tree() -> GeneTree {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let a = b.join(t0, t1, 1.0);
        let c = b.join(a, t2, 2.5);
        b.join(c, t3, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn log_prior_matches_hand_computation() {
        let tree = four_tip_tree();
        let prior = KingmanPrior::new(2.0).unwrap();
        // Intervals: k=4 len 1.0, k=3 len 1.5, k=2 len 1.5; W = 24 (see the
        // phylo interval tests). ln P = 3 ln(2/2) - 24/2 = -12.
        let lp = prior.log_prior(&tree);
        assert!((lp - (-12.0)).abs() < 1e-12, "{lp}");

        let prior1 = KingmanPrior::new(1.0).unwrap();
        let lp1 = prior1.log_prior(&tree);
        assert!((lp1 - (3.0 * 2.0f64.ln() - 24.0)).abs() < 1e-12);
    }

    #[test]
    fn relative_likelihood_is_difference_of_log_priors() {
        let tree = four_tip_tree();
        let intervals = tree.intervals();
        let driving = KingmanPrior::new(0.5).unwrap();
        let rel = driving.log_relative_likelihood(&intervals, 2.0).unwrap();
        let expect = KingmanPrior::new(2.0).unwrap().log_prior_intervals(&intervals)
            - driving.log_prior_intervals(&intervals);
        assert!((rel - expect).abs() < 1e-12);
        // Relative likelihood of the driving value itself is zero.
        assert!(driving.log_relative_likelihood(&intervals, 0.5).unwrap().abs() < 1e-12);
        assert!(driving.log_relative_likelihood(&intervals, -1.0).is_err());
    }

    #[test]
    fn analytic_expectations() {
        let prior = KingmanPrior::new(3.0).unwrap();
        assert_eq!(prior.theta(), 3.0);
        assert!((prior.expected_tmrca(2) - 1.5).abs() < 1e-12);
        assert!((prior.expected_tmrca(10) - 3.0 * 0.9).abs() < 1e-12);
        assert_eq!(prior.expected_tmrca(1), 0.0);
        assert!((prior.expected_interval_length(2) - 1.5).abs() < 1e-12);
        assert!((prior.expected_interval_length(4) - 0.25).abs() < 1e-12);
        assert_eq!(prior.expected_interval_length(1), 0.0);
        // n=3: theta * (1 + 1/2) = 4.5.
        assert!((prior.expected_total_branch_length(3) - 4.5).abs() < 1e-12);
        assert_eq!(prior.expected_total_branch_length(1), 0.0);
    }

    #[test]
    fn interval_density_integrates_to_one() {
        let prior = KingmanPrior::new(1.5).unwrap();
        let k = 5;
        let dt = 1e-4;
        let mut integral = 0.0;
        let mut t = 0.0;
        while t < 10.0 {
            integral += prior.interval_density(k, t) * dt;
            t += dt;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
        assert_eq!(prior.interval_density(1, 0.5), 0.0);
        assert_eq!(prior.interval_density(3, -0.5), 0.0);
    }

    #[test]
    fn mle_recovers_theta_that_maximises_the_prior() {
        let tree = four_tip_tree();
        let intervals = tree.intervals();
        let mle = KingmanPrior::mle_from_intervals(&intervals);
        // W = 24, events = 3 -> 8.
        assert!((mle - 8.0).abs() < 1e-12);
        // The log prior at the MLE beats nearby values.
        let at = KingmanPrior::new(mle).unwrap().log_prior_intervals(&intervals);
        let lo = KingmanPrior::new(mle * 0.8).unwrap().log_prior_intervals(&intervals);
        let hi = KingmanPrior::new(mle * 1.2).unwrap().log_prior_intervals(&intervals);
        assert!(at > lo && at > hi);
    }

    #[test]
    fn rejects_invalid_theta() {
        assert!(KingmanPrior::new(0.0).is_err());
        assert!(KingmanPrior::new(-2.0).is_err());
        assert!(KingmanPrior::new(f64::INFINITY).is_err());
    }

    #[test]
    fn larger_theta_favours_taller_trees() {
        // A tall tree should be relatively more probable under a large theta
        // than under a small one.
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("a", 0.0);
        let t1 = b.add_tip("b", 0.0);
        b.join(t0, t1, 5.0);
        let tall = b.build().unwrap();

        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("a", 0.0);
        let t1 = b.add_tip("b", 0.0);
        b.join(t0, t1, 0.1);
        let short = b.build().unwrap();

        let small = KingmanPrior::new(0.5).unwrap();
        let large = KingmanPrior::new(5.0).unwrap();
        let ratio_tall = large.log_prior(&tall) - small.log_prior(&tall);
        let ratio_short = large.log_prior(&short) - small.log_prior(&short);
        assert!(ratio_tall > ratio_short);
    }
}
