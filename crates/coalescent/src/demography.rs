//! Population-size histories (demographic models).
//!
//! The coalescent rate while `k` lineages exist is `k(k−1)/θ(t)` where `θ(t)`
//! reflects the (scaled) population size at time `t` before the present. The
//! thesis estimates a constant θ, but LAMARC's wider parameter set includes
//! growth rates (Section 7 lists extending the estimator as future work), so
//! a minimal demography abstraction is provided: constant size and
//! exponential growth. The key operation is drawing the waiting time to the
//! next coalescence by inverting the cumulative hazard.

use rand::Rng;

use crate::error::CoalescentError;

/// A population-size history expressed through the time-dependent scaled
/// parameter θ(t).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Demography {
    /// Constant θ.
    Constant {
        /// The scaled population parameter θ = mN_e.
        theta: f64,
    },
    /// Exponential growth toward the present at rate `growth` (> 0 means the
    /// population was smaller in the past): θ(t) = θ₀·e^{−growth·t} looking
    /// backwards in time.
    Exponential {
        /// θ at the present.
        theta0: f64,
        /// Growth rate per unit coalescent time.
        growth: f64,
    },
}

impl Demography {
    /// A constant-size demography.
    pub fn constant(theta: f64) -> Result<Self, CoalescentError> {
        if !(theta > 0.0 && theta.is_finite()) {
            return Err(CoalescentError::InvalidParameter {
                name: "theta",
                value: theta,
                constraint: "theta > 0",
            });
        }
        Ok(Demography::Constant { theta })
    }

    /// An exponentially growing (or shrinking, for negative rates) population.
    pub fn exponential(theta0: f64, growth: f64) -> Result<Self, CoalescentError> {
        if !(theta0 > 0.0 && theta0.is_finite()) {
            return Err(CoalescentError::InvalidParameter {
                name: "theta0",
                value: theta0,
                constraint: "theta0 > 0",
            });
        }
        if !growth.is_finite() {
            return Err(CoalescentError::InvalidParameter {
                name: "growth",
                value: growth,
                constraint: "finite",
            });
        }
        Ok(Demography::Exponential { theta0, growth })
    }

    /// θ at time `t` before the present.
    pub fn theta_at(&self, t: f64) -> f64 {
        match *self {
            Demography::Constant { theta } => theta,
            Demography::Exponential { theta0, growth } => theta0 * (-growth * t).exp(),
        }
    }

    /// θ at the present (t = 0).
    pub fn theta0(&self) -> f64 {
        self.theta_at(0.0)
    }

    /// Cumulative coalescent hazard for `k` lineages between `start` and
    /// `start + dt`: ∫ k(k−1)/θ(s) ds.
    pub fn cumulative_hazard(&self, k: usize, start: f64, dt: f64) -> f64 {
        let pairs_rate = (k * (k - 1)) as f64;
        match *self {
            Demography::Constant { theta } => pairs_rate * dt / theta,
            Demography::Exponential { theta0, growth } => {
                if growth.abs() < 1e-12 {
                    pairs_rate * dt / theta0
                } else {
                    pairs_rate / (theta0 * growth)
                        * ((growth * (start + dt)).exp() - (growth * start).exp())
                }
            }
        }
    }

    /// Draw the waiting time from `start` until the next coalescence of `k`
    /// lineages, by inverting the cumulative hazard against a standard
    /// exponential draw.
    pub fn sample_waiting_time<R: Rng + ?Sized>(&self, rng: &mut R, k: usize, start: f64) -> f64 {
        assert!(k >= 2, "waiting times need at least two lineages");
        let pairs_rate = (k * (k - 1)) as f64;
        let e = mcmc::rng::dist::exponential(rng, 1.0);
        match *self {
            Demography::Constant { theta } => e * theta / pairs_rate,
            Demography::Exponential { theta0, growth } => {
                if growth.abs() < 1e-12 {
                    e * theta0 / pairs_rate
                } else {
                    // Solve pairs/(theta0*g) * (e^{g(start+t)} - e^{g start}) = E.
                    let base = (growth * start).exp();
                    let arg = base + e * theta0 * growth / pairs_rate;
                    if arg <= 0.0 {
                        // Shrinking population whose hazard never reaches E:
                        // effectively an infinite wait; return a huge value.
                        f64::INFINITY
                    } else {
                        arg.ln() / growth - start
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmc::rng::Mt19937;

    #[test]
    fn constructors_validate() {
        assert!(Demography::constant(1.0).is_ok());
        assert!(Demography::constant(0.0).is_err());
        assert!(Demography::exponential(1.0, 0.5).is_ok());
        assert!(Demography::exponential(1.0, -0.5).is_ok());
        assert!(Demography::exponential(0.0, 0.5).is_err());
        assert!(Demography::exponential(1.0, f64::NAN).is_err());
    }

    #[test]
    fn theta_at_follows_the_model() {
        let c = Demography::constant(2.0).unwrap();
        assert_eq!(c.theta_at(0.0), 2.0);
        assert_eq!(c.theta_at(10.0), 2.0);
        assert_eq!(c.theta0(), 2.0);

        let e = Demography::exponential(2.0, 1.0).unwrap();
        assert_eq!(e.theta0(), 2.0);
        assert!((e.theta_at(1.0) - 2.0 * (-1.0f64).exp()).abs() < 1e-12);
        assert!(e.theta_at(5.0) < e.theta_at(1.0));
    }

    #[test]
    fn cumulative_hazard_constant_matches_closed_form() {
        let c = Demography::constant(4.0).unwrap();
        // k=3: rate 6/4 = 1.5 per unit time; over 2 units -> 3.
        assert!((c.cumulative_hazard(3, 0.0, 2.0) - 3.0).abs() < 1e-12);
        // Exponential with ~zero growth reduces to constant.
        let e = Demography::exponential(4.0, 1e-15).unwrap();
        assert!((e.cumulative_hazard(3, 0.0, 2.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn growing_population_coalesces_faster_in_the_past() {
        let e = Demography::exponential(1.0, 2.0).unwrap();
        let early = e.cumulative_hazard(2, 0.0, 0.5);
        let late = e.cumulative_hazard(2, 2.0, 0.5);
        assert!(late > early, "hazard deeper in the past must be larger under growth");
    }

    #[test]
    fn constant_waiting_times_have_the_kingman_mean() {
        let mut rng = Mt19937::new(7);
        let d = Demography::constant(2.0).unwrap();
        let n = 50_000;
        let k = 4;
        let mean: f64 =
            (0..n).map(|_| d.sample_waiting_time(&mut rng, k, 0.0)).sum::<f64>() / n as f64;
        // E[T] = theta / (k(k-1)) = 2/12.
        assert!((mean - 2.0 / 12.0).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn exponential_waiting_times_match_inverted_hazard_statistics() {
        let mut rng = Mt19937::new(11);
        let d = Demography::exponential(1.0, 1.0).unwrap();
        let n = 50_000;
        let k = 2;
        let times: Vec<f64> = (0..n).map(|_| d.sample_waiting_time(&mut rng, k, 0.0)).collect();
        // All finite, positive, and the cumulative hazard evaluated at the
        // drawn time is Exp(1)-distributed (mean ~ 1).
        assert!(times.iter().all(|&t| t.is_finite() && t >= 0.0));
        let mean_hazard: f64 =
            times.iter().map(|&t| d.cumulative_hazard(k, 0.0, t)).sum::<f64>() / n as f64;
        assert!((mean_hazard - 1.0).abs() < 0.02, "mean hazard {mean_hazard}");
        // Growth shortens waits relative to the constant model.
        let c = Demography::constant(1.0).unwrap();
        let mean_growth: f64 = times.iter().sum::<f64>() / n as f64;
        let mean_const: f64 =
            (0..n).map(|_| c.sample_waiting_time(&mut rng, k, 0.0)).sum::<f64>() / n as f64;
        assert!(mean_growth < mean_const);
    }

    #[test]
    fn shrinking_population_can_never_coalesce() {
        // With a strongly negative growth rate the hazard saturates; some
        // draws exceed it and must return infinity rather than panic.
        let mut rng = Mt19937::new(13);
        let d = Demography::exponential(1.0, -5.0).unwrap();
        let mut saw_infinite = false;
        for _ in 0..2_000 {
            if d.sample_waiting_time(&mut rng, 2, 0.0).is_infinite() {
                saw_infinite = true;
                break;
            }
        }
        assert!(saw_infinite, "expected some draws to be infinite under strong shrinkage");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn waiting_time_requires_two_lineages() {
        let mut rng = Mt19937::new(1);
        Demography::constant(1.0).unwrap().sample_waiting_time(&mut rng, 1, 0.0);
    }
}
