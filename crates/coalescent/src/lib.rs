//! Coalescent-theory substrate.
//!
//! Implements the population-genetics machinery of Section 2.4 and the data
//! simulators of Section 6.1:
//!
//! * [`kingman`] — the Kingman coalescent prior `P(G|θ)` of Eq. 17–18 and its
//!   analytic expectations, used both by the samplers (posterior term) and by
//!   the tests that validate them.
//! * [`wright_fisher`] — a discrete-generation Wright–Fisher drift simulator
//!   (Eq. 14–16): binomial resampling of allele counts, fixation, and
//!   heterozygosity decay.
//! * [`demography`] — population-size histories (constant, exponential
//!   growth) expressed through the time-rescaling of the coalescent.
//! * [`tree_sim`] — a coalescent genealogy simulator standing in for Hudson's
//!   `ms` (the paper generates its test trees with `ms 12 1 -T`).
//! * [`seq_sim`] — a sequence simulator standing in for `seq-gen`: evolves
//!   sequences down a genealogy under any substitution model from the `phylo`
//!   crate (the paper uses `seq-gen -mF84`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demography;
pub mod error;
pub mod kingman;
pub mod seq_sim;
pub mod tree_sim;
pub mod wright_fisher;

pub use demography::Demography;
pub use error::CoalescentError;
pub use kingman::KingmanPrior;
pub use seq_sim::SequenceSimulator;
pub use tree_sim::CoalescentSimulator;
pub use wright_fisher::WrightFisher;
