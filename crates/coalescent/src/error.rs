//! Error type for the coalescent substrate.

use std::fmt;

/// Errors produced by the coalescent simulators and prior computations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoalescentError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// A simulation was requested with an unusable size (e.g. fewer than two
    /// samples).
    InvalidSize {
        /// What was being sized.
        what: &'static str,
        /// The requested size.
        requested: usize,
        /// The minimum acceptable size.
        minimum: usize,
    },
    /// An error bubbled up from the phylogenetic substrate.
    Phylo(phylo::PhyloError),
}

impl fmt::Display for CoalescentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoalescentError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name}={value}: must satisfy {constraint}")
            }
            CoalescentError::InvalidSize { what, requested, minimum } => {
                write!(f, "invalid {what} size {requested}: need at least {minimum}")
            }
            CoalescentError::Phylo(e) => write!(f, "phylogenetic error: {e}"),
        }
    }
}

impl std::error::Error for CoalescentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoalescentError::Phylo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<phylo::PhyloError> for CoalescentError {
    fn from(e: phylo::PhyloError) -> Self {
        CoalescentError::Phylo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoalescentError::InvalidParameter {
            name: "theta",
            value: -1.0,
            constraint: "theta > 0",
        };
        assert!(e.to_string().contains("theta"));

        let e = CoalescentError::InvalidSize { what: "sample", requested: 1, minimum: 2 };
        assert!(e.to_string().contains("at least 2"));

        let inner = phylo::PhyloError::Empty { what: "tree" };
        let e: CoalescentError = inner.into();
        assert!(e.to_string().contains("tree"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
