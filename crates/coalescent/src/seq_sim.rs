//! Sequence simulation along a genealogy (the `seq-gen` substitute).
//!
//! Section 6.1 produces test data with `seq-gen -mF84 -l 200 -s 1.0 <
//! treefile`: a root sequence is drawn from the model's stationary
//! frequencies and evolved down each branch under the substitution model,
//! with an overall branch-length scale factor (the `-s` option — the thesis
//! uses it to express the true θ of the simulated population). The output is
//! an alignment in PHYLIP format.

use rand::Rng;

use mcmc::rng::dist::categorical;
use phylo::likelihood::effective_branch_length;
use phylo::model::SubstitutionModel;
use phylo::{Alignment, GeneTree, Nucleotide, Sequence};

use crate::error::CoalescentError;

/// Simulates sequence data along genealogies under a substitution model.
#[derive(Debug, Clone)]
pub struct SequenceSimulator<M> {
    model: M,
    sequence_length: usize,
    branch_scale: f64,
}

impl<M: SubstitutionModel> SequenceSimulator<M> {
    /// Create a simulator producing sequences of `sequence_length` sites with
    /// branch lengths multiplied by `branch_scale` (the `-s` scale of
    /// seq-gen; the thesis passes the true θ here).
    pub fn new(
        model: M,
        sequence_length: usize,
        branch_scale: f64,
    ) -> Result<Self, CoalescentError> {
        if sequence_length == 0 {
            return Err(CoalescentError::InvalidSize {
                what: "sequence length",
                requested: 0,
                minimum: 1,
            });
        }
        if !(branch_scale > 0.0 && branch_scale.is_finite()) {
            return Err(CoalescentError::InvalidParameter {
                name: "branch_scale",
                value: branch_scale,
                constraint: "branch_scale > 0",
            });
        }
        Ok(SequenceSimulator { model, sequence_length, branch_scale })
    }

    /// The substitution model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The configured sequence length.
    pub fn sequence_length(&self) -> usize {
        self.sequence_length
    }

    /// The branch-length scale factor.
    pub fn branch_scale(&self) -> f64 {
        self.branch_scale
    }

    /// Draw a root sequence from the stationary distribution.
    fn root_sequence<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Nucleotide> {
        let freqs = self.model.base_frequencies().as_array();
        (0..self.sequence_length)
            .map(|_| {
                let idx = categorical(rng, &freqs).expect("frequencies are a distribution");
                Nucleotide::from_index(idx)
            })
            .collect()
    }

    /// Evolve a parent sequence along a branch of (unscaled) length `t`.
    fn evolve_branch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        parent: &[Nucleotide],
        t: f64,
    ) -> Vec<Nucleotide> {
        let scaled = effective_branch_length(t, self.branch_scale);
        // One transition matrix per branch; rows are categorical samplers.
        let matrix = self.model.transition_matrix(scaled);
        parent
            .iter()
            .map(|&from| {
                let row = &matrix[from.index()];
                let idx = categorical(rng, row).expect("transition rows are distributions");
                Nucleotide::from_index(idx)
            })
            .collect()
    }

    /// Simulate an alignment for the tips of `tree`.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tree: &GeneTree,
    ) -> Result<Alignment, CoalescentError> {
        // Pre-order: parents before children, so we can evolve top-down.
        let mut pre_order = tree.post_order();
        pre_order.reverse();
        let mut sequences: Vec<Option<Vec<Nucleotide>>> = vec![None; tree.n_nodes()];
        sequences[tree.root()] = Some(self.root_sequence(rng));
        for &node in &pre_order {
            if node == tree.root() {
                continue;
            }
            let parent = tree.parent(node).expect("non-root node has a parent");
            let branch = tree.branch_length(node).expect("non-root node has a branch");
            let parent_seq =
                sequences[parent].clone().expect("pre-order guarantees the parent is done");
            sequences[node] = Some(self.evolve_branch(rng, &parent_seq, branch));
        }
        let mut out = Vec::with_capacity(tree.n_tips());
        for tip in tree.tips() {
            let name = tree.label(tip).map(str::to_string).unwrap_or_else(|| format!("t{tip}"));
            let bases = sequences[tip].clone().expect("every tip was reached");
            out.push(Sequence::new(name, bases));
        }
        Ok(Alignment::new(out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_sim::CoalescentSimulator;
    use mcmc::rng::Mt19937;
    use phylo::model::{BaseFrequencies, Jc69, F84};
    use phylo::tree::TreeBuilder;

    fn two_tip_tree(height: f64) -> GeneTree {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        b.join(x, y, height);
        b.build().unwrap()
    }

    #[test]
    fn dimensions_and_names_match_the_tree() {
        let mut rng = Mt19937::new(3);
        let sim = SequenceSimulator::new(Jc69::new(), 150, 1.0).unwrap();
        let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 12).unwrap();
        let alignment = sim.simulate(&mut rng, &tree).unwrap();
        assert_eq!(alignment.n_sequences(), 12);
        assert_eq!(alignment.n_sites(), 150);
        for label in tree.tip_labels() {
            assert!(alignment.by_name(&label).is_some(), "missing sequence for tip {label}");
        }
        assert_eq!(sim.sequence_length(), 150);
        assert_eq!(sim.branch_scale(), 1.0);
        assert_eq!(sim.model().name(), "JC69");
    }

    #[test]
    fn zero_height_tree_gives_identical_sequences() {
        let mut rng = Mt19937::new(4);
        let sim = SequenceSimulator::new(Jc69::new(), 200, 1.0).unwrap();
        let tree = two_tip_tree(1e-12);
        let alignment = sim.simulate(&mut rng, &tree).unwrap();
        assert_eq!(
            alignment.sequence(0).hamming_distance(alignment.sequence(1)),
            0,
            "vanishing branch lengths must not introduce substitutions"
        );
    }

    #[test]
    fn divergence_grows_with_branch_length() {
        let mut rng = Mt19937::new(5);
        let sim = SequenceSimulator::new(Jc69::new(), 2_000, 1.0).unwrap();
        let close = sim.simulate(&mut rng, &two_tip_tree(0.01)).unwrap();
        let far = sim.simulate(&mut rng, &two_tip_tree(1.5)).unwrap();
        let d_close = close.sequence(0).hamming_distance(close.sequence(1));
        let d_far = far.sequence(0).hamming_distance(far.sequence(1));
        assert!(d_far > 5 * d_close.max(1), "close {d_close} vs far {d_far}");
    }

    #[test]
    fn pairwise_divergence_matches_jc_expectation() {
        // Two tips at height t: separation 2t; expected p-distance is
        // JC69::prob_differ(2t).
        let mut rng = Mt19937::new(6);
        let t = 0.25;
        let sites = 20_000;
        let sim = SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap();
        let alignment = sim.simulate(&mut rng, &two_tip_tree(t)).unwrap();
        let p = alignment.sequence(0).hamming_distance(alignment.sequence(1)) as f64 / sites as f64;
        let expect = Jc69::prob_differ(2.0 * t);
        assert!((p - expect).abs() < 0.012, "p {p} vs expected {expect}");
    }

    #[test]
    fn branch_scale_acts_like_longer_branches() {
        let mut rng = Mt19937::new(7);
        let sites = 8_000;
        let scaled = SequenceSimulator::new(Jc69::new(), sites, 3.0).unwrap();
        let unscaled = SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap();
        let tree = two_tip_tree(0.1);
        let a = scaled.simulate(&mut rng, &tree).unwrap();
        let b = unscaled.simulate(&mut rng, &tree).unwrap();
        let da = a.sequence(0).hamming_distance(a.sequence(1));
        let db = b.sequence(0).hamming_distance(b.sequence(1));
        assert!(da > db, "scaling branches up must increase divergence: {da} vs {db}");
    }

    #[test]
    fn f84_simulation_shows_transition_bias() {
        let mut rng = Mt19937::new(8);
        let freqs = BaseFrequencies::uniform();
        let sim = SequenceSimulator::new(F84::new(freqs, 8.0).unwrap(), 30_000, 1.0).unwrap();
        let alignment = sim.simulate(&mut rng, &two_tip_tree(0.15)).unwrap();
        let (mut transitions, mut transversions) = (0usize, 0usize);
        for site in 0..alignment.n_sites() {
            let a = alignment.base(0, site);
            let b = alignment.base(1, site);
            if a == b {
                continue;
            }
            if a.is_transition_with(b) {
                transitions += 1;
            } else {
                transversions += 1;
            }
        }
        assert!(
            transitions as f64 > 1.5 * transversions as f64,
            "F84 with kappa=8 should be transition-biased: {transitions} ts vs {transversions} tv"
        );
    }

    #[test]
    fn base_composition_follows_model_frequencies() {
        let mut rng = Mt19937::new(9);
        let freqs = BaseFrequencies::new(0.4, 0.1, 0.1, 0.4).unwrap();
        let sim =
            SequenceSimulator::new(phylo::model::F81::normalized(freqs), 30_000, 1.0).unwrap();
        let alignment = sim.simulate(&mut rng, &two_tip_tree(0.2)).unwrap();
        let observed = alignment.base_frequencies();
        assert!((observed.freq(Nucleotide::A) - 0.4).abs() < 0.02);
        assert!((observed.freq(Nucleotide::C) - 0.1).abs() < 0.02);
    }

    #[test]
    fn rejects_bad_configuration() {
        assert!(SequenceSimulator::new(Jc69::new(), 0, 1.0).is_err());
        assert!(SequenceSimulator::new(Jc69::new(), 10, 0.0).is_err());
        assert!(SequenceSimulator::new(Jc69::new(), 10, f64::NAN).is_err());
    }
}
