//! Coalescent genealogy simulation (the `ms` substitute).
//!
//! Section 6.1 generates test genealogies with Hudson's `ms` (`ms 12 1 -T`);
//! this module provides the equivalent generator: `n` contemporaneous
//! lineages coalesce backwards in time, the waiting time while `k` lineages
//! remain being exponential with rate `k(k−1)/θ` (or the demography's
//! time-rescaled version), and the coalescing pair chosen uniformly. Trees
//! can be exported as Newick strings exactly as `ms -T` would print them.

use mcmc::rng::dist::sample_without_replacement;
use rand::Rng;

use phylo::io::newick::write_newick;
use phylo::tree::TreeBuilder;
use phylo::GeneTree;

use crate::demography::Demography;
use crate::error::CoalescentError;

/// Simulates coalescent genealogies under a demographic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescentSimulator {
    demography: Demography,
}

impl CoalescentSimulator {
    /// Simulator for a constant-size population with the given θ.
    pub fn constant(theta: f64) -> Result<Self, CoalescentError> {
        Ok(CoalescentSimulator { demography: Demography::constant(theta)? })
    }

    /// Simulator for an arbitrary demography.
    pub fn new(demography: Demography) -> Self {
        CoalescentSimulator { demography }
    }

    /// The demography in use.
    pub fn demography(&self) -> &Demography {
        &self.demography
    }

    /// Simulate one genealogy of `n_samples` contemporaneous tips, labelled
    /// `"1"…"n"` in the `ms` convention.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_samples: usize,
    ) -> Result<GeneTree, CoalescentError> {
        self.simulate_labelled(rng, &default_labels(n_samples))
    }

    /// Simulate one genealogy with explicit tip labels.
    pub fn simulate_labelled<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        labels: &[String],
    ) -> Result<GeneTree, CoalescentError> {
        let n = labels.len();
        if n < 2 {
            return Err(CoalescentError::InvalidSize { what: "sample", requested: n, minimum: 2 });
        }
        let mut builder = TreeBuilder::new();
        let mut active: Vec<usize> =
            labels.iter().map(|l| builder.add_tip(l.clone(), 0.0)).collect();
        let mut time = 0.0f64;
        while active.len() > 1 {
            let k = active.len();
            let wait = self.demography.sample_waiting_time(rng, k, time);
            if !wait.is_finite() {
                return Err(CoalescentError::InvalidParameter {
                    name: "growth",
                    value: f64::NEG_INFINITY,
                    constraint: "demography must allow all lineages to coalesce",
                });
            }
            time += wait;
            let pair = sample_without_replacement(rng, k, 2);
            let (i, j) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let b_node = active.remove(j);
            let a_node = active.remove(i);
            let parent = builder.join(a_node, b_node, time);
            active.push(parent);
        }
        Ok(builder.build()?)
    }

    /// Simulate `count` independent genealogies.
    pub fn simulate_many<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_samples: usize,
        count: usize,
    ) -> Result<Vec<GeneTree>, CoalescentError> {
        (0..count).map(|_| self.simulate(rng, n_samples)).collect()
    }

    /// Simulate one genealogy and render it as a Newick string, as `ms -T`
    /// prints it.
    pub fn simulate_newick<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_samples: usize,
    ) -> Result<String, CoalescentError> {
        Ok(write_newick(&self.simulate(rng, n_samples)?))
    }
}

/// The `ms` tip labels `"1"…"n"`.
pub fn default_labels(n: usize) -> Vec<String> {
    (1..=n).map(|i| i.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kingman::KingmanPrior;
    use mcmc::rng::Mt19937;
    use phylo::io::newick::parse_newick;

    #[test]
    fn simulated_trees_are_structurally_valid() {
        let mut rng = Mt19937::new(42);
        let sim = CoalescentSimulator::constant(1.0).unwrap();
        for n in [2usize, 3, 5, 12, 40] {
            let tree = sim.simulate(&mut rng, n).unwrap();
            tree.validate().unwrap();
            assert_eq!(tree.n_tips(), n);
            assert_eq!(tree.n_nodes(), 2 * n - 1);
            assert!(tree.tmrca() > 0.0);
            // ms-style labels.
            assert!(tree.tip_by_label("1").is_some());
            assert!(tree.tip_by_label(&n.to_string()).is_some());
        }
    }

    #[test]
    fn tmrca_and_length_match_kingman_expectations() {
        let mut rng = Mt19937::new(2024);
        let theta = 2.0;
        let n = 10usize;
        let sim = CoalescentSimulator::constant(theta).unwrap();
        let prior = KingmanPrior::new(theta).unwrap();
        let reps = 4_000;
        let mut tmrca_sum = 0.0;
        let mut length_sum = 0.0;
        for _ in 0..reps {
            let tree = sim.simulate(&mut rng, n).unwrap();
            tmrca_sum += tree.tmrca();
            length_sum += tree.total_branch_length();
        }
        let tmrca_mean = tmrca_sum / reps as f64;
        let length_mean = length_sum / reps as f64;
        let expect_tmrca = prior.expected_tmrca(n);
        let expect_length = prior.expected_total_branch_length(n);
        assert!(
            (tmrca_mean / expect_tmrca - 1.0).abs() < 0.05,
            "TMRCA mean {tmrca_mean} vs expected {expect_tmrca}"
        );
        assert!(
            (length_mean / expect_length - 1.0).abs() < 0.05,
            "length mean {length_mean} vs expected {expect_length}"
        );
    }

    #[test]
    fn scaling_with_theta_is_linear() {
        let mut rng = Mt19937::new(5);
        let n = 8;
        let reps = 2_000;
        let mean_height = |theta: f64, rng: &mut Mt19937| -> f64 {
            let sim = CoalescentSimulator::constant(theta).unwrap();
            (0..reps).map(|_| sim.simulate(rng, n).unwrap().tmrca()).sum::<f64>() / reps as f64
        };
        let h1 = mean_height(1.0, &mut rng);
        let h4 = mean_height(4.0, &mut rng);
        assert!((h4 / h1 - 4.0).abs() < 0.4, "heights should scale ~4x: {h1} vs {h4}");
    }

    #[test]
    fn growth_produces_shorter_trees_than_constant_size() {
        let mut rng = Mt19937::new(77);
        let n = 10;
        let reps = 1_500;
        let constant = CoalescentSimulator::constant(1.0).unwrap();
        let growing = CoalescentSimulator::new(Demography::exponential(1.0, 3.0).unwrap());
        let mean = |sim: &CoalescentSimulator, rng: &mut Mt19937| -> f64 {
            (0..reps).map(|_| sim.simulate(rng, n).unwrap().tmrca()).sum::<f64>() / reps as f64
        };
        let h_const = mean(&constant, &mut rng);
        let h_grow = mean(&growing, &mut rng);
        assert!(h_grow < h_const, "growth compresses deep coalescences: {h_grow} vs {h_const}");
        assert_eq!(growing.demography().theta0(), 1.0);
    }

    #[test]
    fn newick_output_round_trips() {
        let mut rng = Mt19937::new(8);
        let sim = CoalescentSimulator::constant(1.0).unwrap();
        let text = sim.simulate_newick(&mut rng, 12).unwrap();
        assert!(text.ends_with(';'));
        let parsed = parse_newick(&text).unwrap();
        parsed.validate().unwrap();
        assert_eq!(parsed.n_tips(), 12);
    }

    #[test]
    fn simulate_many_and_custom_labels() {
        let mut rng = Mt19937::new(9);
        let sim = CoalescentSimulator::constant(0.5).unwrap();
        let trees = sim.simulate_many(&mut rng, 6, 10).unwrap();
        assert_eq!(trees.len(), 10);
        let labels: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let tree = sim.simulate_labelled(&mut rng, &labels).unwrap();
        assert!(tree.tip_by_label("y").is_some());
    }

    #[test]
    fn rejects_too_few_samples_and_bad_theta() {
        let mut rng = Mt19937::new(10);
        let sim = CoalescentSimulator::constant(1.0).unwrap();
        assert!(sim.simulate(&mut rng, 1).is_err());
        assert!(sim.simulate(&mut rng, 0).is_err());
        assert!(CoalescentSimulator::constant(-1.0).is_err());
    }

    #[test]
    fn default_labels_follow_ms_convention() {
        assert_eq!(default_labels(3), vec!["1", "2", "3"]);
        assert!(default_labels(0).is_empty());
    }
}
