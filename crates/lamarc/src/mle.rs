//! Maximum-likelihood estimation of θ from sampled genealogies
//! (Sections 2.5 and 5.1.5).
//!
//! The Monte-Carlo output is a set of genealogies sampled with driving value
//! θ₀; the relative likelihood of an arbitrary θ is the average prior ratio
//! over the sample (Eq. 26):
//!
//! ```text
//! L(θ) = (1/N) Σ_G P(G|θ) / P(G|θ₀)
//! ```
//!
//! computed here in log domain with a log-mean-exp (Section 5.3, and exactly
//! what the posterior-likelihood kernel of Section 5.2.3 computes). The
//! maximiser is the step-halving gradient ascent of Algorithm 2.

use mcmc::logdomain::log_sum_exp;

use coalescent::{CoalescentError, KingmanPrior};
use phylo::tree::CoalescentIntervals;

/// The relative likelihood function `L(θ)` of Eq. 26 for a fixed set of
/// sampled genealogies and driving value θ₀.
#[derive(Debug, Clone)]
pub struct RelativeLikelihood {
    theta0: f64,
    /// Per-sample sufficient statistics: (number of coalescences, waiting
    /// statistic Σ k(k−1)t).
    stats: Vec<(f64, f64)>,
    /// Per-sample log prior at the driving value (cached).
    log_prior_at_driving: Vec<f64>,
}

impl RelativeLikelihood {
    /// Build the function from interval summaries of the sampled genealogies.
    pub fn new(theta0: f64, samples: &[CoalescentIntervals]) -> Result<Self, CoalescentError> {
        let driving = KingmanPrior::new(theta0)?;
        if samples.is_empty() {
            return Err(CoalescentError::InvalidSize {
                what: "genealogy sample",
                requested: 0,
                minimum: 1,
            });
        }
        let stats: Vec<(f64, f64)> =
            samples.iter().map(|s| (s.n_coalescences() as f64, s.waiting_statistic())).collect();
        let log_prior_at_driving = samples.iter().map(|s| driving.log_prior_intervals(s)).collect();
        Ok(RelativeLikelihood { theta0, stats, log_prior_at_driving })
    }

    /// The driving θ₀.
    pub fn theta0(&self) -> f64 {
        self.theta0
    }

    /// Number of genealogy samples backing the estimate.
    pub fn n_samples(&self) -> usize {
        self.stats.len()
    }

    /// `ln L(θ)` — the log of Eq. 26. Returns `-inf` for non-positive θ so
    /// that maximisers naturally avoid the invalid region.
    pub fn log_relative_likelihood(&self, theta: f64) -> f64 {
        if !(theta > 0.0 && theta.is_finite()) {
            return f64::NEG_INFINITY;
        }
        let log_ratios: Vec<f64> = self
            .stats
            .iter()
            .zip(&self.log_prior_at_driving)
            .map(|(&(events, waiting), &lp0)| {
                let lp = events * (2.0 / theta).ln() - waiting / theta;
                lp - lp0
            })
            .collect();
        log_sum_exp(&log_ratios) - (log_ratios.len() as f64).ln()
    }

    /// Evaluate the curve at the given θ values (Figure 5).
    pub fn curve(&self, thetas: &[f64]) -> Vec<(f64, f64)> {
        thetas.iter().map(|&t| (t, self.log_relative_likelihood(t))).collect()
    }

    /// A log-spaced grid of θ values spanning `[lo, hi]`, convenient for
    /// plotting the curve.
    pub fn log_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
        assert!(lo > 0.0 && hi > lo && points >= 2, "invalid grid specification");
        let step = (hi / lo).ln() / (points - 1) as f64;
        (0..points).map(|i| lo * (step * i as f64).exp()).collect()
    }
}

/// Configuration of the gradient ascent (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientAscentConfig {
    /// Finite-difference half-width δ (relative to the current θ).
    pub delta: f64,
    /// Convergence tolerance ε on successive θ values.
    pub epsilon: f64,
    /// Hard cap on ascent iterations.
    pub max_iterations: usize,
    /// Hard cap on step-halvings per iteration.
    pub max_halvings: usize,
}

impl Default for GradientAscentConfig {
    fn default() -> Self {
        GradientAscentConfig { delta: 1e-4, epsilon: 1e-6, max_iterations: 200, max_halvings: 60 }
    }
}

/// Maximise `ln L(θ)` by the step-halving gradient ascent of Algorithm 2,
/// starting from the driving value θ₀.
///
/// Two robustness refinements are applied to the algorithm as printed in the
/// thesis: the raw finite-difference gradient near a very small driving value
/// can be enormous (the derivative scales like `1/θ²`), and a step that
/// merely *does not worsen* the objective can overshoot the maximum by orders
/// of magnitude. The inner loop therefore (a) halves the step until it is
/// positive **and** improves the objective, and then (b) keeps halving while
/// the half-step is at least as good as the full step, which is a simple
/// backtracking line search along the gradient direction.
pub fn maximize_relative_likelihood(
    likelihood: &RelativeLikelihood,
    config: &GradientAscentConfig,
) -> f64 {
    let mut theta_next = likelihood.theta0();
    for _ in 0..config.max_iterations {
        let theta = theta_next;
        let delta = config.delta * theta.max(config.delta);
        let up = likelihood.log_relative_likelihood(theta + delta);
        let down = likelihood.log_relative_likelihood((theta - delta).max(delta * 1e-3));
        let mut gradient = (up - down) / (2.0 * delta);
        if !gradient.is_finite() {
            break;
        }
        let current = likelihood.log_relative_likelihood(theta);
        let mut halvings = 0usize;
        // (a) Shrink until the step is legal and an improvement.
        loop {
            if halvings >= config.max_halvings {
                break;
            }
            let candidate = theta + gradient;
            if candidate > 0.0 && likelihood.log_relative_likelihood(candidate) >= current {
                break;
            }
            gradient *= 0.5;
            halvings += 1;
        }
        if halvings >= config.max_halvings {
            // No usable step in this direction; we are at (or numerically
            // indistinguishable from) the maximum.
            break;
        }
        // (b) Keep shrinking while the half-step is at least as good.
        while halvings < config.max_halvings && gradient.abs() > config.epsilon {
            let full = likelihood.log_relative_likelihood(theta + gradient);
            let half = likelihood.log_relative_likelihood(theta + 0.5 * gradient);
            if half >= full {
                gradient *= 0.5;
                halvings += 1;
            } else {
                break;
            }
        }
        theta_next = theta + gradient;
        if (theta - theta_next).abs() <= config.epsilon {
            break;
        }
    }
    theta_next
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, KingmanPrior};
    use mcmc::rng::Mt19937;

    fn interval_samples(
        theta: f64,
        n_tips: usize,
        count: usize,
        seed: u32,
    ) -> Vec<CoalescentIntervals> {
        let mut rng = Mt19937::new(seed);
        let sim = CoalescentSimulator::constant(theta).unwrap();
        (0..count).map(|_| sim.simulate(&mut rng, n_tips).unwrap().intervals()).collect()
    }

    #[test]
    fn relative_likelihood_is_zero_at_the_driving_value() {
        let samples = interval_samples(1.0, 8, 50, 1);
        let rl = RelativeLikelihood::new(1.0, &samples).unwrap();
        assert!(rl.log_relative_likelihood(1.0).abs() < 1e-12);
        assert_eq!(rl.theta0(), 1.0);
        assert_eq!(rl.n_samples(), 50);
    }

    #[test]
    fn invalid_theta_maps_to_negative_infinity() {
        let samples = interval_samples(1.0, 6, 10, 2);
        let rl = RelativeLikelihood::new(1.0, &samples).unwrap();
        assert_eq!(rl.log_relative_likelihood(0.0), f64::NEG_INFINITY);
        assert_eq!(rl.log_relative_likelihood(-3.0), f64::NEG_INFINITY);
        assert_eq!(rl.log_relative_likelihood(f64::NAN), f64::NEG_INFINITY);
    }

    #[test]
    fn construction_requires_samples_and_valid_driving_value() {
        assert!(RelativeLikelihood::new(1.0, &[]).is_err());
        let samples = interval_samples(1.0, 6, 5, 3);
        assert!(RelativeLikelihood::new(0.0, &samples).is_err());
    }

    #[test]
    fn single_genealogy_maximum_matches_the_analytic_mle() {
        // With a single sampled genealogy, L(θ) ∝ P(G|θ) and its maximiser
        // has the closed form θ̂ = W / (n−1) regardless of the driving value;
        // the step-halving ascent (Algorithm 2) must find it.
        let samples = interval_samples(2.0, 10, 1, 4);
        let analytic = KingmanPrior::mle_from_intervals(&samples[0]);
        for driving in [0.05, 0.5, analytic, 5.0 * analytic] {
            let rl = RelativeLikelihood::new(driving, &samples).unwrap();
            let mle = maximize_relative_likelihood(&rl, &GradientAscentConfig::default());
            assert!(
                (mle / analytic - 1.0).abs() < 0.02,
                "driving {driving}: ascent found {mle}, analytic maximum is {analytic}"
            );
        }
    }

    #[test]
    fn gradient_ascent_climbs_from_a_poor_driving_value() {
        // The maximiser must improve the objective, stay positive, and land
        // between the smallest and largest single-genealogy MLEs (the mean of
        // unimodal per-sample ratio curves has its maximum inside that span).
        let samples = interval_samples(1.0, 8, 500, 5);
        let rl_bad = RelativeLikelihood::new(0.3, &samples).unwrap();
        let mle = maximize_relative_likelihood(&rl_bad, &GradientAscentConfig::default());
        assert!(mle > 0.3, "ascent should move upward from 0.3, got {mle}");
        assert!(rl_bad.log_relative_likelihood(mle) >= rl_bad.log_relative_likelihood(0.3) - 1e-9);
        let per_sample_mles: Vec<f64> =
            samples.iter().map(KingmanPrior::mle_from_intervals).collect();
        let lo = per_sample_mles.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_sample_mles.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (lo..=hi).contains(&mle),
            "maximiser {mle} outside the per-sample MLE span [{lo}, {hi}]"
        );
    }

    #[test]
    fn curve_evaluation_and_grid() {
        let samples = interval_samples(1.0, 6, 200, 6);
        let rl = RelativeLikelihood::new(1.0, &samples).unwrap();
        let grid = RelativeLikelihood::log_grid(0.1, 10.0, 25);
        assert_eq!(grid.len(), 25);
        assert!((grid[0] - 0.1).abs() < 1e-12);
        assert!((grid[24] - 10.0).abs() < 1e-9);
        assert!(grid.windows(2).all(|w| w[1] > w[0]));
        let curve = rl.curve(&grid);
        assert_eq!(curve.len(), 25);
        // The curve is finite everywhere on the positive grid.
        assert!(curve.iter().all(|(_, y)| y.is_finite()));
        // And the maximum of the curve is attained strictly inside (0.1, 10).
        let best = curve.iter().cloned().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!(best.0 > 0.1 && best.0 < 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid grid")]
    fn log_grid_rejects_bad_bounds() {
        RelativeLikelihood::log_grid(1.0, 0.5, 10);
    }

    #[test]
    fn ascent_respects_iteration_caps() {
        let samples = interval_samples(1.0, 6, 100, 7);
        let rl = RelativeLikelihood::new(1.0, &samples).unwrap();
        let tight = GradientAscentConfig { max_iterations: 1, ..Default::default() };
        let loose = GradientAscentConfig::default();
        let one_step = maximize_relative_likelihood(&rl, &tight);
        let full = maximize_relative_likelihood(&rl, &loose);
        // Both must be positive and finite; the capped run may stop early.
        assert!(one_step > 0.0 && one_step.is_finite());
        assert!(full > 0.0 && full.is_finite());
        assert!(rl.log_relative_likelihood(full) >= rl.log_relative_likelihood(one_step) - 1e-9);
    }
}
