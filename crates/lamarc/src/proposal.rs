//! The neighborhood-resimulation proposal mechanism (Section 4.2).
//!
//! A non-root interior node is chosen as the *target*. The target and its
//! parent are dissolved, leaving three *active* lineages — the target's two
//! children and its sibling — that must re-coalesce into a single lineage
//! before the *ancestor* (the target's grandparent), or without any upper
//! bound when the target's parent is the root (Figure 8). The re-coalescence
//! is sampled from the coalescent prior conditional on the rest of the tree:
//!
//! 1. The window between the youngest active head and the ancestor is cut
//!    into *feasible intervals* at every time where the number of available
//!    active lineages or inactive (fixed) lineages changes.
//! 2. For each interval, transfer weights `S_{i,j}(t)` — the (unnormalised)
//!    probability of going from `i` to `j` active lineages across the
//!    interval — are computed from the linear death process whose survival
//!    exponent is the conditional coalescent rate and whose event rate is the
//!    active-pair rate.
//! 3. A backward pass accumulates, for every interval boundary, the weight of
//!    completing exactly two coalescences by the ancestor (the `P_i(n)` of
//!    the paper); a forward pass then samples how many events land in each
//!    interval, conditioned on that constraint.
//! 4. Event times are placed inside their intervals by inverting the tilted
//!    (truncated-exponential) conditional densities, and the topology is
//!    chosen uniformly among the active lineages available at the first
//!    event ("the proposal may rearrange the children", Section 4.2).
//!
//! Because the proposal density is exactly proportional to the coalescent
//! prior `P(G|θ)` restricted to the neighborhood, the Hastings ratio of the
//! baseline sampler collapses to the data-likelihood ratio (Eq. 28) and the
//! generalized sampler's stationary weights collapse to `P(D|G̃)` (Eq. 31).

use mcmc::rng::dist::{exponential, uniform_index};
use rand::Rng;

use phylo::{GeneTree, NodeId, PhyloError};

/// Which hazard drives the conditional death process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HazardModel {
    /// Survival exponent `a(a−1+2m)/θ` — the exact conditional-coalescent
    /// rate in the presence of `m` inactive lineages.
    #[default]
    Conditional,
    /// Survival exponent `a(a−1)/θ` — ignores the inactive lineages, i.e. a
    /// pure Kingman process among the active lineages only. Kept as an
    /// ablation (see the `ablation_hazard` bench): it is cheaper but biases
    /// the proposal away from the true conditional prior.
    ActiveOnly,
}

/// Configuration of the proposal mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProposalConfig {
    /// The hazard model (see [`HazardModel`]).
    pub hazard: HazardModel,
    /// Cap on rejection-sampling attempts for within-interval placement of a
    /// double event before falling back to a uniform split.
    pub placement_attempts: usize,
}

impl Default for ProposalConfig {
    fn default() -> Self {
        ProposalConfig { hazard: HazardModel::Conditional, placement_attempts: 10_000 }
    }
}

/// The proposal kernel: resimulates the neighborhood of a target node from
/// the conditional coalescent prior with driving parameter θ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenealogyProposer {
    theta: f64,
    config: ProposalConfig,
}

/// One feasible interval of the resimulation window.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: f64,
    length: f64,
    /// Heads (active-lineage starting points) available throughout.
    heads_available: usize,
    /// Inactive lineages crossing the interval.
    inactive: usize,
    /// Whether this is the unbounded tail above the old root.
    unbounded: bool,
}

impl GenealogyProposer {
    /// Create a proposer with the default configuration.
    pub fn new(theta: f64) -> Result<Self, PhyloError> {
        Self::with_config(theta, ProposalConfig::default())
    }

    /// Create a proposer with an explicit configuration.
    pub fn with_config(theta: f64, config: ProposalConfig) -> Result<Self, PhyloError> {
        if !(theta > 0.0 && theta.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "theta",
                value: theta,
                constraint: "theta > 0",
            });
        }
        Ok(GenealogyProposer { theta, config })
    }

    /// The driving θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The configuration.
    pub fn config(&self) -> &ProposalConfig {
        &self.config
    }

    /// Choose a target node uniformly (the auxiliary variable φ of
    /// Section 4.3). For two-tip trees — which have no non-root interior
    /// node — the root itself is returned and the proposal degenerates to
    /// re-drawing the root time.
    pub fn sample_target<R: Rng + ?Sized>(&self, tree: &GeneTree, rng: &mut R) -> NodeId {
        let candidates = tree.non_root_internal_nodes();
        if candidates.is_empty() {
            tree.root()
        } else {
            candidates[uniform_index(rng, candidates.len())]
        }
    }

    /// Propose a new genealogy by resimulating the neighborhood of `target`.
    ///
    /// The returned tree reuses the arena of the input: only the times of
    /// `target` and its parent and the wiring among the three active lineages
    /// change.
    pub fn propose<R: Rng + ?Sized>(
        &self,
        tree: &GeneTree,
        target: NodeId,
        rng: &mut R,
    ) -> GeneTree {
        self.propose_with_edit(tree, target, rng).0
    }

    /// Like [`GenealogyProposer::propose`], but also report the edited node
    /// set — the nodes whose times or wiring differ from the input tree (the
    /// φ-neighborhood). The batched likelihood engine uses this to recompute
    /// only the dirty path from the edit to the root
    /// (`phylo::LikelihoodEngine::log_likelihood_batch`).
    pub fn propose_with_edit<R: Rng + ?Sized>(
        &self,
        tree: &GeneTree,
        target: NodeId,
        rng: &mut R,
    ) -> (GeneTree, Vec<NodeId>) {
        let mut out = tree.clone();
        if tree.is_root(target) || tree.is_tip(target) {
            // Two-tip degenerate case (or an explicit root target): re-draw
            // the root time from the prior conditional on its children.
            self.redraw_root_time(&mut out, rng);
            return (out, vec![tree.root()]);
        }
        let parent = tree.parent(target).expect("non-root node has a parent");
        let (c1, c2) = tree.children(target).expect("interior target has children");
        let sib = tree.sibling(target).expect("non-root node has a sibling");
        let ancestor = tree.parent(parent);
        let upper = ancestor.map(|a| tree.time(a));

        let heads = [c1, c2, sib];
        let head_times = [tree.time(c1), tree.time(c2), tree.time(sib)];

        let segments = self.build_segments(tree, target, parent, &head_times, upper);
        let (u1, u2) = self.sample_event_times(rng, &segments, &head_times, upper);

        // Topology: the first event merges a uniformly chosen pair among the
        // heads available at u1; the second merges the result with the rest.
        let available: Vec<usize> = (0..3).filter(|&i| head_times[i] <= u1 + 1e-15).collect();
        debug_assert!(available.len() >= 2, "first event requires two available heads");
        let pick = mcmc::rng::dist::sample_without_replacement(rng, available.len(), 2);
        let first_a = heads[available[pick[0]]];
        let first_b = heads[available[pick[1]]];
        let third = heads
            .iter()
            .copied()
            .find(|&h| h != first_a && h != first_b)
            .expect("three distinct heads");

        // Rewire: `target` becomes the younger event, `parent` the older one.
        out.set_time(target, u1);
        out.set_children(target, first_a, first_b);
        out.set_time(parent, u2);
        out.set_children(parent, target, third);
        // The parent's own parent (the ancestor) is untouched; if the parent
        // was the root it stays the root.
        debug_assert!(out.validate().is_ok(), "proposal produced an invalid tree");
        (out, vec![target, parent])
    }

    /// Degenerate proposal for two-tip trees: re-draw the root time from the
    /// prior (exponential with rate 2/θ above the younger... above the older
    /// tip).
    fn redraw_root_time<R: Rng + ?Sized>(&self, tree: &mut GeneTree, rng: &mut R) {
        let root = tree.root();
        let (a, b) = match tree.children(root) {
            Some(pair) => pair,
            None => return,
        };
        let floor = tree.time(a).max(tree.time(b));
        let wait = exponential(rng, 2.0 / self.theta);
        tree.set_time(root, floor + wait);
    }

    /// Build the feasible-interval decomposition of the resimulation window.
    fn build_segments(
        &self,
        tree: &GeneTree,
        target: NodeId,
        parent: NodeId,
        head_times: &[f64; 3],
        upper: Option<f64>,
    ) -> Vec<Segment> {
        let min_head = head_times.iter().cloned().fold(f64::INFINITY, f64::min);
        let upper_bound = upper.unwrap_or(f64::INFINITY);

        // Boundary times: head times, every other node time strictly inside
        // the window, and the ancestor time.
        let mut boundaries: Vec<f64> = Vec::new();
        for &t in head_times {
            boundaries.push(t);
        }
        for node in 0..tree.n_nodes() {
            if node == target || node == parent {
                continue;
            }
            let t = tree.time(node);
            if t > min_head && t < upper_bound {
                boundaries.push(t);
            }
        }
        if upper_bound.is_finite() {
            boundaries.push(upper_bound);
        }
        boundaries.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

        let mut segments = Vec::with_capacity(boundaries.len());
        for w in boundaries.windows(2) {
            let (start, end) = (w[0], w[1]);
            let length = end - start;
            if length <= 0.0 {
                continue;
            }
            let mid = 0.5 * (start + end);
            segments.push(Segment {
                start,
                length,
                heads_available: head_times.iter().filter(|&&t| t <= start + 1e-15).count(),
                inactive: self.inactive_lineages_at(tree, target, parent, mid),
                unbounded: false,
            });
        }
        // Unbounded tail above the last boundary when there is no ancestor.
        if !upper_bound.is_finite() {
            let start = *boundaries.last().expect("at least the head boundaries exist");
            segments.push(Segment {
                start,
                length: f64::INFINITY,
                heads_available: 3,
                inactive: self.inactive_lineages_at(tree, target, parent, start + 1.0),
                unbounded: true,
            });
        }
        segments
    }

    /// Number of inactive (fixed) lineages crossing time `t`: edges of the
    /// tree minus the dissolved neighborhood whose child is at or below `t`
    /// and whose parent is above `t`.
    fn inactive_lineages_at(
        &self,
        tree: &GeneTree,
        target: NodeId,
        parent: NodeId,
        t: f64,
    ) -> usize {
        let mut count = 0;
        for node in 0..tree.n_nodes() {
            if node == target || node == parent {
                continue;
            }
            let Some(p) = tree.parent(node) else { continue };
            if p == target || p == parent {
                continue; // this is an active head's (removed) parent edge
            }
            if tree.time(node) <= t && t < tree.time(p) {
                count += 1;
            }
        }
        count
    }

    /// Survival (tilt) rate μ_a for `a` active and `m` inactive lineages.
    fn mu(&self, a: usize, m: usize) -> f64 {
        match self.config.hazard {
            HazardModel::Conditional => (a * (a.saturating_sub(1)) + 2 * a * m) as f64 / self.theta,
            HazardModel::ActiveOnly => (a * (a.saturating_sub(1))) as f64 / self.theta,
        }
    }

    /// Event rate ν_a (active-pair coalescence rate) for `a` active lineages.
    fn nu(&self, a: usize) -> f64 {
        (a * a.saturating_sub(1)) as f64 / self.theta
    }

    /// Transfer weight of going from `a` to `a - d` active lineages across an
    /// interval of length `len` with `m` inactive lineages present.
    fn transfer(&self, a: usize, d: usize, m: usize, len: f64) -> f64 {
        if d == 0 {
            return if len.is_finite() { (-self.mu(a, m) * len).exp() } else { 0.0 };
        }
        if a < 2 || d > a - 1 || d > 2 {
            return 0.0;
        }
        let mu_a = self.mu(a, m);
        let mu_b = self.mu(a - 1, m);
        let nu_a = self.nu(a);
        if d == 1 {
            if !len.is_finite() {
                // ∫_0^∞ ν_a e^{-μ_a u} e^{-μ_{a-1}(∞-u)} du is zero unless the
                // remaining state has zero tilt (m = 0, a−1 = 1).
                // mpcgs-analyze: allow(d5, reason = "zero-tilt guard: mu is exactly 0.0 only in the m = 0, a-1 = 1 state where the rate is constructed as the literal zero")
                return if mu_b == 0.0 { nu_a / mu_a } else { 0.0 };
            }
            return if (mu_a - mu_b).abs() < 1e-12 {
                nu_a * len * (-mu_a * len).exp()
            } else {
                nu_a * ((-mu_b * len).exp() - (-mu_a * len).exp()) / (mu_a - mu_b)
            };
        }
        // d == 2, a == 3.
        let mu_c = self.mu(a - 2, m);
        let nu_b = self.nu(a - 1);
        if !len.is_finite() {
            // mpcgs-analyze: allow(d5, reason = "zero-tilt guard: mu is exactly 0.0 only in the m = 0, a-1 = 1 state where the rate is constructed as the literal zero")
            return if mu_c == 0.0 { (nu_a / mu_a) * (nu_b / mu_b) } else { 0.0 };
        }
        // Weight = ν_a ν_b ∫∫_{0<u1<u2<len} e^{-μ_a u1 - μ_b (u2-u1) - μ_c (len-u2)} du1 du2,
        // the standard hypoexponential convolution with three distinct rates.
        let rates = [mu_a, mu_b, mu_c];
        let mut sum = 0.0;
        for i in 0..3 {
            let mut denom = 1.0;
            for j in 0..3 {
                if j != i {
                    denom *= rates[j] - rates[i];
                }
            }
            sum += (-rates[i] * len).exp() / denom;
        }
        nu_a * nu_b * sum
    }

    /// Sample the two absolute coalescence times (younger, older) for the
    /// active lineages.
    fn sample_event_times<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        segments: &[Segment],
        head_times: &[f64; 3],
        upper: Option<f64>,
    ) -> (f64, f64) {
        let n = segments.len();
        // Backward weights: beta[s][c] = weight of finishing with exactly two
        // coalescences from the start of segment s given c already done.
        let mut beta = vec![[0.0f64; 3]; n + 1];
        beta[n] = [0.0, 0.0, 1.0];
        for s in (0..n).rev() {
            let seg = &segments[s];
            for c in 0..=2usize {
                let a = seg.heads_available.saturating_sub(c);
                if a == 0 {
                    beta[s][c] = 0.0;
                    continue;
                }
                if seg.unbounded {
                    // Everything that can still coalesce will; weight 1 when
                    // the remaining events are feasible (a − (2 − c) ≥ 1).
                    beta[s][c] = if seg.heads_available >= 3 || c == 2 { 1.0 } else { 0.0 };
                    continue;
                }
                let mut w = 0.0;
                let max_d = (2 - c).min(a.saturating_sub(1));
                for d in 0..=max_d {
                    w += self.transfer(a, d, seg.inactive, seg.length) * beta[s + 1][c + d];
                }
                beta[s][c] = w;
            }
        }

        // Forward sampling of per-segment event counts and times.
        let mut times: Vec<f64> = Vec::with_capacity(2);
        let mut c = 0usize;
        for (s, seg) in segments.iter().enumerate() {
            if c == 2 {
                break;
            }
            let a = seg.heads_available.saturating_sub(c);
            if a == 0 {
                continue;
            }
            if seg.unbounded {
                // Unconditioned simulation in the tail.
                let mut t = seg.start;
                let mut act = a;
                while c < 2 {
                    let rate = self.nu(act).max(1e-300);
                    t += exponential(rng, rate);
                    times.push(t);
                    c += 1;
                    act -= 1;
                }
                break;
            }
            let max_d = (2 - c).min(a.saturating_sub(1));
            let mut weights = Vec::with_capacity(max_d + 1);
            for d in 0..=max_d {
                weights.push(self.transfer(a, d, seg.inactive, seg.length) * beta[s + 1][c + d]);
            }
            let d = mcmc::rng::dist::categorical(rng, &weights).unwrap_or(0);
            match d {
                0 => {}
                1 => {
                    let u = self.place_single_event(rng, a, seg.inactive, seg.length);
                    times.push(seg.start + u);
                    c += 1;
                }
                _ => {
                    let (u1, u2) = self.place_double_event(rng, seg.inactive, seg.length);
                    times.push(seg.start + u1);
                    times.push(seg.start + u2);
                    c += 2;
                }
            }
        }
        if times.len() < 2 {
            // Numerical underflow in the conditioning weights (a window that
            // is extremely long relative to θ can drive every transfer weight
            // to zero): fall back to legal, deterministic placements near the
            // top of the window so the proposal is still a valid genealogy.
            let max_head = head_times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mid_head = {
                let mut sorted = *head_times;
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                sorted[1]
            };
            let ceiling = upper.unwrap_or(max_head + self.theta);
            if times.is_empty() {
                times.push(mid_head + 0.25 * (ceiling - mid_head).max(1e-9));
            }
            let first = times[0].max(mid_head);
            times[0] = first;
            times.push(first.max(max_head) + 0.25 * (ceiling - first.max(max_head)).max(1e-9));
        }
        // Numerical guard: enforce strict ordering.
        let u1 = times[0];
        let mut u2 = times[1];
        if u2 <= u1 {
            u2 = u1 + 1e-12;
        }
        (u1, u2)
    }

    /// Place a single event inside an interval of length `len`, starting with
    /// `a` active lineages: density ∝ e^{−(μ_a − μ_{a−1})·u} on (0, len).
    fn place_single_event<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: usize,
        m: usize,
        len: f64,
    ) -> f64 {
        let rate = self.mu(a, m) - self.mu(a - 1, m);
        tilted_uniform(rng, rate, len)
    }

    /// Place two events inside an interval of length `len` starting with
    /// three active lineages.
    fn place_double_event<R: Rng + ?Sized>(&self, rng: &mut R, m: usize, len: f64) -> (f64, f64) {
        let r1 = self.mu(3, m) - self.mu(2, m);
        let r2 = self.mu(2, m) - self.mu(1, m);
        // Marginal of the first time: ∝ e^{−(r1+r2)u} (1 − e^{−r2(len−u)}).
        let mut u1 = None;
        for _ in 0..self.config.placement_attempts {
            let candidate = tilted_uniform(rng, r1 + r2, len);
            let accept = 1.0 - (-r2 * (len - candidate)).exp();
            if rng.gen::<f64>() < accept {
                u1 = Some(candidate);
                break;
            }
        }
        let u1 = u1.unwrap_or(0.25 * len);
        // Second time given the first: truncated exponential with rate r2 on
        // (u1, len).
        let u2 = u1 + tilted_uniform(rng, r2, len - u1);
        (u1, u2.min(len * (1.0 - 1e-12)))
    }
}

/// Sample from the density ∝ e^{−rate·u} on (0, len); `rate` may be zero
/// (uniform) or negative (increasing density).
fn tilted_uniform<R: Rng + ?Sized>(rng: &mut R, rate: f64, len: f64) -> f64 {
    debug_assert!(len > 0.0, "tilted_uniform needs a positive interval");
    let u: f64 = rng.gen();
    if rate.abs() * len < 1e-12 {
        return u * len;
    }
    let z = 1.0 - (-rate * len).exp();
    let t = -(1.0 - u * z).ln() / rate;
    t.clamp(0.0, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, KingmanPrior};
    use mcmc::rng::Mt19937;

    fn random_tree(rng: &mut Mt19937, n: usize, theta: f64) -> GeneTree {
        CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap()
    }

    #[test]
    fn constructor_validation_and_accessors() {
        assert!(GenealogyProposer::new(0.0).is_err());
        assert!(GenealogyProposer::new(f64::NAN).is_err());
        let p = GenealogyProposer::new(1.5).unwrap();
        assert_eq!(p.theta(), 1.5);
        assert_eq!(p.config().hazard, HazardModel::Conditional);
        let p2 = GenealogyProposer::with_config(
            1.0,
            ProposalConfig { hazard: HazardModel::ActiveOnly, placement_attempts: 10 },
        )
        .unwrap();
        assert_eq!(p2.config().hazard, HazardModel::ActiveOnly);
    }

    #[test]
    fn proposals_are_valid_trees_with_unchanged_tips() {
        let mut rng = Mt19937::new(11);
        let theta = 1.0;
        let proposer = GenealogyProposer::new(theta).unwrap();
        for n in [3usize, 5, 8, 12] {
            let tree = random_tree(&mut rng, n, theta);
            for _ in 0..200 {
                let target = proposer.sample_target(&tree, &mut rng);
                let proposal = proposer.propose(&tree, target, &mut rng);
                proposal.validate().unwrap();
                assert_eq!(proposal.n_tips(), tree.n_tips());
                assert_eq!(proposal.tip_labels(), tree.tip_labels());
            }
        }
    }

    #[test]
    fn reported_edits_cover_every_changed_node() {
        // propose_with_edit must list exactly the nodes whose time or wiring
        // differs from the input tree; everything else is certified unchanged
        // (this is what the dirty-path likelihood cache relies on).
        let mut rng = Mt19937::new(41);
        let theta = 1.0;
        let proposer = GenealogyProposer::new(theta).unwrap();
        for n in [2usize, 5, 9] {
            let tree = random_tree(&mut rng, n, theta);
            for _ in 0..100 {
                let target = proposer.sample_target(&tree, &mut rng);
                let (proposal, edited) = proposer.propose_with_edit(&tree, target, &mut rng);
                proposal.validate().unwrap();
                assert!(!edited.is_empty() && edited.len() <= 2);
                for node in 0..tree.n_nodes() {
                    if edited.contains(&node) {
                        continue;
                    }
                    assert_eq!(proposal.time(node), tree.time(node), "node {node} time changed");
                    assert_eq!(
                        proposal.children(node),
                        tree.children(node),
                        "node {node} wiring changed"
                    );
                }
            }
        }
    }

    #[test]
    fn only_the_neighborhood_changes() {
        let mut rng = Mt19937::new(13);
        let theta = 1.0;
        let proposer = GenealogyProposer::new(theta).unwrap();
        let tree = random_tree(&mut rng, 10, theta);
        for _ in 0..100 {
            let target = proposer.sample_target(&tree, &mut rng);
            let parent = tree.parent(target).unwrap();
            let proposal = proposer.propose(&tree, target, &mut rng);
            for node in 0..tree.n_nodes() {
                if node == target || node == parent {
                    continue;
                }
                assert_eq!(
                    proposal.time(node),
                    tree.time(node),
                    "time of non-neighborhood node {node} changed"
                );
            }
        }
    }

    #[test]
    fn event_times_respect_the_ancestor_bound() {
        let mut rng = Mt19937::new(17);
        let theta = 2.0;
        let proposer = GenealogyProposer::new(theta).unwrap();
        let tree = random_tree(&mut rng, 12, theta);
        for _ in 0..300 {
            let target = proposer.sample_target(&tree, &mut rng);
            let parent = tree.parent(target).unwrap();
            let proposal = proposer.propose(&tree, target, &mut rng);
            if let Some(ancestor) = tree.parent(parent) {
                assert!(
                    proposal.time(parent) <= tree.time(ancestor) + 1e-9,
                    "older event beyond the ancestor"
                );
            }
            assert!(proposal.time(target) < proposal.time(parent));
            // Both events must be above the heads they join.
            let (a, b) = proposal.children(target).unwrap();
            assert!(proposal.time(target) >= proposal.time(a) - 1e-12);
            assert!(proposal.time(target) >= proposal.time(b) - 1e-12);
        }
    }

    #[test]
    fn two_tip_trees_redraw_the_root_time_from_the_prior() {
        let mut rng = Mt19937::new(19);
        let theta = 1.5;
        let proposer = GenealogyProposer::new(theta).unwrap();
        let tree = random_tree(&mut rng, 2, theta);
        let reps = 30_000;
        let mut sum = 0.0;
        for _ in 0..reps {
            let target = proposer.sample_target(&tree, &mut rng);
            assert_eq!(target, tree.root());
            let proposal = proposer.propose(&tree, target, &mut rng);
            proposal.validate().unwrap();
            sum += proposal.tmrca();
        }
        let mean = sum / reps as f64;
        // Expected TMRCA for n=2 is theta/2... with rate 2/theta the mean wait
        // is theta/2 = 0.75.
        assert!((mean - 0.75).abs() < 0.02, "mean root time {mean}");
    }

    /// The strongest correctness check: repeatedly applying the proposal with
    /// acceptance probability one is a Gibbs sampler whose stationary
    /// distribution is the coalescent prior, because each move resamples the
    /// neighborhood from its exact conditional distribution. Long-run tree
    /// statistics must therefore match the Kingman expectations.
    #[test]
    fn gibbs_chain_preserves_the_coalescent_prior() {
        let mut rng = Mt19937::new(23);
        let theta = 1.0;
        let n = 6usize;
        let proposer = GenealogyProposer::new(theta).unwrap();
        // Start far from equilibrium: a tree simulated with a much larger theta.
        let mut tree = random_tree(&mut rng, n, 10.0);
        let prior = KingmanPrior::new(theta).unwrap();

        let burn_in = 2_000;
        let samples = 30_000;
        let mut sum_tmrca = 0.0;
        let mut sum_length = 0.0;
        for step in 0..(burn_in + samples) {
            let target = proposer.sample_target(&tree, &mut rng);
            tree = proposer.propose(&tree, target, &mut rng);
            if step >= burn_in {
                sum_tmrca += tree.tmrca();
                sum_length += tree.total_branch_length();
            }
        }
        let mean_tmrca = sum_tmrca / samples as f64;
        let mean_length = sum_length / samples as f64;
        let expect_tmrca = prior.expected_tmrca(n);
        let expect_length = prior.expected_total_branch_length(n);
        assert!(
            (mean_tmrca / expect_tmrca - 1.0).abs() < 0.10,
            "TMRCA {mean_tmrca} vs Kingman expectation {expect_tmrca}"
        );
        assert!(
            (mean_length / expect_length - 1.0).abs() < 0.10,
            "tree length {mean_length} vs Kingman expectation {expect_length}"
        );
    }

    #[test]
    fn topology_changes_are_produced() {
        // Starting from a caterpillar-ish simulated tree, the proposal must
        // eventually change which nodes are siblings (Figure 9's reshuffling).
        let mut rng = Mt19937::new(29);
        let theta = 1.0;
        let proposer = GenealogyProposer::new(theta).unwrap();
        let tree = random_tree(&mut rng, 8, theta);
        let tip = tree.tips()[0];
        let original_sibling = tree.sibling(tip);
        let mut changed = false;
        let mut current = tree.clone();
        for _ in 0..2_000 {
            let target = proposer.sample_target(&current, &mut rng);
            current = proposer.propose(&current, target, &mut rng);
            if current.sibling(tip) != original_sibling {
                changed = true;
                break;
            }
        }
        assert!(changed, "2000 proposals never changed the topology around a tip");
    }

    #[test]
    fn active_only_hazard_also_produces_valid_trees() {
        let mut rng = Mt19937::new(31);
        let proposer = GenealogyProposer::with_config(
            1.0,
            ProposalConfig { hazard: HazardModel::ActiveOnly, placement_attempts: 100 },
        )
        .unwrap();
        let tree = random_tree(&mut rng, 10, 1.0);
        for _ in 0..200 {
            let target = proposer.sample_target(&tree, &mut rng);
            let proposal = proposer.propose(&tree, target, &mut rng);
            proposal.validate().unwrap();
        }
    }

    #[test]
    fn tilted_uniform_stays_in_range_and_matches_truncated_exponential() {
        let mut rng = Mt19937::new(37);
        for &(rate, len) in &[(0.0, 2.0), (3.0, 1.0), (-2.0, 0.5), (1e-15, 4.0)] {
            for _ in 0..2_000 {
                let u = tilted_uniform(&mut rng, rate, len);
                assert!((0.0..=len).contains(&u), "u={u} outside [0,{len}] for rate {rate}");
            }
        }
        // Positive rate: mean matches the truncated exponential mean.
        let (rate, len) = (2.0f64, 1.5f64);
        let n = 60_000;
        let mean: f64 = (0..n).map(|_| tilted_uniform(&mut rng, rate, len)).sum::<f64>() / n as f64;
        let expect = 1.0 / rate - len * (-rate * len).exp() / (1.0 - (-rate * len).exp());
        assert!((mean - expect).abs() < 0.01, "mean {mean} vs {expect}");
    }
}
