//! Baseline LAMARC-style coalescent genealogy sampler.
//!
//! This crate implements the conventional, single-proposal sampler the paper
//! modifies (Section 4.2), and the machinery shared with the multi-proposal
//! sampler in the `mpcgs` crate:
//!
//! * [`proposal`] — the neighborhood-resimulation proposal mechanism of
//!   Kuhner, Yamato & Felsenstein (1995): a target interior node and its
//!   parent are dissolved, and the three orphaned ("active") lineages are
//!   re-coalesced by sampling from the conditional coalescent prior over the
//!   feasible intervals (Figures 7–9).
//! * [`target`] — the posterior pieces: `ln P(D|G)` (via the `phylo` pruner)
//!   and `ln P(G|θ)` (via the `coalescent` prior), combined per Eq. 24.
//! * [`sampler`] — the standard Metropolis–Hastings genealogy sampler with
//!   the acceptance ratio of Eq. 28.
//! * [`mle`] — the relative-likelihood curve `L(θ)` of Eq. 26 over sampled
//!   genealogies and the step-halving gradient ascent of Algorithm 2.
//! * [`em`] — the expectation–maximisation driver: run a chain with the
//!   driving θ₀, maximise `L(θ)`, replace θ₀, repeat.
//! * [`multi_chain`] — the multiple-independent-chains work-around of
//!   Section 3 (each chain pays its own burn-in), provided as the scalability
//!   baseline that Figure 6 criticises.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod em;
pub mod mle;
pub mod multi_chain;
pub mod proposal;
pub mod sampler;
pub mod target;

pub use em::{EmConfig, EmEstimate, EmIteration, LamarcEstimator};
pub use mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
pub use multi_chain::{MultiChainConfig, MultiChainRun};
pub use proposal::{GenealogyProposer, HazardModel, ProposalConfig};
pub use sampler::{GenealogySample, LamarcSampler, SamplerConfig, SamplerRun};
pub use target::GenealogyTarget;
