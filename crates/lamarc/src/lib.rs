//! Baseline LAMARC-style coalescent genealogy sampler.
//!
//! This crate implements the conventional, single-proposal sampler the paper
//! modifies (Section 4.2), and the machinery shared with the multi-proposal
//! sampler in the `mpcgs` crate:
//!
//! * [`proposal`] — the neighborhood-resimulation proposal mechanism of
//!   Kuhner, Yamato & Felsenstein (1995): a target interior node and its
//!   parent are dissolved, and the three orphaned ("active") lineages are
//!   re-coalesced by sampling from the conditional coalescent prior over the
//!   feasible intervals (Figures 7–9).
//! * [`target`] — the posterior pieces: `ln P(D|G)` (via the `phylo` pruner)
//!   and `ln P(G|θ)` (via the `coalescent` prior), combined per Eq. 24.
//! * [`run`] — the unified sampler-strategy API: the
//!   [`run::GenealogySampler`] trait with its [`run::RunReport`] outcome and
//!   the [`run::RunObserver`] streaming event hooks, the vocabulary every
//!   chain driver (the `mpcgs::Session` facade, the benches, the CLI) speaks.
//! * [`sampler`] — the standard Metropolis–Hastings genealogy sampler with
//!   the acceptance ratio of Eq. 28, as one `GenealogySampler` strategy
//!   (commit-on-accept included: accepted moves promote their dirty path into
//!   the engine's cached workspace).
//! * [`mle`] — the relative-likelihood curve `L(θ)` of Eq. 26 over sampled
//!   genealogies and the step-halving gradient ascent of Algorithm 2.
//!
//! The per-crate EM and multi-chain driver loops that used to live here were
//! superseded by the `mpcgs::Session` facade, which drives any
//! `GenealogySampler` through the same expectation–maximisation loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mle;
pub mod proposal;
pub mod run;
pub mod sampler;
pub mod target;

pub use mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
pub use proposal::{GenealogyProposer, HazardModel, ProposalConfig};
pub use run::{
    ChainInfo, ChainSnapshot, EmUpdate, GenealogySampler, NullObserver, RunCounters, RunObserver,
    RunReport, StepReport,
};
pub use sampler::{GenealogySample, LamarcSampler, SamplerConfig};
pub use target::GenealogyTarget;
