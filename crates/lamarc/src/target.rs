//! The posterior pieces of the genealogy samplers (Eq. 24).
//!
//! A genealogy is scored by two factors: the data likelihood `P(D|G)`
//! computed by Felsenstein pruning over the alignment, and the coalescent
//! prior `P(G|θ)` of Eq. 18. Their product (sum in log domain) is the
//! unnormalised posterior `P(G|D,θ)` that both samplers target.
//!
//! A target optionally carries an inverse temperature β ∈ (0, 1]: a heated
//! rung of a replica-exchange (MC³) ensemble targets the *power posterior*
//! `P(D|G)^β · P(G|θ)` — the data likelihood is flattened, the prior stays
//! cold. Because both built-in proposal mechanisms draw from the conditional
//! coalescent prior, the prior terms of the Hastings ratio still cancel at
//! any β, so within-chain acceptance simply scales the log-likelihood
//! difference by β. At β = 1 every formula reduces bit-identically to the
//! untempered sampler.

use coalescent::KingmanPrior;
use exec::Backend;
use phylo::likelihood::{BatchEvaluation, LikelihoodEngine, TreeProposal};
use phylo::{GeneTree, PhyloError};

/// The sampler target: data likelihood plus coalescent prior for a fixed
/// driving θ, optionally tempered by an inverse temperature β.
#[derive(Debug, Clone)]
pub struct GenealogyTarget<E> {
    engine: E,
    prior: KingmanPrior,
    beta: f64,
}

impl<E: LikelihoodEngine> GenealogyTarget<E> {
    /// Create a target from a likelihood engine and a driving θ (untempered,
    /// β = 1).
    pub fn new(engine: E, theta: f64) -> Result<Self, PhyloError> {
        let prior = KingmanPrior::new(theta).map_err(|_| PhyloError::InvalidParameter {
            name: "theta",
            value: theta,
            constraint: "theta > 0",
        })?;
        Ok(GenealogyTarget { engine, prior, beta: 1.0 })
    }

    /// Temper the target with inverse temperature `beta` (β = 1/T). The
    /// heated target is the power posterior `P(D|G)^β · P(G|θ)`.
    ///
    /// Errors unless `0 < beta ≤ 1` (a rung hotter than the cold chain
    /// flattens the data likelihood; β > 1 would sharpen it, which no
    /// exchange schedule in this workspace uses).
    pub fn with_inverse_temperature(mut self, beta: f64) -> Result<Self, PhyloError> {
        if !(beta > 0.0 && beta <= 1.0 && beta.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "0 < beta <= 1",
            });
        }
        self.beta = beta;
        Ok(self)
    }

    /// The inverse temperature β (1.0 for an untempered target).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The driving θ.
    pub fn theta(&self) -> f64 {
        self.prior.theta()
    }

    /// The likelihood engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// `ln P(D|G)`.
    pub fn log_data_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        self.engine.log_likelihood(tree)
    }

    /// Score a whole proposal set against a generator genealogy through the
    /// engine's batched, dirty-path-cached evaluation (the data-likelihood
    /// kernel of Section 5.2.2 applied to the proposal set of Section 4.3).
    pub fn log_data_likelihood_batch(
        &self,
        backend: Backend,
        generator: &GeneTree,
        proposals: &[TreeProposal<'_>],
    ) -> Result<BatchEvaluation, PhyloError> {
        self.engine.log_likelihood_batch(backend, generator, proposals)
    }

    /// `ln P(G|θ)`.
    pub fn log_prior(&self, tree: &GeneTree) -> f64 {
        self.prior.log_prior(tree)
    }

    /// `ln P(D|G) + ln P(G|θ)`, the unnormalised log posterior of Eq. 24.
    pub fn log_posterior(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        Ok(self.log_data_likelihood(tree)? + self.log_prior(tree))
    }

    /// `β · ln P(D|G) + ln P(G|θ)`, the tempered (power-posterior) target a
    /// heated replica-exchange rung samples.
    pub fn tempered_log_posterior(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        Ok(self.beta * self.log_data_likelihood(tree)? + self.log_prior(tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::model::Jc69;
    use phylo::tree::TreeBuilder;
    use phylo::{Alignment, FelsensteinPruner};

    fn setup() -> (GenealogyTarget<FelsensteinPruner<Jc69>>, GeneTree) {
        let alignment =
            Alignment::from_letters(&[("a", "ACGTACGT"), ("b", "ACGTACGA"), ("c", "ACGAACGA")])
                .unwrap();
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let mut b = TreeBuilder::new();
        let x = b.add_tip("a", 0.0);
        let y = b.add_tip("b", 0.0);
        let z = b.add_tip("c", 0.0);
        let v = b.join(x, y, 0.1);
        b.join(v, z, 0.3);
        (GenealogyTarget::new(engine, 1.0).unwrap(), b.build().unwrap())
    }

    #[test]
    fn posterior_is_sum_of_likelihood_and_prior() {
        let (target, tree) = setup();
        let data = target.log_data_likelihood(&tree).unwrap();
        let prior = target.log_prior(&tree);
        let posterior = target.log_posterior(&tree).unwrap();
        assert!((posterior - (data + prior)).abs() < 1e-12);
        assert!(data < 0.0);
        assert!(posterior.is_finite());
        assert_eq!(target.theta(), 1.0);
        assert_eq!(target.engine().n_sequences(), 3);
    }

    #[test]
    fn invalid_theta_is_rejected() {
        let alignment = Alignment::from_letters(&[("a", "ACGT"), ("b", "ACGA")]).unwrap();
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        assert!(GenealogyTarget::new(engine, 0.0).is_err());
    }

    #[test]
    fn tempering_flattens_only_the_data_term() {
        let (target, tree) = setup();
        assert_eq!(target.beta(), 1.0);
        let cold = target.clone();
        let heated = target.with_inverse_temperature(0.25).unwrap();
        assert_eq!(heated.beta(), 0.25);
        let data = heated.log_data_likelihood(&tree).unwrap();
        let prior = heated.log_prior(&tree);
        let tempered = heated.tempered_log_posterior(&tree).unwrap();
        assert!((tempered - (0.25 * data + prior)).abs() < 1e-12);
        // β = 1 is the untempered posterior, bit for bit.
        assert_eq!(cold.tempered_log_posterior(&tree).unwrap(), cold.log_posterior(&tree).unwrap());
    }

    #[test]
    fn invalid_beta_is_rejected() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let (target, _) = setup();
            assert!(target.with_inverse_temperature(bad).is_err(), "beta {bad} must be rejected");
        }
    }

    #[test]
    fn prior_prefers_heights_commensurate_with_theta() {
        let (target, tree) = setup();
        let mut tall = tree.clone();
        tall.scale_times(50.0);
        assert!(target.log_prior(&tree) > target.log_prior(&tall));
    }
}
