//! The expectation–maximisation driver (Sections 2.5, 4.2, 5.1).
//!
//! One EM iteration runs the genealogy sampler with the current driving θ₀
//! (the expectation stage), builds the relative-likelihood function of Eq. 26
//! from the sampled interval summaries, and maximises it (the maximisation
//! stage) to obtain the next driving value. The paper runs a statically
//! defined number of iterations of this loop (Figure 11); the estimator here
//! also exposes the per-iteration history so the accuracy harness can report
//! convergence.

use rand::Rng;

use phylo::likelihood::ExecutionMode;
use phylo::model::F81;
use phylo::{upgma_tree, Alignment, FelsensteinPruner, PhyloError};

use crate::mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
use crate::proposal::ProposalConfig;
use crate::sampler::{LamarcSampler, SamplerConfig};

/// Configuration of the full estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Initial driving value θ₀ (the second command-line argument of the
    /// original program).
    pub initial_theta: f64,
    /// Number of EM iterations (chain runs).
    pub em_iterations: usize,
    /// Burn-in transitions per chain.
    pub burn_in: usize,
    /// Retained samples per chain.
    pub samples: usize,
    /// Thinning applied to retained samples.
    pub thinning: usize,
    /// Proposal configuration.
    pub proposal: ProposalConfig,
    /// Gradient-ascent configuration.
    pub ascent: GradientAscentConfig,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            initial_theta: 1.0,
            em_iterations: 3,
            burn_in: 500,
            samples: 5_000,
            thinning: 1,
            proposal: ProposalConfig::default(),
            ascent: GradientAscentConfig::default(),
        }
    }
}

/// One EM iteration's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmIteration {
    /// The driving θ used by the chain.
    pub driving_theta: f64,
    /// The maximiser of the relative likelihood (the next driving value).
    pub estimate: f64,
    /// Acceptance rate of the chain.
    pub acceptance_rate: f64,
    /// Mean `ln P(D|G)` over the retained samples.
    pub mean_log_data_likelihood: f64,
}

/// The final estimate and its history.
#[derive(Debug, Clone, PartialEq)]
pub struct EmEstimate {
    /// The final θ̂.
    pub theta: f64,
    /// Per-iteration records.
    pub iterations: Vec<EmIteration>,
}

impl EmEstimate {
    /// Whether the estimate stabilised (relative change of the last two
    /// iterations below `tolerance`).
    pub fn converged(&self, tolerance: f64) -> bool {
        if self.iterations.len() < 2 {
            return false;
        }
        let last = self.iterations[self.iterations.len() - 1].estimate;
        let prev = self.iterations[self.iterations.len() - 2].estimate;
        ((last - prev) / prev.max(f64::MIN_POSITIVE)).abs() < tolerance
    }
}

/// The baseline (LAMARC-style) θ estimator over one alignment.
#[derive(Debug, Clone)]
pub struct LamarcEstimator {
    alignment: Alignment,
    config: EmConfig,
    execution: ExecutionMode,
}

impl LamarcEstimator {
    /// Create an estimator for the alignment.
    pub fn new(alignment: Alignment, config: EmConfig) -> Result<Self, PhyloError> {
        if !(config.initial_theta > 0.0 && config.initial_theta.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "initial_theta",
                value: config.initial_theta,
                constraint: "theta > 0",
            });
        }
        if config.em_iterations == 0 || config.samples == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "em_iterations/samples",
                value: 0.0,
                constraint: "at least one iteration and one sample",
            });
        }
        Ok(LamarcEstimator { alignment, config, execution: ExecutionMode::Serial })
    }

    /// Choose how the likelihood engine executes its per-site work.
    pub fn with_execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }

    /// Run the estimator.
    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<EmEstimate, PhyloError> {
        let mut theta = self.config.initial_theta;
        let mut iterations = Vec::with_capacity(self.config.em_iterations);
        // Section 5.1.3: the starting genealogy is the UPGMA tree; follow-up
        // chains start from the final genealogy of the previous chain.
        let mut current_tree = Some(upgma_tree(&self.alignment, 1.0)?);

        for _ in 0..self.config.em_iterations {
            let engine = FelsensteinPruner::new(
                &self.alignment,
                F81::normalized(self.alignment.base_frequencies()),
            )
            .with_mode(self.execution);
            let sampler_config = SamplerConfig {
                theta,
                burn_in: self.config.burn_in,
                samples: self.config.samples,
                thinning: self.config.thinning,
                proposal: self.config.proposal,
            };
            let sampler = LamarcSampler::new(engine, sampler_config)?;
            let initial = current_tree.take().expect("a starting tree is always available");
            let run = sampler.run(initial, rng)?;

            let summaries = run.interval_summaries();
            let relative = RelativeLikelihood::new(theta, &summaries).map_err(|e| {
                PhyloError::InvalidTree { message: format!("relative likelihood failed: {e}") }
            })?;
            let estimate = maximize_relative_likelihood(&relative, &self.config.ascent);
            let mean_loglik = run.samples.iter().map(|s| s.log_data_likelihood).sum::<f64>()
                / run.samples.len() as f64;
            iterations.push(EmIteration {
                driving_theta: theta,
                estimate,
                acceptance_rate: run.acceptance_rate(),
                mean_log_data_likelihood: mean_loglik,
            });
            theta = estimate.max(1e-9);
            current_tree = Some(run.final_tree);
        }

        Ok(EmEstimate { theta, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, SequenceSimulator};
    use mcmc::rng::Mt19937;
    use phylo::model::Jc69;

    fn simulated_alignment(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    #[test]
    fn configuration_validation() {
        let mut rng = Mt19937::new(51);
        let alignment = simulated_alignment(&mut rng, 4, 40, 1.0);
        assert!(LamarcEstimator::new(
            alignment.clone(),
            EmConfig { initial_theta: 0.0, ..Default::default() }
        )
        .is_err());
        assert!(LamarcEstimator::new(
            alignment.clone(),
            EmConfig { em_iterations: 0, ..Default::default() }
        )
        .is_err());
        let ok = LamarcEstimator::new(alignment, EmConfig::default()).unwrap();
        assert_eq!(ok.config().em_iterations, 3);
    }

    #[test]
    fn estimator_runs_and_reports_history() {
        let mut rng = Mt19937::new(53);
        let alignment = simulated_alignment(&mut rng, 6, 80, 1.0);
        let config = EmConfig {
            initial_theta: 0.3,
            em_iterations: 2,
            burn_in: 100,
            samples: 400,
            thinning: 1,
            ..Default::default()
        };
        let estimator = LamarcEstimator::new(alignment, config).unwrap();
        let estimate = estimator.estimate(&mut rng).unwrap();
        assert_eq!(estimate.iterations.len(), 2);
        assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
        assert_eq!(estimate.iterations[0].driving_theta, 0.3);
        // The second iteration's driving value is the first's estimate.
        assert!(
            (estimate.iterations[1].driving_theta - estimate.iterations[0].estimate).abs() < 1e-12
        );
        for it in &estimate.iterations {
            assert!(it.acceptance_rate > 0.0 && it.acceptance_rate <= 1.0);
            assert!(it.mean_log_data_likelihood.is_finite());
        }
        // converged() needs at least two iterations and a tolerance.
        let _ = estimate.converged(0.5);
    }

    #[test]
    fn estimate_is_in_a_plausible_range_for_simulated_data() {
        // theta = 1 data; the estimate will be noisy with a small chain but
        // must land within an order of magnitude — the sharper accuracy
        // comparison is the Table 1 integration test / bench.
        let mut rng = Mt19937::new(59);
        let alignment = simulated_alignment(&mut rng, 8, 150, 1.0);
        let config = EmConfig {
            initial_theta: 0.1,
            em_iterations: 2,
            burn_in: 200,
            samples: 1_500,
            thinning: 1,
            ..Default::default()
        };
        let estimator = LamarcEstimator::new(alignment, config).unwrap();
        let estimate = estimator.estimate(&mut rng).unwrap();
        assert!(
            estimate.theta > 0.05 && estimate.theta < 10.0,
            "estimate {} is implausible for data simulated at theta = 1",
            estimate.theta
        );
    }

    #[test]
    fn converged_logic() {
        let e = EmEstimate {
            theta: 1.0,
            iterations: vec![EmIteration {
                driving_theta: 1.0,
                estimate: 1.0,
                acceptance_rate: 0.5,
                mean_log_data_likelihood: -10.0,
            }],
        };
        assert!(!e.converged(0.1));
        let e2 = EmEstimate {
            theta: 1.02,
            iterations: vec![
                EmIteration {
                    driving_theta: 1.0,
                    estimate: 1.0,
                    acceptance_rate: 0.5,
                    mean_log_data_likelihood: -10.0,
                },
                EmIteration {
                    driving_theta: 1.0,
                    estimate: 1.02,
                    acceptance_rate: 0.5,
                    mean_log_data_likelihood: -10.0,
                },
            ],
        };
        assert!(e2.converged(0.05));
        assert!(!e2.converged(0.001));
    }
}
