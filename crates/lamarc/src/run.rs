//! The unified sampler-strategy API.
//!
//! Both genealogy samplers in this workspace — the single-proposal baseline
//! ([`LamarcSampler`](crate::sampler::LamarcSampler)) and the multi-proposal
//! Generalized-MH sampler (`mpcgs::MultiProposalSampler`) — drive the same
//! outer loop: start from a genealogy, repeatedly apply a transition kernel,
//! record draws, and hand back samples plus work counters. This module gives
//! that loop one vocabulary so the two kernels become interchangeable
//! *strategies* behind a `Session` facade:
//!
//! * [`GenealogySampler`] — the strategy trait: `begin`/`step`/`finish` for
//!   streaming control, plus a default [`GenealogySampler::run`] that drives
//!   a whole chain and reports progress to a [`RunObserver`].
//! * [`RunReport`] / [`RunCounters`] — the unified outcome type: retained
//!   samples, the full trace, and one set of acceptance/caching counters
//!   shared by every strategy (replacing the per-crate `SamplerRun` /
//!   `GmhRunStats` types).
//! * [`RunObserver`] — the streaming event-hook API: burn-in progress,
//!   per-iteration trace points, EM updates and final diagnostics, replacing
//!   ad-hoc printing in drivers.

use mcmc::chain::Trace;
use rand::RngCore;

use phylo::tree::CoalescentIntervals;
use phylo::{GeneTree, PhyloError};

use crate::sampler::GenealogySample;

/// Work counters collected during a chain run, shared by every sampler
/// strategy. For the baseline sampler one *iteration* is one MH transition
/// and one *draw* is recorded per transition; for the multi-proposal sampler
/// one iteration constructs a whole proposal set and records `M` index draws.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Kernel iterations (MH transitions / proposal-set constructions).
    pub iterations: usize,
    /// Proposals generated.
    pub proposals_generated: usize,
    /// Data-likelihood evaluations performed.
    pub likelihood_evaluations: usize,
    /// Output draws recorded (burn-in included).
    pub draws: usize,
    /// Draws that moved away from the generator state: accepted transitions
    /// for the baseline, index draws landing off the generator for GMH.
    pub accepted: usize,
    /// Interior nodes recomputed along dirty paths by the batched likelihood
    /// engine (proposal scoring).
    pub nodes_repruned: usize,
    /// Interior nodes recomputed by full prunes (generator workspace builds
    /// on cache misses).
    pub nodes_full_pruned: usize,
    /// Interior nodes recomputed while promoting accepted proposals into the
    /// cached generator workspace (commit-on-accept).
    pub nodes_committed: usize,
    /// Batch evaluations whose generator workspace was served from the
    /// engine's cache.
    pub generator_cache_hits: usize,
    /// Edge transition matrices served from the per-workspace
    /// [`phylo::likelihood::EdgeMatrixCache`] during batch evaluations
    /// (workspace rebuilds and dirty-path rescores).
    pub matrix_cache_hits: usize,
    /// Edge transition matrices recomputed during batch evaluations because
    /// the edge's effective branch length changed (or the cache was cold).
    pub matrix_cache_misses: usize,
    /// Accepted moves promoted into the cached workspace instead of being
    /// repaid with a full re-prune.
    pub workspace_commits: usize,
    /// Replica-exchange swaps attempted between ensemble chains (zero for a
    /// single chain or an `Independent` ensemble).
    pub swap_attempts: usize,
    /// Replica-exchange swaps accepted (Metropolis acceptance in log
    /// domain over the rungs' inverse temperatures).
    pub swaps_accepted: usize,
}

impl RunCounters {
    /// Fraction of draws that moved away from the generator state (the
    /// acceptance rate of the baseline, the move rate of the index chain for
    /// the multi-proposal sampler).
    pub fn acceptance_rate(&self) -> f64 {
        if self.draws == 0 {
            0.0
        } else {
            self.accepted as f64 / self.draws as f64
        }
    }

    /// Interior-node recomputations actually performed per likelihood
    /// evaluation: dirty paths, amortised generator rebuilds, and the dirty
    /// paths replayed by commit-on-accept promotions.
    pub fn nodes_pruned_per_evaluation(&self) -> f64 {
        if self.likelihood_evaluations == 0 {
            0.0
        } else {
            (self.nodes_repruned + self.nodes_full_pruned + self.nodes_committed) as f64
                / self.likelihood_evaluations as f64
        }
    }

    /// Fraction of edge transition-matrix consults served from the
    /// per-workspace cache (0.0 when no consults happened).
    pub fn matrix_cache_hit_rate(&self) -> f64 {
        let consults = self.matrix_cache_hits + self.matrix_cache_misses;
        if consults == 0 {
            0.0
        } else {
            self.matrix_cache_hits as f64 / consults as f64
        }
    }

    /// Fraction of attempted replica-exchange swaps that were accepted
    /// (0.0 when none were attempted).
    pub fn swap_acceptance_rate(&self) -> f64 {
        if self.swap_attempts == 0 {
            0.0
        } else {
            self.swaps_accepted as f64 / self.swap_attempts as f64
        }
    }

    /// Element-wise sum of two counter sets (used by ensemble drivers to
    /// aggregate per-chain counters into one pooled view).
    pub fn merged(&self, other: &RunCounters) -> RunCounters {
        RunCounters {
            iterations: self.iterations + other.iterations,
            proposals_generated: self.proposals_generated + other.proposals_generated,
            likelihood_evaluations: self.likelihood_evaluations + other.likelihood_evaluations,
            draws: self.draws + other.draws,
            accepted: self.accepted + other.accepted,
            nodes_repruned: self.nodes_repruned + other.nodes_repruned,
            nodes_full_pruned: self.nodes_full_pruned + other.nodes_full_pruned,
            nodes_committed: self.nodes_committed + other.nodes_committed,
            generator_cache_hits: self.generator_cache_hits + other.generator_cache_hits,
            matrix_cache_hits: self.matrix_cache_hits + other.matrix_cache_hits,
            matrix_cache_misses: self.matrix_cache_misses + other.matrix_cache_misses,
            workspace_commits: self.workspace_commits + other.workspace_commits,
            swap_attempts: self.swap_attempts + other.swap_attempts,
            swaps_accepted: self.swaps_accepted + other.swaps_accepted,
        }
    }
}

/// The unified outcome of one chain run, whichever strategy produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Retained post-burn-in samples (interval summaries plus data
    /// likelihoods).
    pub samples: Vec<GenealogySample>,
    /// Trace of `ln P(D|G)` of the sampled state at every draw, burn-in
    /// included.
    pub trace: Trace,
    /// Work counters.
    pub counters: RunCounters,
    /// The final genealogy (used to seed follow-up chains).
    pub final_tree: GeneTree,
}

impl RunReport {
    /// Fraction of draws that moved away from the generator state.
    pub fn acceptance_rate(&self) -> f64 {
        self.counters.acceptance_rate()
    }

    /// The interval summaries of the retained samples (what the maximisation
    /// stage consumes).
    pub fn interval_summaries(&self) -> Vec<CoalescentIntervals> {
        self.samples.iter().map(|s| s.intervals.clone()).collect()
    }

    /// Mean `ln P(D|G)` over the retained samples (NaN when none were kept).
    pub fn mean_log_data_likelihood(&self) -> f64 {
        self.samples.iter().map(|s| s.log_data_likelihood).sum::<f64>() / self.samples.len() as f64
    }
}

/// Static description of a chain, handed to observers when it starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainInfo {
    /// The strategy driving the chain (e.g. `"baseline"`, `"gmh"`).
    pub strategy: &'static str,
    /// The driving θ.
    pub theta: f64,
    /// Draws that will be discarded as burn-in.
    pub burn_in_draws: usize,
    /// Total draws the chain will record (burn-in included).
    pub total_draws: usize,
    /// Position of this chain within its ensemble. A lone chain (and every
    /// chain outside the ensemble layer) reports index 0; a sharded sampler
    /// re-tags the infos of its member chains so one observer can tell the
    /// per-chain event streams apart.
    pub chain_index: usize,
}

/// Progress of one kernel iteration, handed to observers after each step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Draws recorded so far (burn-in included).
    pub draws_done: usize,
    /// Total draws the chain will record.
    pub total_draws: usize,
    /// Draws discarded as burn-in.
    pub burn_in_draws: usize,
    /// `ln P(D|G)` of the most recently drawn state.
    pub log_likelihood: f64,
}

impl StepReport {
    /// Whether the chain is still inside its burn-in phase.
    pub fn in_burn_in(&self) -> bool {
        self.draws_done <= self.burn_in_draws
    }
}

/// One expectation–maximisation round's outcome, handed to observers by EM
/// drivers (the session facade) after the maximisation stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmUpdate {
    /// EM iteration index (0-based).
    pub iteration: usize,
    /// The driving θ the chain ran with.
    pub driving_theta: f64,
    /// The maximiser of the relative likelihood (next driving value).
    pub estimate: f64,
    /// Acceptance/move rate of the chain.
    pub acceptance_rate: f64,
    /// Mean `ln P(D|G)` over the retained samples.
    pub mean_log_data_likelihood: f64,
}

/// A strategy-agnostic snapshot of one in-flight chain, sufficient to
/// recreate the chain *bit-identically* on a fresh sampler: resuming from a
/// snapshot and stepping to completion must reproduce the exact
/// [`RunReport`] (trace, samples, and counters) an uninterrupted run would
/// have produced, provided the driving RNG streams are restored to the same
/// positions.
///
/// The snapshot captures everything a sampler accumulates between
/// [`GenealogySampler::begin`] and [`GenealogySampler::finish`], plus two
/// fields that exist only for bit-exactness:
///
/// * `stream_epoch` — the multi-proposal sampler's detached-stream epoch
///   counter (proposal randomness is derived from `(epoch, slot)`, so the
///   resumed sampler must continue from the same epoch). The baseline
///   sampler records 0 and ignores it on import.
/// * `engine_cache_tree` — the tree the likelihood engine's generator
///   workspace was keyed to at snapshot time. After a replica-exchange
///   [`GenealogySampler::replace_state`] this is the *pre-swap* tree (not
///   the chain's current tree), and before the first step it is `None`;
///   importing primes the engine with exactly this tree so cache-hit/miss
///   counters replay identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSnapshot {
    /// The chain's current genealogy (the next generator).
    pub tree: GeneTree,
    /// All trace values recorded so far (burn-in included).
    pub trace_values: Vec<f64>,
    /// The trace's burn-in boundary.
    pub trace_burn_in: usize,
    /// Retained post-burn-in samples.
    pub samples: Vec<GenealogySample>,
    /// Work counters accumulated so far.
    pub counters: RunCounters,
    /// Draws recorded so far (transitions for the baseline strategy).
    pub draws_done: usize,
    /// A pending `replace_state` likelihood override, if the snapshot was
    /// taken between a replica-exchange swap and the next step.
    pub swapped_loglik: Option<f64>,
    /// The multi-proposal sampler's detached-stream epoch (0 for strategies
    /// without detached streams).
    pub stream_epoch: u64,
    /// The tree the engine's cached generator workspace described at
    /// snapshot time (`None` for a cold cache).
    pub engine_cache_tree: Option<GeneTree>,
}

/// Streaming hooks into a run. All methods default to no-ops, so an observer
/// implements only the events it cares about. Drivers report: chain start →
/// (burn-in progress during burn-in, a trace point per kernel iteration) →
/// chain end with final diagnostics; EM drivers additionally report one
/// [`EmUpdate`] per maximisation stage.
///
/// The `Send` supertrait lets multi-session drivers (the serve layer's
/// worker pool) move observer-carrying sessions across worker threads;
/// observers needing shared interior state use `Arc<Mutex<…>>`.
pub trait RunObserver: Send {
    /// A chain is about to run.
    fn on_chain_start(&mut self, _info: &ChainInfo) {}

    /// Progress through the burn-in phase (emitted after each kernel
    /// iteration that ends inside burn-in).
    fn on_burn_in_progress(&mut self, _draws_done: usize, _burn_in_total: usize) {}

    /// A per-iteration trace point (emitted after every kernel iteration,
    /// burn-in included).
    fn on_iteration(&mut self, _step: &StepReport) {}

    /// An EM round finished its maximisation stage.
    fn on_em_update(&mut self, _update: &EmUpdate) {}

    /// The chain finished; final diagnostics are in the report.
    fn on_chain_end(&mut self, _report: &RunReport) {}
}

/// The observer that observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// A genealogy-sampling strategy: anything that can drive the Figure 11
/// chain loop (propose → score → select) and produce a unified [`RunReport`].
///
/// The trait is object safe — drivers hold `Box<dyn GenealogySampler>` and
/// select the strategy by configuration. Implementations carry their own
/// chain state between [`GenealogySampler::begin`] and
/// [`GenealogySampler::finish`], so a sampler can also be driven one
/// [`GenealogySampler::step`] at a time (one MH transition, or one whole
/// proposal set for the multi-proposal kernel).
///
/// The `Send` supertrait lets ensemble drivers shard boxed strategies across
/// scoped worker threads (one chain per thread); both built-in strategies are
/// plain owned data and satisfy it for free.
pub trait GenealogySampler: Send {
    /// Short strategy name (`"baseline"`, `"gmh"`).
    fn strategy(&self) -> &'static str;

    /// Static chain description (sizing and driving value).
    fn chain_info(&self) -> ChainInfo;

    /// Reset the chain state to a fresh starting genealogy.
    fn begin(&mut self, initial: GeneTree) -> Result<(), PhyloError>;

    /// Whether the configured draw budget has been consumed (true before
    /// [`GenealogySampler::begin`]).
    fn is_done(&self) -> bool;

    /// Advance the chain by one kernel iteration, recording its draws.
    fn step(&mut self, rng: &mut dyn RngCore) -> Result<StepReport, PhyloError>;

    /// The chain's current genealogy and its `ln P(D|G)`, or `None` when no
    /// draw has been recorded yet (before [`GenealogySampler::begin`] or the
    /// first [`GenealogySampler::step`]).
    ///
    /// This is one half of the replica-exchange seam: an ensemble driver
    /// reads the states of two rungs, decides a Metropolis swap in log
    /// domain, and writes the states back with
    /// [`GenealogySampler::replace_state`].
    fn current_state(&self) -> Option<(GeneTree, f64)>;

    /// Just the `ln P(D|G)` of the chain's current state — what a swap
    /// *decision* needs, without cloning the genealogy. The default derives
    /// it from [`GenealogySampler::current_state`]; implementations override
    /// it to skip the tree clone.
    fn current_log_likelihood(&self) -> Option<f64> {
        self.current_state().map(|(_, loglik)| loglik)
    }

    /// Replace the chain's current genealogy with `tree`, whose
    /// `ln P(D|G)` is `log_likelihood` (the other half of the
    /// replica-exchange seam — swap drivers already hold both halves of the
    /// pair). Implementations adopt the tree as the next generator/current
    /// state and must report the given likelihood from
    /// [`GenealogySampler::current_state`] /
    /// [`GenealogySampler::current_log_likelihood`] until the next step, so
    /// the read-back surface never pairs a swapped-in tree with the previous
    /// state's likelihood. Engine-side caches are refreshed lazily on the
    /// next step (one full prune, exactly as a fresh
    /// [`GenealogySampler::begin`] would pay).
    ///
    /// Errors when no chain is active.
    fn replace_state(&mut self, tree: GeneTree, log_likelihood: f64) -> Result<(), PhyloError>;

    /// Export the in-flight chain as a [`ChainSnapshot`], or `None` when no
    /// chain is active (or the strategy does not support checkpointing).
    ///
    /// A snapshot restored with [`GenealogySampler::import_chain`] on a
    /// freshly built sampler of the same strategy and configuration must
    /// continue the chain bit-identically.
    fn export_chain(&self) -> Option<ChainSnapshot> {
        None
    }

    /// Restore an in-flight chain from a [`ChainSnapshot`] previously
    /// produced by [`GenealogySampler::export_chain`] on an identically
    /// configured sampler, priming engine-side caches so the resumed chain
    /// replays the uninterrupted run exactly — counters included.
    ///
    /// The default errors: strategies that do not opt in cannot be resumed.
    fn import_chain(&mut self, snapshot: ChainSnapshot) -> Result<(), PhyloError> {
        let _ = snapshot;
        Err(PhyloError::InvalidState {
            message: format!(
                "the {:?} strategy does not support checkpoint import",
                self.strategy()
            ),
        })
    }

    /// Consume the accumulated chain state into a [`RunReport`].
    fn finish(&mut self) -> Result<RunReport, PhyloError>;

    /// Run a whole chain from `initial`, reporting progress to `observer`.
    ///
    /// The default drives `begin` → `step`* → `finish` and emits the
    /// documented [`RunObserver`] event sequence.
    fn run(
        &mut self,
        initial: GeneTree,
        rng: &mut dyn RngCore,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, PhyloError> {
        self.begin(initial)?;
        observer.on_chain_start(&self.chain_info());
        while !self.is_done() {
            let step = self.step(rng)?;
            if step.in_burn_in() {
                observer.on_burn_in_progress(step.draws_done, step.burn_in_draws);
            }
            observer.on_iteration(&step);
        }
        let report = self.finish()?;
        observer.on_chain_end(&report);
        Ok(report)
    }
}

/// The error every strategy reports when stepped without an active chain
/// (shared by `GenealogySampler` implementations across crates).
pub fn no_active_chain() -> PhyloError {
    PhyloError::InvalidState {
        message: "no active chain: call begin() (or run()) before step()/finish()".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_rates_handle_empty_runs() {
        let c = RunCounters::default();
        assert_eq!(c.acceptance_rate(), 0.0);
        assert_eq!(c.nodes_pruned_per_evaluation(), 0.0);
        let c = RunCounters { draws: 8, accepted: 2, ..Default::default() };
        assert!((c.acceptance_rate() - 0.25).abs() < 1e-12);
        let c = RunCounters {
            likelihood_evaluations: 10,
            nodes_repruned: 30,
            nodes_full_pruned: 10,
            nodes_committed: 10,
            ..Default::default()
        };
        assert!((c.nodes_pruned_per_evaluation() - 5.0).abs() < 1e-12);
        assert_eq!(RunCounters::default().matrix_cache_hit_rate(), 0.0);
        let caching =
            RunCounters { matrix_cache_hits: 3, matrix_cache_misses: 1, ..Default::default() };
        assert!((caching.matrix_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(RunCounters::default().swap_acceptance_rate(), 0.0);
        let swapping = RunCounters { swap_attempts: 8, swaps_accepted: 2, ..Default::default() };
        assert!((swapping.swap_acceptance_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merged_counters_sum_every_field() {
        let a = RunCounters {
            iterations: 1,
            proposals_generated: 2,
            likelihood_evaluations: 3,
            draws: 4,
            accepted: 5,
            nodes_repruned: 6,
            nodes_full_pruned: 7,
            nodes_committed: 8,
            generator_cache_hits: 9,
            matrix_cache_hits: 13,
            matrix_cache_misses: 14,
            workspace_commits: 10,
            swap_attempts: 11,
            swaps_accepted: 12,
        };
        let doubled = a.merged(&a);
        assert_eq!(
            doubled,
            RunCounters {
                iterations: 2,
                proposals_generated: 4,
                likelihood_evaluations: 6,
                draws: 8,
                accepted: 10,
                nodes_repruned: 12,
                nodes_full_pruned: 14,
                nodes_committed: 16,
                generator_cache_hits: 18,
                matrix_cache_hits: 26,
                matrix_cache_misses: 28,
                workspace_commits: 20,
                swap_attempts: 22,
                swaps_accepted: 24,
            }
        );
        assert_eq!(a.merged(&RunCounters::default()), a);
    }

    #[test]
    fn step_report_burn_in_flag() {
        let mut step =
            StepReport { draws_done: 5, total_draws: 100, burn_in_draws: 10, log_likelihood: -1.0 };
        assert!(step.in_burn_in());
        step.draws_done = 11;
        assert!(!step.in_burn_in());
    }
}
