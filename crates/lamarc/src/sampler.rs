//! The conventional single-proposal Metropolis–Hastings genealogy sampler.
//!
//! This is the sampler at the core of LAMARC (Section 4.2): at each
//! transition a target node is drawn uniformly, its neighborhood is
//! resimulated from the conditional coalescent prior, and the proposal is
//! accepted with probability `min(1, P(D|G')/P(D|G))` (Eq. 28 — the prior
//! terms cancel because the proposal draws from the prior). Sampled
//! genealogies are reduced to their coalescent-interval summaries, which is
//! all the maximisation stage needs (Section 5.1.3).
//!
//! The sampler is one of the two interchangeable strategies behind the
//! [`GenealogySampler`] trait: one [`GenealogySampler::step`] is one MH
//! transition, and a full [`GenealogySampler::run`] produces the unified
//! [`RunReport`]. Accepted moves are *committed* into the likelihood engine's
//! cached generator workspace (promoting the accepted proposal's dirty path
//! instead of repaying a full re-prune), so accepted and rejected transitions
//! alike cost O(path-to-root) node recomputations.

use exec::Backend;
use mcmc::chain::Trace;
use rand::{Rng, RngCore};

use phylo::likelihood::{LikelihoodEngine, TreeProposal};
use phylo::tree::CoalescentIntervals;
use phylo::{GeneTree, PhyloError};

use crate::proposal::{GenealogyProposer, ProposalConfig};
use crate::run::{
    no_active_chain, ChainInfo, ChainSnapshot, GenealogySampler, RunCounters, RunReport, StepReport,
};
use crate::target::GenealogyTarget;

/// Configuration of a single-chain run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// The driving θ (θ₀).
    pub theta: f64,
    /// Transitions discarded as burn-in.
    pub burn_in: usize,
    /// Retained samples.
    pub samples: usize,
    /// Keep every `thinning`-th post-burn-in genealogy.
    pub thinning: usize,
    /// Proposal-mechanism configuration.
    pub proposal: ProposalConfig,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            theta: 1.0,
            burn_in: 1_000,
            samples: 10_000,
            thinning: 1,
            proposal: ProposalConfig::default(),
        }
    }
}

impl SamplerConfig {
    /// Total transitions one chain performs (burn-in plus thinned samples).
    pub fn total_transitions(&self) -> usize {
        self.burn_in + self.samples * self.thinning.max(1)
    }
}

/// One retained genealogy, reduced to what the maximiser needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GenealogySample {
    /// The coalescent-interval summary of the sampled genealogy.
    pub intervals: CoalescentIntervals,
    /// `ln P(D|G)` of the sampled genealogy.
    pub log_data_likelihood: f64,
}

/// In-flight chain state between `begin()` and `finish()`.
#[derive(Debug, Clone)]
struct BaselineChain {
    current: GeneTree,
    trace: Trace,
    samples: Vec<GenealogySample>,
    counters: RunCounters,
    transitions_done: usize,
    /// `ln P(D|G)` of a state installed by `replace_state` (replica
    /// exchange), reported by the read-back surface until the next
    /// transition recomputes the likelihood itself.
    swapped_loglik: Option<f64>,
}

/// The baseline LAMARC-style sampler.
#[derive(Debug, Clone)]
pub struct LamarcSampler<E> {
    target: GenealogyTarget<E>,
    proposer: GenealogyProposer,
    config: SamplerConfig,
    chain: Option<BaselineChain>,
}

impl<E: LikelihoodEngine> LamarcSampler<E> {
    /// Create a sampler over the given likelihood engine.
    pub fn new(engine: E, config: SamplerConfig) -> Result<Self, PhyloError> {
        let target = GenealogyTarget::new(engine, config.theta)?;
        let proposer = GenealogyProposer::with_config(config.theta, config.proposal)?;
        Ok(LamarcSampler { target, proposer, config, chain: None })
    }

    /// Temper the sampler's target with inverse temperature `beta` (β = 1/T):
    /// the chain then samples the power posterior `P(D|G)^β · P(G|θ)` — the
    /// heated-rung target of a replica-exchange ensemble. β = 1 is
    /// bit-identical to the untempered sampler.
    pub fn with_inverse_temperature(mut self, beta: f64) -> Result<Self, PhyloError> {
        self.target = self.target.with_inverse_temperature(beta)?;
        Ok(self)
    }

    /// The configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// The target (posterior) being sampled.
    pub fn target(&self) -> &GenealogyTarget<E> {
        &self.target
    }

    /// One MH transition (Eq. 28), including commit-on-accept.
    fn transition(&mut self, rng: &mut dyn RngCore) -> Result<StepReport, PhyloError> {
        let thinning = self.config.thinning.max(1);
        let chain = self.chain.as_mut().ok_or_else(no_active_chain)?;
        // A swapped-in state's likelihood is recomputed below (the engine
        // cache misses on the new tree), so the override expires here.
        chain.swapped_loglik = None;
        let target_node = self.proposer.sample_target(&chain.current, rng);
        let (proposal, edited) = self.proposer.propose_with_edit(&chain.current, target_node, rng);
        // Score the proposal through the batched engine: the generator's
        // partials are cached inside the engine across transitions, so a
        // proposal costs one dirty path (O(log n) nodes) instead of a full
        // prune — the incremental evaluation the paper credits serial LAMARC
        // with (Section 5.2.2).
        let eval = self.target.log_data_likelihood_batch(
            Backend::Serial,
            &chain.current,
            &[TreeProposal { tree: &proposal, edited: &edited }],
        )?;
        let mut current_loglik = eval.generator_log_likelihood;
        let proposal_loglik = eval.log_likelihoods[0];
        chain.counters.iterations += 1;
        chain.counters.proposals_generated += 1;
        chain.counters.likelihood_evaluations += 1;
        chain.counters.nodes_repruned += eval.nodes_repruned;
        chain.counters.nodes_full_pruned += eval.nodes_full_pruned;
        chain.counters.generator_cache_hits += eval.generator_cache_hit as usize;
        chain.counters.matrix_cache_hits += eval.matrix_cache_hits;
        chain.counters.matrix_cache_misses += eval.matrix_cache_misses;
        // Eq. 28: r = P(D|G') / P(D|G); accept with min(1, r). A heated rung
        // (β < 1) flattens the ratio to r^β; the prior terms cancel at any β
        // because the proposal draws from the conditional coalescent prior.
        let log_ratio = self.target.beta() * (proposal_loglik - current_loglik);
        if log_ratio >= 0.0 || rng.gen::<f64>().ln() < log_ratio {
            // Commit-on-accept: promote the accepted proposal's dirty path
            // into the cached generator workspace so the next transition's
            // generator is a cache hit instead of a full re-prune.
            if let Some(nodes) =
                self.target.engine().commit_accepted(&chain.current, &proposal, &edited)?
            {
                chain.counters.workspace_commits += 1;
                chain.counters.nodes_committed += nodes;
            }
            chain.current = proposal;
            current_loglik = proposal_loglik;
            chain.counters.accepted += 1;
        }
        chain.trace.push(current_loglik);
        let step = chain.transitions_done;
        if step >= self.config.burn_in && (step - self.config.burn_in).is_multiple_of(thinning) {
            chain.samples.push(GenealogySample {
                intervals: chain.current.intervals(),
                log_data_likelihood: current_loglik,
            });
        }
        chain.counters.draws += 1;
        chain.transitions_done += 1;
        Ok(StepReport {
            draws_done: chain.transitions_done,
            total_draws: self.config.total_transitions(),
            burn_in_draws: self.config.burn_in,
            log_likelihood: current_loglik,
        })
    }
}

impl<E: LikelihoodEngine> GenealogySampler for LamarcSampler<E> {
    fn strategy(&self) -> &'static str {
        "baseline"
    }

    fn chain_info(&self) -> ChainInfo {
        ChainInfo {
            strategy: self.strategy(),
            theta: self.config.theta,
            burn_in_draws: self.config.burn_in,
            total_draws: self.config.total_transitions(),
            chain_index: 0,
        }
    }

    fn begin(&mut self, initial: GeneTree) -> Result<(), PhyloError> {
        self.chain = Some(BaselineChain {
            current: initial,
            trace: Trace::with_burn_in(self.config.burn_in),
            samples: Vec::with_capacity(self.config.samples),
            counters: RunCounters::default(),
            transitions_done: 0,
            swapped_loglik: None,
        });
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.chain
            .as_ref()
            .is_none_or(|chain| chain.transitions_done >= self.config.total_transitions())
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> Result<StepReport, PhyloError> {
        self.transition(rng)
    }

    fn current_state(&self) -> Option<(GeneTree, f64)> {
        let chain = self.chain.as_ref()?;
        // A freshly swapped-in state carries its own likelihood; otherwise
        // the last trace entry is ln P(D|G) of the current state (before the
        // first transition there is none to report).
        let loglik = chain.swapped_loglik.or_else(|| chain.trace.all().last().copied())?;
        Some((chain.current.clone(), loglik))
    }

    fn current_log_likelihood(&self) -> Option<f64> {
        let chain = self.chain.as_ref()?;
        chain.swapped_loglik.or_else(|| chain.trace.all().last().copied())
    }

    fn replace_state(&mut self, tree: GeneTree, log_likelihood: f64) -> Result<(), PhyloError> {
        let chain = self.chain.as_mut().ok_or_else(no_active_chain)?;
        // The engine's cached workspace still describes the old state; the
        // next transition's batch detects the mismatch and repays one full
        // prune, so no eager rescore is needed here.
        chain.current = tree;
        chain.swapped_loglik = Some(log_likelihood);
        Ok(())
    }

    fn export_chain(&self) -> Option<ChainSnapshot> {
        let chain = self.chain.as_ref()?;
        Some(ChainSnapshot {
            tree: chain.current.clone(),
            trace_values: chain.trace.all().to_vec(),
            trace_burn_in: chain.trace.burn_in(),
            samples: chain.samples.clone(),
            counters: chain.counters,
            draws_done: chain.transitions_done,
            swapped_loglik: chain.swapped_loglik,
            // The baseline strategy has no detached proposal streams.
            stream_epoch: 0,
            engine_cache_tree: self.target.engine().cached_generator(),
        })
    }

    fn import_chain(&mut self, snapshot: ChainSnapshot) -> Result<(), PhyloError> {
        // Prime the engine with the tree its workspace was keyed to at
        // snapshot time (possibly not `snapshot.tree` after a replica
        // exchange), so cache-hit/miss counters replay identically.
        self.target.engine().prime_cache(snapshot.engine_cache_tree.as_ref())?;
        let mut trace = Trace::from_values(snapshot.trace_values);
        trace.set_burn_in(snapshot.trace_burn_in);
        self.chain = Some(BaselineChain {
            current: snapshot.tree,
            trace,
            samples: snapshot.samples,
            counters: snapshot.counters,
            transitions_done: snapshot.draws_done,
            swapped_loglik: snapshot.swapped_loglik,
        });
        Ok(())
    }

    fn finish(&mut self) -> Result<RunReport, PhyloError> {
        let chain = self.chain.take().ok_or_else(no_active_chain)?;
        Ok(RunReport {
            samples: chain.samples,
            trace: chain.trace,
            counters: chain.counters,
            final_tree: chain.current,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::NullObserver;
    use coalescent::{CoalescentSimulator, KingmanPrior, SequenceSimulator};
    use mcmc::rng::Mt19937;
    use phylo::model::{Jc69, F81};
    use phylo::{upgma_tree, Alignment, FelsensteinPruner};

    fn simulated_data(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    #[test]
    fn run_produces_the_requested_number_of_samples() {
        let mut rng = Mt19937::new(41);
        let alignment = simulated_data(&mut rng, 6, 60, 1.0);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let config = SamplerConfig {
            theta: 1.0,
            burn_in: 50,
            samples: 200,
            thinning: 2,
            proposal: ProposalConfig::default(),
        };
        let mut sampler = LamarcSampler::new(engine, config).unwrap();
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let run = sampler.run(initial, &mut rng, &mut NullObserver).unwrap();
        assert_eq!(run.samples.len(), 200);
        assert_eq!(run.counters.draws, 50 + 400);
        assert_eq!(run.counters.iterations, 450);
        assert_eq!(run.trace.len(), 450);
        assert!(run.acceptance_rate() > 0.0 && run.acceptance_rate() <= 1.0);
        assert_eq!(run.interval_summaries().len(), 200);
        // Commit-on-accept: the engine pays exactly one full prune (the
        // initial workspace build); every accepted move is promoted along its
        // dirty path and every transition thereafter is a cache hit.
        let n_internal = run.final_tree.n_internal();
        assert!(run.counters.nodes_repruned > 0);
        assert!(run.counters.nodes_repruned <= run.counters.draws * n_internal);
        assert_eq!(run.counters.nodes_full_pruned, n_internal);
        assert_eq!(run.counters.workspace_commits, run.counters.accepted);
        assert!(run.counters.nodes_committed > 0);
        assert!(run.counters.nodes_committed < run.counters.accepted * n_internal);
        assert_eq!(run.counters.generator_cache_hits, run.counters.draws - 1);
        // Edge transition-matrix memoisation: some dirty-path edges keep
        // their effective lengths across transitions, so hits accumulate,
        // while the cold initial build and every resimulated neighborhood
        // edge pay a recomputation. (On a 6-taxon tree the neighborhood
        // covers most of the tree, so misses still dominate here — the
        // >80% steady-state rate needs the deep trees the perf trajectory
        // benchmarks.)
        assert!(run.counters.matrix_cache_hits > 0);
        assert!(run.counters.matrix_cache_misses >= run.final_tree.n_nodes() - 1);
        let rate = run.counters.matrix_cache_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "matrix cache hit rate {rate}");
        run.final_tree.validate().unwrap();
        assert_eq!(sampler.config().samples, 200);
        assert_eq!(sampler.target().theta(), 1.0);
    }

    #[test]
    fn replace_state_repays_a_full_rebuild_with_a_cold_matrix_cache() {
        // Replica exchange installs a foreign tree without touching the
        // engine cache: the next transition must repay one full prune, and
        // because the swapped-in tree shares no branch lengths with the old
        // state the edge transition-matrix cache cannot serve that rebuild.
        let mut rng = Mt19937::new(53);
        let alignment = simulated_data(&mut rng, 6, 60, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = SamplerConfig {
            theta: 1.0,
            burn_in: 0,
            samples: 10,
            thinning: 1,
            proposal: ProposalConfig::default(),
        };
        let mut sampler = LamarcSampler::new(engine, config).unwrap();
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        sampler.begin(initial).unwrap();
        sampler.step(&mut rng).unwrap();
        let swapped = CoalescentSimulator::constant(1.0)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &alignment.names().iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        sampler.replace_state(swapped, -1.0).unwrap();
        assert_eq!(sampler.current_log_likelihood(), Some(-1.0));
        sampler.step(&mut rng).unwrap();
        let run = sampler.finish().unwrap();
        let n_internal = run.final_tree.n_internal();
        let n_edges = run.final_tree.n_nodes() - 1;
        // Two full prunes: the initial build and the post-swap rebuild.
        assert_eq!(run.counters.nodes_full_pruned, 2 * n_internal);
        assert_eq!(run.counters.generator_cache_hits, 0);
        // Both prunes ran against a cold (or useless) matrix cache, so the
        // misses cover at least two full trees' worth of edges and the hit
        // rate stays far below the steady-state regime.
        assert!(run.counters.matrix_cache_misses >= 2 * n_edges);
        assert!(run.counters.matrix_cache_hit_rate() < 0.5);
    }

    #[test]
    fn stepping_matches_a_whole_run_exactly() {
        // Driving the chain one step at a time is the same chain as run():
        // identical RNG stream, identical trace, identical counters.
        let mut rng = Mt19937::new(4_242);
        let alignment = simulated_data(&mut rng, 5, 50, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config =
            SamplerConfig { theta: 1.0, burn_in: 20, samples: 60, ..SamplerConfig::default() };
        let initial = upgma_tree(&alignment, 1.0).unwrap();

        let mut whole = LamarcSampler::new(engine.clone(), config).unwrap();
        let mut rng_a = Mt19937::new(7);
        let run_a = whole.run(initial.clone(), &mut rng_a, &mut NullObserver).unwrap();

        let mut stepped = LamarcSampler::new(engine, config).unwrap();
        assert!(stepped.is_done(), "no chain is active before begin()");
        assert!(stepped.step(&mut Mt19937::new(0)).is_err());
        assert!(stepped.finish().is_err());
        let mut rng_b = Mt19937::new(7);
        stepped.begin(initial).unwrap();
        let mut steps = 0;
        while !stepped.is_done() {
            let report = stepped.step(&mut rng_b).unwrap();
            steps += 1;
            assert_eq!(report.draws_done, steps);
            assert_eq!(report.total_draws, config.total_transitions());
        }
        let run_b = stepped.finish().unwrap();
        assert_eq!(steps, config.total_transitions());
        assert_eq!(run_a.trace.all(), run_b.trace.all());
        assert_eq!(run_a.counters, run_b.counters);
        assert_eq!(whole.strategy(), "baseline");
        assert_eq!(whole.chain_info().total_draws, config.total_transitions());
    }

    #[test]
    fn export_import_resumes_the_chain_bit_identically() {
        // Checkpoint/resume contract: stop after k transitions, rebuild the
        // sampler from scratch, import the snapshot, restore the host RNG by
        // position, and the finished run must equal the uninterrupted run
        // bit-for-bit — trace, samples, final tree, and every counter.
        let mut rng = Mt19937::new(59);
        let alignment = simulated_data(&mut rng, 6, 60, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config =
            SamplerConfig { theta: 1.0, burn_in: 20, samples: 60, ..SamplerConfig::default() };
        let initial = upgma_tree(&alignment, 1.0).unwrap();

        let mut uninterrupted = LamarcSampler::new(engine.clone(), config).unwrap();
        let mut rng_a = Mt19937::new(17);
        let run_a = uninterrupted.run(initial.clone(), &mut rng_a, &mut NullObserver).unwrap();

        let mut first_half = LamarcSampler::new(engine.clone(), config).unwrap();
        assert!(first_half.export_chain().is_none(), "no chain active before begin()");
        let mut rng_b = Mt19937::new(17);
        first_half.begin(initial).unwrap();
        for _ in 0..33 {
            first_half.step(&mut rng_b).unwrap();
        }
        let snapshot = first_half.export_chain().unwrap();
        assert_eq!(snapshot.draws_done, 33);
        assert_eq!(snapshot.stream_epoch, 0);
        drop(first_half);

        let mut resumed = LamarcSampler::new(engine, config).unwrap();
        resumed.import_chain(snapshot).unwrap();
        let mut rng_c = Mt19937::new(17);
        rng_c.discard(rng_b.position());
        while !resumed.is_done() {
            resumed.step(&mut rng_c).unwrap();
        }
        let run_b = resumed.finish().unwrap();
        assert_eq!(run_a, run_b);
    }

    #[test]
    fn chain_moves_toward_higher_data_likelihood_from_a_poor_start() {
        let mut rng = Mt19937::new(43);
        let alignment = simulated_data(&mut rng, 6, 80, 1.0);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let config = SamplerConfig {
            theta: 1.0,
            burn_in: 0,
            samples: 600,
            thinning: 1,
            proposal: ProposalConfig::default(),
        };
        let mut sampler = LamarcSampler::new(engine, config).unwrap();
        // A deliberately terrible start: a random tree stretched far too tall.
        let mut initial = CoalescentSimulator::constant(1.0)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &alignment.names().iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        initial.scale_times(30.0);
        let run = sampler.run(initial, &mut rng, &mut NullObserver).unwrap();
        let first = run.trace.all()[0];
        let last_mean: f64 = run.trace.all().iter().rev().take(100).sum::<f64>() / 100.0;
        assert!(
            last_mean > first,
            "chain should improve the data likelihood: started {first}, ended around {last_mean}"
        );
    }

    #[test]
    fn sampler_with_flat_data_recovers_the_prior() {
        // With a single invariant site the data likelihood is nearly flat in
        // the tree, so the chain samples (approximately) the coalescent
        // prior; mean TMRCA must approach the Kingman expectation.
        let mut rng = Mt19937::new(47);
        let alignment =
            Alignment::from_letters(&[("1", "A"), ("2", "A"), ("3", "A"), ("4", "A"), ("5", "A")])
                .unwrap();
        let theta = 1.0;
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = SamplerConfig {
            theta,
            burn_in: 500,
            samples: 4_000,
            thinning: 1,
            proposal: ProposalConfig::default(),
        };
        let mut sampler = LamarcSampler::new(engine, config).unwrap();
        let initial = CoalescentSimulator::constant(theta)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &["1", "2", "3", "4", "5"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        let run = sampler.run(initial, &mut rng, &mut NullObserver).unwrap();
        let mean_depth: f64 =
            run.samples.iter().map(|s| s.intervals.depth()).sum::<f64>() / run.samples.len() as f64;
        let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(5);
        // The invariant site still weakly favours shorter trees, so allow a
        // generous band around the prior expectation.
        assert!(
            (mean_depth / expected - 1.0).abs() < 0.35,
            "mean sampled depth {mean_depth} vs prior expectation {expected}"
        );
        assert!(run.acceptance_rate() > 0.5, "near-flat data should accept most proposals");
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let alignment = Alignment::from_letters(&[("a", "ACGT"), ("b", "ACGA")]).unwrap();
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = SamplerConfig { theta: -1.0, ..SamplerConfig::default() };
        assert!(LamarcSampler::new(engine, config).is_err());
    }
}
