//! The conventional single-proposal Metropolis–Hastings genealogy sampler.
//!
//! This is the sampler at the core of LAMARC (Section 4.2): at each
//! transition a target node is drawn uniformly, its neighborhood is
//! resimulated from the conditional coalescent prior, and the proposal is
//! accepted with probability `min(1, P(D|G')/P(D|G))` (Eq. 28 — the prior
//! terms cancel because the proposal draws from the prior). Sampled
//! genealogies are reduced to their coalescent-interval summaries, which is
//! all the maximisation stage needs (Section 5.1.3).

use exec::Backend;
use mcmc::chain::Trace;
use rand::Rng;

use phylo::likelihood::{LikelihoodEngine, TreeProposal};
use phylo::tree::CoalescentIntervals;
use phylo::{GeneTree, PhyloError};

use crate::proposal::{GenealogyProposer, ProposalConfig};
use crate::target::GenealogyTarget;

/// Configuration of a single-chain run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// The driving θ (θ₀).
    pub theta: f64,
    /// Transitions discarded as burn-in.
    pub burn_in: usize,
    /// Retained samples.
    pub samples: usize,
    /// Keep every `thinning`-th post-burn-in genealogy.
    pub thinning: usize,
    /// Proposal-mechanism configuration.
    pub proposal: ProposalConfig,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            theta: 1.0,
            burn_in: 1_000,
            samples: 10_000,
            thinning: 1,
            proposal: ProposalConfig::default(),
        }
    }
}

/// One retained genealogy, reduced to what the maximiser needs.
#[derive(Debug, Clone)]
pub struct GenealogySample {
    /// The coalescent-interval summary of the sampled genealogy.
    pub intervals: CoalescentIntervals,
    /// `ln P(D|G)` of the sampled genealogy.
    pub log_data_likelihood: f64,
}

/// The outcome of a chain run.
#[derive(Debug, Clone)]
pub struct SamplerRun {
    /// Retained samples (post burn-in, thinned).
    pub samples: Vec<GenealogySample>,
    /// Trace of `ln P(D|G)` at every transition, burn-in included.
    pub trace: Trace,
    /// Accepted transitions.
    pub accepted: usize,
    /// Attempted transitions.
    pub attempted: usize,
    /// Interior nodes recomputed along dirty paths by the incremental
    /// likelihood engine (proposal scoring).
    pub nodes_repruned: usize,
    /// Interior nodes recomputed by full prunes (generator workspace
    /// rebuilds after accepted moves).
    pub nodes_full_pruned: usize,
    /// The final genealogy (used to seed follow-up chains).
    pub final_tree: GeneTree,
}

impl SamplerRun {
    /// Fraction of proposals accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }

    /// The interval summaries of the retained samples.
    pub fn interval_summaries(&self) -> Vec<CoalescentIntervals> {
        self.samples.iter().map(|s| s.intervals.clone()).collect()
    }
}

/// The baseline LAMARC-style sampler.
#[derive(Debug, Clone)]
pub struct LamarcSampler<E> {
    target: GenealogyTarget<E>,
    proposer: GenealogyProposer,
    config: SamplerConfig,
}

impl<E: LikelihoodEngine> LamarcSampler<E> {
    /// Create a sampler over the given likelihood engine.
    pub fn new(engine: E, config: SamplerConfig) -> Result<Self, PhyloError> {
        let target = GenealogyTarget::new(engine, config.theta)?;
        let proposer = GenealogyProposer::with_config(config.theta, config.proposal)?;
        Ok(LamarcSampler { target, proposer, config })
    }

    /// The configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// The target (posterior) being sampled.
    pub fn target(&self) -> &GenealogyTarget<E> {
        &self.target
    }

    /// Run the chain from the given starting genealogy.
    pub fn run<R: Rng + ?Sized>(
        &self,
        initial: GeneTree,
        rng: &mut R,
    ) -> Result<SamplerRun, PhyloError> {
        let thinning = self.config.thinning.max(1);
        let total = self.config.burn_in + self.config.samples * thinning;
        let mut current = initial;
        let mut trace = Trace::with_burn_in(self.config.burn_in);
        let mut samples = Vec::with_capacity(self.config.samples);
        let mut accepted = 0usize;
        let mut nodes_repruned = 0usize;
        let mut nodes_full_pruned = 0usize;

        for step in 0..total {
            let target_node = self.proposer.sample_target(&current, rng);
            let (proposal, edited) = self.proposer.propose_with_edit(&current, target_node, rng);
            // Score the proposal through the batched engine: the generator's
            // partials are cached inside the engine across consecutive
            // rejections, so a transition costs one dirty path (O(log n)
            // nodes) instead of a full prune — the incremental evaluation the
            // paper credits serial LAMARC with (Section 5.2.2).
            let eval = self.target.log_data_likelihood_batch(
                Backend::Serial,
                &current,
                &[TreeProposal { tree: &proposal, edited: &edited }],
            )?;
            let mut current_loglik = eval.generator_log_likelihood;
            let proposal_loglik = eval.log_likelihoods[0];
            nodes_repruned += eval.nodes_repruned;
            nodes_full_pruned += eval.nodes_full_pruned;
            // Eq. 28: r = P(D|G') / P(D|G); accept with min(1, r).
            let log_ratio = proposal_loglik - current_loglik;
            if log_ratio >= 0.0 || rng.gen::<f64>().ln() < log_ratio {
                current = proposal;
                current_loglik = proposal_loglik;
                accepted += 1;
            }
            trace.push(current_loglik);
            if step >= self.config.burn_in && (step - self.config.burn_in).is_multiple_of(thinning)
            {
                samples.push(GenealogySample {
                    intervals: current.intervals(),
                    log_data_likelihood: current_loglik,
                });
            }
        }

        Ok(SamplerRun {
            samples,
            trace,
            accepted,
            attempted: total,
            nodes_repruned,
            nodes_full_pruned,
            final_tree: current,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, KingmanPrior, SequenceSimulator};
    use mcmc::rng::Mt19937;
    use phylo::model::{Jc69, F81};
    use phylo::{upgma_tree, Alignment, FelsensteinPruner};

    fn simulated_data(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    #[test]
    fn run_produces_the_requested_number_of_samples() {
        let mut rng = Mt19937::new(41);
        let alignment = simulated_data(&mut rng, 6, 60, 1.0);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let config = SamplerConfig {
            theta: 1.0,
            burn_in: 50,
            samples: 200,
            thinning: 2,
            proposal: ProposalConfig::default(),
        };
        let sampler = LamarcSampler::new(engine, config).unwrap();
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let run = sampler.run(initial, &mut rng).unwrap();
        assert_eq!(run.samples.len(), 200);
        assert_eq!(run.attempted, 50 + 400);
        assert_eq!(run.trace.len(), 450);
        assert!(run.acceptance_rate() > 0.0 && run.acceptance_rate() <= 1.0);
        assert_eq!(run.interval_summaries().len(), 200);
        // The incremental engine recomputes only dirty paths per proposal;
        // full prunes happen at most once per accepted move (plus the first).
        let n_internal = run.final_tree.n_internal();
        assert!(run.nodes_repruned > 0);
        assert!(run.nodes_repruned <= run.attempted * n_internal);
        assert!(run.nodes_full_pruned <= (run.accepted + 1) * n_internal);
        run.final_tree.validate().unwrap();
        assert_eq!(sampler.config().samples, 200);
        assert_eq!(sampler.target().theta(), 1.0);
    }

    #[test]
    fn chain_moves_toward_higher_data_likelihood_from_a_poor_start() {
        let mut rng = Mt19937::new(43);
        let alignment = simulated_data(&mut rng, 6, 80, 1.0);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let config = SamplerConfig {
            theta: 1.0,
            burn_in: 0,
            samples: 600,
            thinning: 1,
            proposal: ProposalConfig::default(),
        };
        let sampler = LamarcSampler::new(engine, config).unwrap();
        // A deliberately terrible start: a random tree stretched far too tall.
        let mut initial = CoalescentSimulator::constant(1.0)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &alignment.names().iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        initial.scale_times(30.0);
        let run = sampler.run(initial, &mut rng).unwrap();
        let first = run.trace.all()[0];
        let last_mean: f64 = run.trace.all().iter().rev().take(100).sum::<f64>() / 100.0;
        assert!(
            last_mean > first,
            "chain should improve the data likelihood: started {first}, ended around {last_mean}"
        );
    }

    #[test]
    fn sampler_with_flat_data_recovers_the_prior() {
        // With a single invariant site the data likelihood is nearly flat in
        // the tree, so the chain samples (approximately) the coalescent
        // prior; mean TMRCA must approach the Kingman expectation.
        let mut rng = Mt19937::new(47);
        let alignment =
            Alignment::from_letters(&[("1", "A"), ("2", "A"), ("3", "A"), ("4", "A"), ("5", "A")])
                .unwrap();
        let theta = 1.0;
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = SamplerConfig {
            theta,
            burn_in: 500,
            samples: 4_000,
            thinning: 1,
            proposal: ProposalConfig::default(),
        };
        let sampler = LamarcSampler::new(engine, config).unwrap();
        let initial = CoalescentSimulator::constant(theta)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &["1", "2", "3", "4", "5"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        let run = sampler.run(initial, &mut rng).unwrap();
        let mean_depth: f64 =
            run.samples.iter().map(|s| s.intervals.depth()).sum::<f64>() / run.samples.len() as f64;
        let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(5);
        // The invariant site still weakly favours shorter trees, so allow a
        // generous band around the prior expectation.
        assert!(
            (mean_depth / expected - 1.0).abs() < 0.35,
            "mean sampled depth {mean_depth} vs prior expectation {expected}"
        );
        assert!(run.acceptance_rate() > 0.5, "near-flat data should accept most proposals");
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let alignment = Alignment::from_letters(&[("a", "ACGT"), ("b", "ACGA")]).unwrap();
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = SamplerConfig { theta: -1.0, ..SamplerConfig::default() };
        assert!(LamarcSampler::new(engine, config).is_err());
    }
}
