//! The `mpcgs-analyze` binary: lint the workspace's determinism, unsafe-
//! boundary, and Backend-seam invariants.
//!
//! ```text
//! mpcgs-analyze [--root DIR] [--json]       lint every workspace .rs file
//! mpcgs-analyze --explain <rule>            document one invariant
//! mpcgs-analyze --list                      list the rule registry
//! mpcgs-analyze --api-surface               print the public-API listing
//! mpcgs-analyze --check-api-surface FILE    diff the listing against FILE
//! ```
//!
//! Exit code 0 means zero unsuppressed diagnostics; 1 means findings; 2
//! means the invocation itself was wrong.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use analyze::rules;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    explain: Option<String>,
    list: bool,
    api_surface: bool,
    check_api_surface: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        explain: None,
        list: false,
        api_surface: false,
        check_api_surface: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--json" => args.json = true,
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule id (try --list)")?;
                args.explain = Some(rule.clone());
            }
            "--list" => args.list = true,
            "--api-surface" => args.api_surface = true,
            "--check-api-surface" => {
                let file = it.next().ok_or("--check-api-surface needs a baseline file argument")?;
                args.check_api_surface = Some(PathBuf::from(file));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn print_usage() {
    eprintln!(
        "mpcgs-analyze — workspace invariant linter\n\n\
         USAGE:\n  mpcgs-analyze [--root DIR] [--json]\n  mpcgs-analyze --explain <rule>\n  \
         mpcgs-analyze --list\n  mpcgs-analyze --api-surface\n  mpcgs-analyze \
         --check-api-surface FILE\n\nOPTIONS:\n  --root DIR       workspace root (default: \
         walk up from the current directory\n                   to the nearest [workspace] \
         Cargo.toml)\n  \
         --json           emit the mpcgs-analyze/v1 JSON artifact instead of text\n  \
         --explain RULE   print one rule's rationale (d1..d6, r1..r4, pragma)\n  --list           \
         list the rule registry\n  --api-surface    print the normalised public-API listing \
         (rule r4)\n  --check-api-surface FILE\n                   diff the live listing \
         against the committed FILE baseline;\n                   exit 1 with the +/- lines \
         and the regen one-liner on drift\n\nSuppress a finding in place, with a mandatory \
         written reason:\n  \
         // mpcgs-analyze: allow(d1, reason = \"lookup only; order never escapes\")\n\nSee \
         docs/ARCHITECTURE.md, \"Static analysis & invariants\"."
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("mpcgs-analyze: {message}");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };

    if args.list {
        for rule in rules::RULES {
            println!("{:<7} {}", rule.id, rule.title);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        match rules::rule(id) {
            Some(rule) => {
                println!("[{}] {}\n\n{}", rule.id, rule.title, rule.explain);
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("mpcgs-analyze: no rule named `{id}` (try --list)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match args
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| analyze::find_workspace_root(&cwd)))
    {
        Some(root) => root,
        None => {
            eprintln!(
                "mpcgs-analyze: no [workspace] Cargo.toml above the current directory — \
                 pass --root"
            );
            return ExitCode::from(2);
        }
    };

    if args.api_surface || args.check_api_surface.is_some() {
        let files = match analyze::read_workspace(&root) {
            Ok(files) => files,
            Err(error) => {
                eprintln!("mpcgs-analyze: failed to scan {}: {error}", root.display());
                return ExitCode::from(2);
            }
        };
        let live = analyze::api::surface(&analyze::graph::units(files));
        if args.api_surface {
            print!("{live}");
            return ExitCode::SUCCESS;
        }
        let baseline_path = args.check_api_surface.as_deref().unwrap_or(std::path::Path::new(""));
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!(
                    "mpcgs-analyze: cannot read baseline {}: {error}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        return if analyze::api::check(&live, &baseline).is_empty() {
            println!("mpcgs-analyze: API surface matches {}", baseline_path.display());
            ExitCode::SUCCESS
        } else {
            eprint!("{}", analyze::api::render_diff(&live, &baseline));
            ExitCode::FAILURE
        };
    }

    let report = match analyze::analyze_workspace(&root) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("mpcgs-analyze: failed to scan {}: {error}", root.display());
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", report.to_json().to_pretty());
    } else {
        for diagnostic in report.unsuppressed() {
            println!("{}", diagnostic.render());
        }
        println!("{}", report.summary());
    }
    if report.unsuppressed().count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
