//! A small lossless Rust lexer.
//!
//! The rule engine needs to know, for every byte of a source file, whether
//! it is *code*, a *comment*, or a *literal* — a `HashMap` inside a doc
//! comment or an error string must never trip a determinism rule. It does
//! **not** need a parse tree: every invariant in the registry is expressible
//! over the token stream plus a little brace tracking. So this module
//! tokenizes exactly — strings (including raw/byte/C strings with any hash
//! depth), char vs. lifetime disambiguation, nested block comments, raw
//! identifiers, float vs. integer literals — and guarantees losslessness:
//! concatenating the token texts reproduces the input byte for byte.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe` is an `Ident` with text `unsafe`).
    Ident,
    /// A raw identifier (`r#match`); `text` keeps the `r#` prefix.
    RawIdent,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// An integer literal, including any suffix (`42`, `0xFF_u32`).
    Int,
    /// A float literal, including any suffix (`1.0`, `1e-3`, `2f64`).
    Float,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A `//` comment, up to but not including the newline.
    LineComment,
    /// A `/* … */` comment (nesting handled).
    BlockComment,
    /// A run of whitespace.
    Whitespace,
    /// A single punctuation character (`==` arrives as two `=` tokens).
    Punct,
}

/// One token: kind, byte span, and the 1-based position of its first byte.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based character column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// Whether the token is code the rules should look at (not whitespace,
    /// not a comment).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Tokenize `source` losslessly. Unterminated constructs (a string or block
/// comment running off the end of the file) are closed at end of input
/// rather than reported — the linter lints conventions, not syntax; `rustc`
/// owns rejecting malformed files.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer { src: source.as_bytes(), text: source, pos: 0, line: 1, col: 1, tokens: Vec::new() }
        .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    text: &'s str,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.tokens.push(Token { kind, start, end: self.pos, line, col });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advance one char, maintaining line/col.
    fn bump(&mut self) {
        let b = self.src[self.pos];
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
        } else {
            // Skip over a whole UTF-8 sequence so columns count characters.
            let mut len = 1;
            while self.pos + len < self.src.len() && (self.src[self.pos + len] & 0xC0) == 0x80 {
                len += 1;
            }
            self.pos += len;
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.peek(0);
        if b.is_ascii_whitespace() {
            while self.pos < self.src.len() && self.peek(0).is_ascii_whitespace() {
                self.bump();
            }
            return TokenKind::Whitespace;
        }
        if b == b'/' && self.peek(1) == b'/' {
            while self.pos < self.src.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            return TokenKind::LineComment;
        }
        if b == b'/' && self.peek(1) == b'*' {
            self.bump_n(2);
            let mut depth = 1usize;
            while self.pos < self.src.len() && depth > 0 {
                if self.peek(0) == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump_n(2);
                } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump_n(2);
                } else {
                    self.bump();
                }
            }
            return TokenKind::BlockComment;
        }
        // Raw identifiers and raw strings share the `r` prefix.
        if b == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
            self.bump_n(2);
            self.eat_ident();
            return TokenKind::RawIdent;
        }
        if let Some(kind) = self.try_string_prefix() {
            return kind;
        }
        if is_ident_start(b) {
            self.eat_ident();
            return TokenKind::Ident;
        }
        if b.is_ascii_digit() {
            return self.eat_number();
        }
        if b == b'\'' {
            return self.eat_char_or_lifetime();
        }
        if b == b'"' {
            self.eat_quoted_string();
            return TokenKind::Str;
        }
        self.bump();
        TokenKind::Punct
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"` prefixes.
    fn try_string_prefix(&mut self) -> Option<TokenKind> {
        let b = self.peek(0);
        if !(b == b'r' || b == b'b' || b == b'c') {
            return None;
        }
        // Byte char: b'…'
        if b == b'b' && self.peek(1) == b'\'' {
            self.bump();
            self.eat_quoted(b'\'');
            return Some(TokenKind::Char);
        }
        // Cooked with prefix: b"…" / c"…"
        if (b == b'b' || b == b'c') && self.peek(1) == b'"' {
            self.bump();
            self.eat_quoted_string();
            return Some(TokenKind::Str);
        }
        // Raw forms: r"…", r#…, br"…", br#…, cr"…", cr#…
        let (raw_at, _two_prefix) = if b == b'r' {
            (1usize, false)
        } else if self.peek(1) == b'r' {
            (2usize, true)
        } else {
            return None;
        };
        let mut hashes = 0usize;
        while self.peek(raw_at + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(raw_at + hashes) != b'"' {
            return None;
        }
        self.bump_n(raw_at + hashes + 1);
        // Scan to `"` followed by `hashes` hash marks.
        'outer: while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        Some(TokenKind::Str)
    }

    fn eat_ident(&mut self) {
        while self.pos < self.src.len() && is_ident_continue(self.peek(0)) {
            self.bump();
        }
    }

    fn eat_number(&mut self) -> TokenKind {
        // Radix-prefixed literals are always integers.
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump_n(2);
            while is_ident_continue(self.peek(0)) && self.pos < self.src.len() {
                self.bump();
            }
            return TokenKind::Int;
        }
        let mut float = false;
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        // A `.` makes it a float — unless it is a range (`1..2`), a method
        // call (`1.max(2)`), or a field access, which need the next char.
        if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
            float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E') {
            let sign = matches!(self.peek(1), b'+' | b'-') as usize;
            if self.peek(1 + sign).is_ascii_digit() {
                float = true;
                self.bump_n(1 + sign);
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
        }
        // Suffix (`u32`, `f64`, …) decides floatness for `2f64`.
        if is_ident_start(self.peek(0)) {
            let suffix_start = self.pos;
            while self.pos < self.src.len() && is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let suffix = &self.text[suffix_start..self.pos];
            if suffix == "f32" || suffix == "f64" {
                float = true;
            }
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn eat_char_or_lifetime(&mut self) -> TokenKind {
        // A char literal is `'` + (escape | one char) + `'`. A lifetime is
        // `'` + ident not followed by a closing quote.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '
            self.eat_ident();
            return TokenKind::Lifetime;
        }
        self.eat_quoted(b'\'');
        TokenKind::Char
    }

    fn eat_quoted_string(&mut self) {
        self.eat_quoted(b'"');
    }

    /// Consume a `quote`-delimited literal with backslash escapes, starting
    /// at the opening quote.
    fn eat_quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b == b'\\' {
                self.bump_n(2);
            } else if b == quote {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(src: &str) {
        let tokens = tokenize(src);
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.is_significant())
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn round_trips_tricky_input() {
        lossless("fn main() { let s = \"a \\\" // not a comment\"; }\n");
        lossless("let r = r#\"raw \" string\"#; /* outer /* nested */ still */ let x = 1;\n");
        lossless("let c = 'x'; let nl = '\\''; let life: &'static str = \"y\";\n");
        lossless("let b = b\"bytes\"; let bc = b'\\xFF'; let cs = c\"cstr\";\n");
        lossless("let f = 1.0e-3f64; let i = 0xFF_u32; let t = x.0; let r = 0..1;\n");
        lossless("mod r#match {} // raw ident\nlet π = \"unicode idents\";\n");
        lossless("let unterminated = \"runs off the end");
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = "// HashMap in a comment\nlet s = \"HashSet in a string\";\nuse std::x;\n";
        let idents: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t)
            .collect();
        assert!(idents.iter().all(|t| t != "HashMap" && t != "HashSet"));
        assert!(idents.iter().any(|t| t == "use"));
    }

    #[test]
    fn float_vs_int_vs_field_access() {
        let k = kinds("a.0 == 1.0; b == 2; c == 1e9; d == 2f64; e == 0x10; f == 1.;");
        let floats: Vec<&str> =
            k.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, t)| t.as_str()).collect();
        assert_eq!(floats, ["1.0", "1e9", "2f64", "1."]);
        let ints: Vec<&str> =
            k.iter().filter(|(k, _)| *k == TokenKind::Int).map(|(_, t)| t.as_str()).collect();
        assert_eq!(ints, ["0", "2", "0x10"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let k = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(k.iter().any(|(kind, t)| *kind == TokenKind::Lifetime && t == "'a"));
        assert!(k.iter().any(|(kind, t)| *kind == TokenKind::Char && t == "'a'"));
    }

    #[test]
    fn positions_are_one_based_lines_and_char_columns() {
        let src = "ab\n  cd\n";
        let tokens = tokenize(src);
        let cd = tokens.iter().find(|t| t.text(src) == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
        // Multi-byte chars count as one column.
        let src2 = "// π\nx";
        let tokens2 = tokenize(src2);
        let x = tokens2.iter().find(|t| t.text(src2) == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 1));
    }

    /// The item parser walks `use` paths and call paths token-by-token, so
    /// prefixed strings must be ONE `Str` token (not ident + string) and
    /// raw idents must be ONE `RawIdent` token even in path position.
    #[test]
    fn byte_strings_and_raw_ident_paths_are_single_tokens() {
        let k = kinds("let x = b\"bytes\"; let y = br#\"raw bytes\"#; let z = br\"rb\";");
        let strs: Vec<&str> =
            k.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.as_str()).collect();
        assert_eq!(strs, ["b\"bytes\"", "br#\"raw bytes\"#", "br\"rb\""]);
        // No stray `b`/`br` ident tokens left in front of the strings.
        assert!(!k.iter().any(|(kind, t)| *kind == TokenKind::Ident && (t == "b" || t == "br")));

        let k = kinds("let c = r#type::r#match(1); let e = cr#\"c raw\"#;");
        let raw: Vec<&str> =
            k.iter().filter(|(k, _)| *k == TokenKind::RawIdent).map(|(_, t)| t.as_str()).collect();
        assert_eq!(raw, ["r#type", "r#match"]);
        assert!(k.iter().any(|(kind, t)| *kind == TokenKind::Str && t == "cr#\"c raw\"#"));
        // Losslessness holds for all of the above.
        lossless("let a = b\"x\"; let b = br#\"y\"#; let c = r#type::r#match(1);\n");
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes() {
        let src = "let s = r##\"quote \"# inside\"##; let after = 1;";
        let k = kinds(src);
        assert!(k.iter().any(|(kind, t)| *kind == TokenKind::Str && t.contains("inside")));
        assert!(k.iter().any(|(_, t)| t == "after"));
    }
}
