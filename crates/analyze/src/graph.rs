//! The workspace call graph: name-resolved, best-effort, honest about
//! what it cannot resolve.
//!
//! [`build`] flattens every file's [`crate::items::FnItem`]s into one node
//! table, scans each body's token stream for call sites, and resolves them
//! against the workspace item index:
//!
//! - **Path calls** (`foo(…)`, `serve::record_failure(…)`,
//!   `JobQueue::new(…)`) resolve through the file's `use` map and then by
//!   longest-suffix match against the item index. `crate`/`self`/`super`
//!   prefixes are normalised against the calling file's module path.
//! - **Method calls** (`x.step(…)`) resolve by receiver-type heuristics:
//!   `self.m(…)` looks up the enclosing impl's type (falling back to the
//!   implemented trait's declarations), `Self::m(…)` likewise; any other
//!   receiver resolves only if exactly one workspace type owns a method of
//!   that name and the name is not on the common-`std`-method denylist.
//! - **Unresolved edges are recorded, not dropped** — each carries the call
//!   text and a reason (`ambiguous`, `unknown receiver`, `external`), so
//!   the reachability rules can report how much of the cone they actually
//!   see and fixtures can assert resolution behaviour.
//!
//! Reachability ([`CallGraph::reachable_from`]) walks resolved edges only:
//! an unresolved edge never extends a reachability cone. That makes the
//! pass *under*-approximate — the documented trade: no false-positive
//! diagnostics from spurious edges, at the price of known false-negative
//! classes (dyn-trait dispatch, function pointers, macro-generated calls;
//! see docs/ARCHITECTURE.md).

use std::collections::{BTreeMap, BTreeSet};

use crate::context::FileContext;
use crate::items::{FileItems, FnItem};
use crate::lexer::TokenKind;

/// One analyzed file, owned by the caller, referenced by the graph.
pub struct FileUnit {
    /// Workspace-relative path.
    pub path: String,
    /// File source.
    pub source: String,
    /// Token/region context.
    pub ctx: FileContext,
    /// Parsed items.
    pub items: FileItems,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning [`FileUnit`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
    /// Display key, e.g. `mpcgs::serve::JobQueue::run`.
    pub key: String,
}

/// Why an edge could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnresolvedReason {
    /// More than one workspace item matched.
    Ambiguous,
    /// A method call whose receiver type is unknown.
    UnknownReceiver,
    /// The path points outside the workspace (`std`, shims' std types, …).
    External,
    /// Nothing in the workspace matched.
    Unknown,
}

/// An edge the resolver declined to draw.
#[derive(Debug, Clone)]
pub struct UnresolvedEdge {
    /// The calling node.
    pub from: usize,
    /// The call as written (`x.step` / `serve::record_failure`).
    pub call: String,
    /// Why it stayed unresolved.
    pub reason: UnresolvedReason,
    /// 1-based line of the call site.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All function nodes, in (file, declaration) order.
    pub nodes: Vec<FnNode>,
    /// Resolved adjacency: `edges[n]` lists callee node ids, sorted+deduped.
    pub edges: Vec<Vec<usize>>,
    /// Every edge the resolver recorded but declined to draw.
    pub unresolved: Vec<UnresolvedEdge>,
}

/// Methods so common on `std` types that a bare `receiver.name(…)` must
/// never resolve to a workspace method of the same name.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_inner",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "log2",
    "map",
    "map_err",
    "max",
    "max_by",
    "min",
    "min_by",
    "next",
    "ok",
    "ok_or_else",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powi",
    "powf",
    "push",
    "push_str",
    "remove",
    "replace",
    "resize",
    "rev",
    "rotate_left",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_off",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "with_capacity",
    "write",
    "zip",
];

/// Path heads that always point outside the workspace.
const EXTERNAL_HEADS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "Vec",
    "String",
    "Box",
    "Option",
    "Some",
    "None",
    "Ok",
    "Err",
    "Result",
    "Default",
    "Clone",
    "Copy",
    "Iterator",
    "IntoIterator",
    "Ord",
    "PartialOrd",
    "f64",
    "f32",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
    "bool",
    "char",
    "str",
    "Arc",
    "Rc",
    "Mutex",
    "RefCell",
    "Cell",
    "PathBuf",
    "Path",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "VecDeque",
    "Instant",
    "Duration",
];

/// Rust keywords that look like call heads in `kw (…)` position.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "fn",
    "unsafe", "where", "impl", "dyn", "ref", "mut", "break", "continue", "await", "box",
];

#[derive(Debug)]
enum CallSite {
    /// `a::b::c(…)` — full path segments, last is the function name.
    Path { segments: Vec<String>, line: u32 },
    /// `recv.name(…)` — `self_recv` when the receiver is literally `self`.
    Method { name: String, self_recv: bool, line: u32 },
}

/// Build the call graph over every file.
pub fn build(files: &[FileUnit]) -> CallGraph {
    let mut nodes = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ii, f) in file.items.fns.iter().enumerate() {
            nodes.push(FnNode { file: fi, item: ii, key: fn_key(&file.items, f) });
        }
    }

    let index = Index::new(files, &nodes);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut unresolved = Vec::new();

    for (ni, node) in nodes.iter().enumerate() {
        let file = &files[node.file];
        let f = &file.items.fns[node.item];
        let Some((body_start, body_end)) = f.body else { continue };
        for call in extract_calls(file, body_start, body_end) {
            match index.resolve(&call, node, files) {
                Resolution::Node(target) => edges[ni].push(target),
                Resolution::External => {}
                Resolution::Unresolved(reason, text, line) => {
                    unresolved.push(UnresolvedEdge { from: ni, call: text, reason, line });
                }
            }
        }
        edges[ni].sort_unstable();
        edges[ni].dedup();
    }

    CallGraph { nodes, edges, unresolved }
}

/// Display key for a function: `crate::modules::Type::name`.
pub fn fn_key(items: &FileItems, f: &FnItem) -> String {
    let mut parts: Vec<&str> = vec![items.crate_name.as_str()];
    parts.extend(items.base_modules.iter().map(String::as_str));
    parts.extend(f.modules.iter().map(String::as_str));
    if let Some(ty) = &f.self_ty {
        parts.push(ty.as_str());
    }
    parts.push(f.name.as_str());
    parts.join("::")
}

impl CallGraph {
    /// Node ids whose function matches `(self_ty, name)`; a `None` type
    /// matches free functions only.
    pub fn find_method(&self, files: &[FileUnit], ty: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let f = &files[n.file].items.fns[n.item];
                f.name == name && f.self_ty.as_deref() == Some(ty)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Node ids of methods named `name` in impls of trait `trait_name`
    /// (plus the trait's own provided default, if any).
    pub fn find_trait_method(
        &self,
        files: &[FileUnit],
        trait_name: &str,
        name: &str,
    ) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let f = &files[n.file].items.fns[n.item];
                f.name == name && f.trait_name.as_deref() == Some(trait_name)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Node ids of free functions named `name`.
    pub fn find_free_fn(&self, files: &[FileUnit], name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let f = &files[n.file].items.fns[n.item];
                f.name == name && f.self_ty.is_none()
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over resolved edges from `roots`. Returns, for every reachable
    /// node, the id of the node it was first reached *through* (roots map
    /// to themselves) — enough to rebuild a root→node chain.
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(r) {
                slot.insert(r);
                queue.push(r);
            }
        }
        let mut at = 0;
        while at < queue.len() {
            let n = queue[at];
            at += 1;
            for &m in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push(m);
                }
            }
        }
        parent
    }

    /// The call chain `root → … → node`, as display keys.
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, node: usize) -> Vec<String> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain.into_iter().map(|n| self.nodes[n].key.clone()).collect()
    }
}

enum Resolution {
    Node(usize),
    External,
    Unresolved(UnresolvedReason, String, u32),
}

struct Index {
    /// Free functions by name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by (type, name) — includes trait-declared methods under the
    /// trait's name as the type.
    method_by_ty: BTreeMap<(String, String), Vec<usize>>,
    /// All method owners by method name (for last-resort unique lookup).
    owners_by_method: BTreeMap<String, BTreeSet<String>>,
    /// Full-path suffix index: every node under its reversed segments.
    all_by_name: BTreeMap<String, Vec<usize>>,
}

impl Index {
    fn new(files: &[FileUnit], nodes: &[FnNode]) -> Index {
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut method_by_ty: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut owners_by_method: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut all_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (ni, node) in nodes.iter().enumerate() {
            let f = &files[node.file].items.fns[node.item];
            all_by_name.entry(f.name.clone()).or_default().push(ni);
            match &f.self_ty {
                Some(ty) => {
                    method_by_ty.entry((ty.clone(), f.name.clone())).or_default().push(ni);
                    owners_by_method.entry(f.name.clone()).or_default().insert(ty.clone());
                }
                None => free_by_name.entry(f.name.clone()).or_default().push(ni),
            }
        }
        Index { free_by_name, method_by_ty, owners_by_method, all_by_name }
    }

    fn resolve(&self, call: &CallSite, from: &FnNode, files: &[FileUnit]) -> Resolution {
        match call {
            CallSite::Method { name, self_recv, line } => {
                self.resolve_method(name, *self_recv, from, files, *line)
            }
            CallSite::Path { segments, line } => self.resolve_path(segments, from, files, *line),
        }
    }

    fn resolve_method(
        &self,
        name: &str,
        self_recv: bool,
        from: &FnNode,
        files: &[FileUnit],
        line: u32,
    ) -> Resolution {
        let caller = &files[from.file].items.fns[from.item];
        if self_recv {
            if let Some(ty) = &caller.self_ty {
                if let Some(hits) = self.method_by_ty.get(&(ty.clone(), name.to_string())) {
                    if hits.len() == 1 {
                        return Resolution::Node(hits[0]);
                    }
                    // Prefer a same-file hit (inherent + trait impls of the
                    // same type usually share the file).
                    let same_file: Vec<usize> =
                        hits.iter().copied().filter(|&h| same_file(files, from, h)).collect();
                    if same_file.len() == 1 {
                        return Resolution::Node(same_file[0]);
                    }
                    return Resolution::Unresolved(
                        UnresolvedReason::Ambiguous,
                        format!("self.{name}"),
                        line,
                    );
                }
                // Fall back to the implemented trait's declared methods.
                if let Some(tr) = &caller.trait_name {
                    if let Some(hits) = self.method_by_ty.get(&(tr.clone(), name.to_string())) {
                        if hits.len() == 1 {
                            return Resolution::Node(hits[0]);
                        }
                    }
                }
            }
            return Resolution::Unresolved(UnresolvedReason::Unknown, format!("self.{name}"), line);
        }
        if STD_METHODS.contains(&name) {
            return Resolution::External;
        }
        match self.owners_by_method.get(name) {
            Some(owners) if owners.len() == 1 => {
                let ty = owners.iter().next().expect("non-empty owner set");
                let hits = &self.method_by_ty[&(ty.clone(), name.to_string())];
                if hits.len() == 1 {
                    Resolution::Node(hits[0])
                } else {
                    Resolution::Unresolved(UnresolvedReason::Ambiguous, format!("_.{name}"), line)
                }
            }
            Some(_) => {
                Resolution::Unresolved(UnresolvedReason::Ambiguous, format!("_.{name}"), line)
            }
            None => {
                Resolution::Unresolved(UnresolvedReason::UnknownReceiver, format!("_.{name}"), line)
            }
        }
    }

    fn resolve_path(
        &self,
        segments: &[String],
        from: &FnNode,
        files: &[FileUnit],
        line: u32,
    ) -> Resolution {
        let file = &files[from.file];
        let caller = &file.items.fns[from.item];
        let display = segments.join("::");

        // Normalise the head: `Self` → enclosing type; expand through the
        // file's use map; resolve `crate`/`self`/`super` against the
        // calling module.
        let mut segs: Vec<String> = segments.to_vec();
        if segs[0] == "Self" {
            match &caller.self_ty {
                Some(ty) => segs[0] = ty.clone(),
                None => {
                    return Resolution::Unresolved(UnresolvedReason::Unknown, display, line);
                }
            }
        }
        if let Some(u) =
            file.items.uses.iter().find(|u| !u.glob && !u.alias.is_empty() && u.alias == segs[0])
        {
            let mut expanded = u.path.clone();
            expanded.extend(segs[1..].iter().cloned());
            segs = expanded;
        }
        while segs.len() > 1 && matches!(segs[0].as_str(), "crate" | "self" | "super") {
            segs.remove(0);
        }
        if segs.len() > 1 && EXTERNAL_HEADS.contains(&segs[0].as_str()) {
            return Resolution::External;
        }

        let name = segs.last().expect("non-empty path").clone();

        // Single-segment call: a free function, same module preferred.
        if segs.len() == 1 {
            return self.pick_free(&name, from, files, line, &display);
        }

        // `Type::method` (or `Trait::method`): second-to-last segment names
        // a type the workspace knows.
        let penult = &segs[segs.len() - 2];
        if let Some(hits) = self.method_by_ty.get(&(penult.clone(), name.clone())) {
            if hits.len() == 1 {
                return Resolution::Node(hits[0]);
            }
            let same_crate: Vec<usize> = hits
                .iter()
                .copied()
                .filter(|&h| {
                    files[files_node(files, h).0].items.crate_name == file.items.crate_name
                })
                .collect();
            if same_crate.len() == 1 {
                return Resolution::Node(same_crate[0]);
            }
            return Resolution::Unresolved(UnresolvedReason::Ambiguous, display, line);
        }

        // Module-qualified free function: match candidates whose full
        // module path ends with the written qualifier.
        if let Some(cands) = self.free_by_name.get(&name) {
            let qual: Vec<&String> = segs[..segs.len() - 1].iter().collect();
            let matching: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let (cf, cfn) = files_node(files, c);
                    let items = &files[cf].items;
                    let f = &items.fns[cfn];
                    let mut full: Vec<&String> = Vec::new();
                    full.push(&items.crate_name);
                    full.extend(items.base_modules.iter());
                    full.extend(f.modules.iter());
                    full.len() >= qual.len() && full[full.len() - qual.len()..] == qual[..]
                })
                .collect();
            match matching.len() {
                1 => return Resolution::Node(matching[0]),
                0 => {}
                _ => return Resolution::Unresolved(UnresolvedReason::Ambiguous, display, line),
            }
        }

        if self.all_by_name.contains_key(&name) {
            Resolution::Unresolved(UnresolvedReason::Ambiguous, display, line)
        } else if EXTERNAL_HEADS.contains(&segs[0].as_str()) {
            Resolution::External
        } else {
            Resolution::Unresolved(UnresolvedReason::Unknown, display, line)
        }
    }

    fn pick_free(
        &self,
        name: &str,
        from: &FnNode,
        files: &[FileUnit],
        line: u32,
        display: &str,
    ) -> Resolution {
        let Some(cands) = self.free_by_name.get(name) else {
            return Resolution::Unresolved(UnresolvedReason::Unknown, display.to_string(), line);
        };
        if cands.len() == 1 {
            return Resolution::Node(cands[0]);
        }
        // Prefer a candidate in the same file, then the same crate.
        let same_file: Vec<usize> =
            cands.iter().copied().filter(|&c| same_file(files, from, c)).collect();
        if same_file.len() == 1 {
            return Resolution::Node(same_file[0]);
        }
        let crate_name = &files[from.file].items.crate_name;
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| &files[files_node(files, c).0].items.crate_name == crate_name)
            .collect();
        if same_crate.len() == 1 {
            return Resolution::Node(same_crate[0]);
        }
        Resolution::Unresolved(UnresolvedReason::Ambiguous, display.to_string(), line)
    }
}

/// Map a node id back to `(file index, fn index)` — nodes are dense, in
/// (file, fn) order, so a linear scan per call would be wasteful; instead
/// thread the node table through. (Kept as a free fn so `Index` closures
/// stay borrow-checker friendly.)
fn files_node(files: &[FileUnit], node: usize) -> (usize, usize) {
    let mut remaining = node;
    for (fi, file) in files.iter().enumerate() {
        let n = file.items.fns.len();
        if remaining < n {
            return (fi, remaining);
        }
        remaining -= n;
    }
    panic!("node id out of range");
}

fn same_file(files: &[FileUnit], from: &FnNode, node: usize) -> bool {
    files_node(files, node).0 == from.file
}

/// Scan a body's significant tokens for call sites.
fn extract_calls(file: &FileUnit, body_start: usize, body_end: usize) -> Vec<CallSite> {
    let ctx = &file.ctx;
    let src = file.source.as_str();
    let text = |si: usize| ctx.tokens[ctx.sig[si]].text(src);
    let kind = |si: usize| ctx.tokens[ctx.sig[si]].kind;
    let is_ident = |si: usize| matches!(kind(si), TokenKind::Ident | TokenKind::RawIdent);
    let name_of = |si: usize| {
        let t = text(si);
        t.strip_prefix("r#").unwrap_or(t).to_string()
    };
    let line_of = |si: usize| ctx.tokens[ctx.sig[si]].line;

    let mut calls = Vec::new();
    for si in body_start..=body_end.min(ctx.sig.len().saturating_sub(1)) {
        if text(si) != "(" || si == 0 {
            continue;
        }
        // `name (` — walk the path backwards over `::` pairs, or spot a
        // turbofish `name :: < … > (` by walking back over the generic
        // group first.
        let mut head = si;
        if text(si - 1) == ">" {
            // Possible turbofish: find the matching `<` backwards.
            let mut depth = 0i64;
            let mut j = si - 1;
            loop {
                match text(j) {
                    ">" => depth += 1,
                    "<" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 || j + 64 < si {
                    // Not a plausible turbofish.
                    j = 0;
                    break;
                }
                j -= 1;
            }
            if j >= 2 && text(j - 1) == ":" && text(j - 2) == ":" && j >= 3 && is_ident(j - 3) {
                head = j - 2; // position of the second `:`; ident is at j-3
                              // Fall through with the ident at `head - 1`.
            } else {
                continue;
            }
        }
        let ident_at = head - 1;
        if !is_ident(ident_at) {
            continue;
        }
        let base = name_of(ident_at);
        if CALL_KEYWORDS.contains(&base.as_str()) {
            continue;
        }
        // Macro invocation `name ! (`: not a function call.
        if ident_at >= 1 && text(ident_at - 1) == "!" {
            continue;
        }
        // Walk back over `:: ident` pairs to collect the full path.
        let mut segments = vec![base];
        let mut cursor = ident_at;
        while cursor >= 3
            && text(cursor - 1) == ":"
            && text(cursor - 2) == ":"
            && is_ident(cursor - 3)
        {
            segments.push(name_of(cursor - 3));
            cursor -= 3;
        }
        segments.reverse();
        // What precedes the path start decides the call form.
        if cursor >= 1 && text(cursor - 1) == "." {
            // Method call; only single-segment method names are real Rust
            // (`x.a::b(…)` does not parse), so bail on longer paths.
            if segments.len() == 1 {
                let self_recv = cursor >= 2 && text(cursor - 2) == "self"
                    // `self.f(…)` but not `x.self.f` (not real Rust) nor
                    // `other_self.f` — token equality is exact.
                    && (cursor < 3 || text(cursor - 3) != ".");
                calls.push(CallSite::Method {
                    name: segments.pop().expect("single segment"),
                    self_recv,
                    line: line_of(ident_at),
                });
            }
            continue;
        }
        // Declaration heads (`fn name(`) and attribute-ish positions.
        if cursor >= 1 && matches!(text(cursor - 1), "fn" | "#" | "[") {
            continue;
        }
        calls.push(CallSite::Path { segments, line: line_of(ident_at) });
    }
    calls
}

/// Build [`FileUnit`]s from `(path, source)` pairs — the seam both
/// [`crate::analyze_files`] and the unit tests share.
pub fn units(files: Vec<(String, String)>) -> Vec<FileUnit> {
    files
        .into_iter()
        .map(|(path, source)| {
            let ctx = FileContext::new(&source);
            let items = crate::items::parse_items(&path, &source, &ctx);
            FileUnit { path, source, ctx, items }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> (Vec<FileUnit>, CallGraph) {
        let units = units(files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect());
        let graph = build(&units);
        (units, graph)
    }

    fn key(graph: &CallGraph, id: usize) -> &str {
        &graph.nodes[id].key
    }

    fn edge_exists(graph: &CallGraph, from_key: &str, to_key: &str) -> bool {
        let from = graph.nodes.iter().position(|n| n.key == from_key).unwrap();
        graph.edges[from].iter().any(|&t| key(graph, t) == to_key)
    }

    #[test]
    fn diamond_reachability_with_chains() {
        let (_, graph) = graph_of(&[(
            "crates/mpcgs/src/session.rs",
            "pub struct SessionRunner;\nimpl SessionRunner {\n    pub fn step(&mut self) { left(); right(); }\n}\nfn left() { sink(); }\nfn right() { sink(); }\nfn sink() {}\nfn not_reached() { sink(); }\n",
        )]);
        assert!(edge_exists(&graph, "mpcgs::session::SessionRunner::step", "mpcgs::session::left"));
        let roots: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.key.ends_with("SessionRunner::step"))
            .map(|(i, _)| i)
            .collect();
        let parents = graph.reachable_from(&roots);
        let sink = graph.nodes.iter().position(|n| n.key.ends_with("::sink")).unwrap();
        assert!(parents.contains_key(&sink));
        let not_reached = graph.nodes.iter().position(|n| n.key.ends_with("not_reached")).unwrap();
        assert!(!parents.contains_key(&not_reached));
        // The chain runs root → intermediate → sink, deterministically
        // through `left` (BFS order follows declaration order).
        let chain = graph.chain(&parents, sink);
        assert_eq!(
            chain,
            ["mpcgs::session::SessionRunner::step", "mpcgs::session::left", "mpcgs::session::sink"]
        );
    }

    #[test]
    fn cross_crate_calls_resolve_through_use() {
        let (_, graph) = graph_of(&[
            (
                "crates/mpcgs/src/serve.rs",
                "use phylo::likelihood::score_tree;\npub fn drain() { score_tree(); phylo::likelihood::rescore(); }\n",
            ),
            (
                "crates/phylo/src/likelihood.rs",
                "pub fn score_tree() {}\npub fn rescore() {}\n",
            ),
        ]);
        assert!(edge_exists(&graph, "mpcgs::serve::drain", "phylo::likelihood::score_tree"));
        assert!(edge_exists(&graph, "mpcgs::serve::drain", "phylo::likelihood::rescore"));
    }

    #[test]
    fn trait_method_calls_resolve_via_impl_and_self() {
        let (_, graph) = graph_of(&[(
            "crates/lamarc/src/sampler.rs",
            "pub trait GenealogySampler { fn step(&mut self); }\npub struct LamarcSampler;\nimpl GenealogySampler for LamarcSampler {\n    fn step(&mut self) { self.propose(); }\n}\nimpl LamarcSampler {\n    fn propose(&self) {}\n}\n",
        )]);
        assert!(edge_exists(
            &graph,
            "lamarc::sampler::LamarcSampler::step",
            "lamarc::sampler::LamarcSampler::propose"
        ));
    }

    #[test]
    fn unresolved_edges_are_recorded_not_dropped() {
        let (_, graph) = graph_of(&[(
            "crates/mpcgs/src/ensemble.rs",
            "pub struct A;\npub struct B;\nimpl A { pub fn go(&self) {} }\nimpl B { pub fn go(&self) {} }\npub fn driver(x: &A) { x.go(); missing_fn(); }\n",
        )]);
        // `x.go()` is ambiguous between A::go and B::go; `missing_fn` is
        // unknown. Both are recorded.
        assert!(graph
            .unresolved
            .iter()
            .any(|u| u.call == "_.go" && u.reason == UnresolvedReason::Ambiguous));
        assert!(graph
            .unresolved
            .iter()
            .any(|u| u.call == "missing_fn" && u.reason == UnresolvedReason::Unknown));
        // And neither extended the graph.
        let driver = graph.nodes.iter().position(|n| n.key.ends_with("driver")).unwrap();
        assert!(graph.edges[driver].is_empty());
    }

    #[test]
    fn std_method_names_never_resolve_into_the_workspace() {
        let (_, graph) = graph_of(&[(
            "crates/phylo/src/tables.rs",
            "pub struct NodeTable;\nimpl NodeTable { pub fn push(&mut self) {} }\npub fn fill(v: &mut Vec<u32>) { v.push(1); }\n",
        )]);
        let fill = graph.nodes.iter().position(|n| n.key.ends_with("::fill")).unwrap();
        assert!(graph.edges[fill].is_empty(), "Vec::push must not resolve to NodeTable::push");
    }

    #[test]
    fn type_qualified_and_self_qualified_calls_resolve() {
        let (_, graph) = graph_of(&[(
            "crates/mcmc/src/chain.rs",
            "pub struct Chain;\nimpl Chain {\n    pub fn new() -> Chain { Chain }\n    pub fn spawn() { Self::new(); }\n}\npub fn make() { Chain::new(); }\n",
        )]);
        assert!(edge_exists(&graph, "mcmc::chain::Chain::spawn", "mcmc::chain::Chain::new"));
        assert!(edge_exists(&graph, "mcmc::chain::make", "mcmc::chain::Chain::new"));
    }

    #[test]
    fn turbofish_calls_resolve() {
        let (_, graph) = graph_of(&[(
            "crates/codec/src/lib.rs",
            "pub fn parse_num<T>() {}\npub fn driver() { parse_num::<f64>(); }\n",
        )]);
        assert!(edge_exists(&graph, "codec::driver", "codec::parse_num"));
    }
}
