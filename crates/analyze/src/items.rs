//! The item layer: from one file's token stream to an item tree.
//!
//! [`parse_items`] walks the significant tokens of a file and extracts the
//! declarations the workspace-level passes need — functions (with their
//! enclosing impl/trait context and body span), `use` declarations, module
//! declarations, and every named item with its visibility. It is a
//! *declaration* parser, not an expression parser: function bodies are
//! skipped wholesale during item scanning (the call-graph layer re-scans
//! them token-wise), so `match` arms, struct expressions, and other
//! brace-heavy expression syntax can never confuse it.
//!
//! Spans stay `concat`-faithful: every recorded position is a token from
//! the lossless lexer, so a diagnostic raised through an item points at
//! real source bytes.

use crate::context::FileContext;
use crate::lexer::TokenKind;

/// Item visibility, as written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(self)`, or `pub(in path)`.
    Restricted,
}

impl Visibility {
    /// Whether this is unrestricted `pub`.
    pub fn is_pub(&self) -> bool {
        matches!(self, Visibility::Pub)
    }
}

/// One function (free, inherent method, trait method, or trait default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (raw-ident prefix stripped: `r#type` → `type`).
    pub name: String,
    /// Inline-module path from the file's base module to the function.
    pub modules: Vec<String>,
    /// The enclosing impl's self type (`impl Kernel` → `Kernel`;
    /// `impl Display for Kernel` → `Kernel`) or the enclosing trait's name
    /// for trait-declared methods.
    pub self_ty: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` methods, or
    /// the trait's own name for methods declared inside `trait Trait {}`.
    pub trait_name: Option<String>,
    /// Visibility as written.
    pub vis: Visibility,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Significant-token index range of the body, `[open_brace, close_brace]`
    /// inclusive; `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the function lies inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
}

/// One `use` binding after expanding nested `{…}` groups: the name it
/// brings into scope and the full path it stands for.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The bound name (`as` alias if present, else the last path segment).
    pub alias: String,
    /// The full path segments (`use a::b::c as d` → `["a","b","c"]`).
    pub path: Vec<String>,
    /// Whether this is a glob import (`use a::b::*` → path `["a","b"]`).
    pub glob: bool,
    /// Visibility (re-exports are `pub use`).
    pub vis: Visibility,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// Any named item, for the API-surface listing and module-visibility map.
#[derive(Debug, Clone)]
pub struct NamedItem {
    /// `fn`, `struct`, `enum`, `trait`, `type`, `const`, `static`, `mod`,
    /// `union`, or `macro`.
    pub kind: &'static str,
    /// The item's name.
    pub name: String,
    /// Inline-module path from the file's base module to the item.
    pub modules: Vec<String>,
    /// The enclosing impl/trait type for methods and associated items.
    pub self_ty: Option<String>,
    /// The trait being implemented, if the enclosing impl is a trait impl.
    pub trait_name: Option<String>,
    /// Visibility as written.
    pub vis: Visibility,
    /// 1-based line.
    pub line: u32,
    /// Whether the item lies inside a test region.
    pub is_test: bool,
}

/// Everything the workspace passes need from one file.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// Crate name inferred from the workspace-relative path (`-` → `_`).
    pub crate_name: String,
    /// Module path inferred from the file's location inside `src/`.
    pub base_modules: Vec<String>,
    /// All functions with bodies or trait declarations.
    pub fns: Vec<FnItem>,
    /// All `use` bindings.
    pub uses: Vec<UseDecl>,
    /// All named items (including the functions again, as `fn` entries).
    pub items: Vec<NamedItem>,
}

/// Infer `(crate name, base module path)` from a workspace-relative path.
///
/// `crates/phylo/src/tree/builder.rs` → `("phylo", ["tree", "builder"])`;
/// `mod.rs`, `lib.rs`, and `main.rs` name their parent module; files under
/// `tests/`, `benches/`, `examples/`, and `src/bin/` are their own target
/// crates named after the file stem.
pub fn crate_and_modules(path: &str) -> (String, Vec<String>) {
    let comps: Vec<&str> = path.split('/').collect();
    let norm = |s: &str| s.replace('-', "_");
    // Locate the `src` directory and the crate it belongs to.
    if let Some(src_at) = comps.iter().position(|c| *c == "src") {
        let crate_name =
            if src_at == 0 { "mpcgs_repro".to_string() } else { norm(comps[src_at - 1]) };
        let rest = &comps[src_at + 1..];
        if rest.first() == Some(&"bin") {
            let stem = rest.last().unwrap_or(&"").trim_end_matches(".rs");
            return (format!("{crate_name}__bin_{}", norm(stem)), Vec::new());
        }
        let mut modules: Vec<String> = Vec::new();
        for (i, comp) in rest.iter().enumerate() {
            if i + 1 == rest.len() {
                let stem = comp.trim_end_matches(".rs");
                if !matches!(stem, "lib" | "main" | "mod") {
                    modules.push(norm(stem));
                }
            } else {
                modules.push(norm(comp));
            }
        }
        return (crate_name, modules);
    }
    // Integration tests / benches / examples: file-stem crates.
    let stem = comps.last().unwrap_or(&"").trim_end_matches(".rs");
    if let Some(kind_at) = comps.iter().position(|c| matches!(*c, "tests" | "benches" | "examples"))
    {
        let mut modules: Vec<String> = Vec::new();
        for comp in &comps[kind_at + 1..comps.len().saturating_sub(1)] {
            modules.push(norm(comp));
        }
        let last = comps.last().unwrap_or(&"").trim_end_matches(".rs");
        if last == "mod" {
            let name = modules.pop().unwrap_or_else(|| norm(stem));
            return (format!("tests__{name}"), modules);
        }
        return (format!("tests__{}", norm(stem)), modules);
    }
    (norm(stem), Vec::new())
}

/// Parse the file's item tree. `path` is the workspace-relative path used
/// for crate/module inference.
pub fn parse_items(path: &str, source: &str, ctx: &FileContext) -> FileItems {
    let (crate_name, base_modules) = crate_and_modules(path);
    let mut parser = ItemParser {
        source,
        ctx,
        out: FileItems {
            crate_name,
            base_modules,
            fns: Vec::new(),
            uses: Vec::new(),
            items: Vec::new(),
        },
        scopes: Vec::new(),
        si: 0,
    };
    parser.run();
    parser.out
}

#[derive(Debug, Clone)]
enum ScopeKind {
    Mod(String),
    Impl {
        self_ty: String,
        trait_name: Option<String>,
    },
    Trait(String),
    /// Any other brace-delimited region entered during item scanning
    /// (struct bodies that slipped through, extern blocks, …).
    Other,
}

struct Scope {
    kind: ScopeKind,
}

struct ItemParser<'s> {
    source: &'s str,
    ctx: &'s FileContext,
    out: FileItems,
    scopes: Vec<Scope>,
    si: usize,
}

impl<'s> ItemParser<'s> {
    fn text(&self, si: usize) -> &'s str {
        self.ctx.tokens[self.ctx.sig[si]].text(self.source)
    }

    fn kind(&self, si: usize) -> TokenKind {
        self.ctx.tokens[self.ctx.sig[si]].kind
    }

    fn len(&self) -> usize {
        self.ctx.sig.len()
    }

    fn line_col(&self, si: usize) -> (u32, u32) {
        let t = &self.ctx.tokens[self.ctx.sig[si]];
        (t.line, t.col)
    }

    fn byte(&self, si: usize) -> usize {
        self.ctx.tokens[self.ctx.sig[si]].start
    }

    /// Current inline-module path and enclosing impl/trait context.
    fn context(&self) -> (Vec<String>, Option<String>, Option<String>) {
        let mut modules = Vec::new();
        let mut self_ty = None;
        let mut trait_name = None;
        for scope in &self.scopes {
            match &scope.kind {
                ScopeKind::Mod(name) => modules.push(name.clone()),
                ScopeKind::Impl { self_ty: ty, trait_name: tr } => {
                    self_ty = Some(ty.clone());
                    trait_name = tr.clone();
                }
                ScopeKind::Trait(name) => {
                    self_ty = Some(name.clone());
                    trait_name = Some(name.clone());
                }
                ScopeKind::Other => {}
            }
        }
        (modules, self_ty, trait_name)
    }

    /// Strip a raw-ident prefix.
    fn ident_name(&self, si: usize) -> String {
        let text = self.text(si);
        text.strip_prefix("r#").unwrap_or(text).to_string()
    }

    /// Skip a balanced delimiter group starting at `si` (which must hold the
    /// opener), returning the index just past the closer.
    fn skip_group(&self, si: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i64;
        let mut i = si;
        while i < self.len() {
            let t = self.text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.len()
    }

    /// Find the significant index of the `}` matching the `{` at `si`.
    fn find_close(&self, si: usize) -> usize {
        let mut depth = 0i64;
        let mut i = si;
        while i < self.len() {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.len().saturating_sub(1)
    }

    /// Skip an angle-bracket group `<…>` starting at `si`; `>` may arrive
    /// as `>>`-style single-char puncts already, so plain depth counting
    /// works. `->` cannot appear inside generics at depth > 0 without
    /// parens, and the lexer splits it into `-` and `>`, so treat a `>`
    /// preceded by `-` as not closing.
    fn skip_angles(&self, si: usize) -> usize {
        let mut depth = 0i64;
        let mut i = si;
        while i < self.len() {
            match self.text(i) {
                "<" => depth += 1,
                ">" => {
                    if i > 0 && self.text(i - 1) == "-" {
                        // `->` return-type arrow.
                    } else {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
                "(" => i = self.skip_group(i, "(", ")") - 1,
                _ => {}
            }
            i += 1;
        }
        self.len()
    }

    fn run(&mut self) {
        let mut pending_vis = Visibility::Private;
        while self.si < self.len() {
            let text = self.text(self.si);
            match text {
                "#" => {
                    // Attribute: `#[…]` or `#![…]` — skip the group.
                    let mut j = self.si + 1;
                    if j < self.len() && self.text(j) == "!" {
                        j += 1;
                    }
                    if j < self.len() && self.text(j) == "[" {
                        self.si = self.skip_group(j, "[", "]");
                    } else {
                        self.si += 1;
                    }
                }
                "pub" => {
                    pending_vis = Visibility::Pub;
                    self.si += 1;
                    if self.si < self.len() && self.text(self.si) == "(" {
                        pending_vis = Visibility::Restricted;
                        self.si = self.skip_group(self.si, "(", ")");
                    }
                }
                "use" => {
                    self.parse_use(std::mem::replace(&mut pending_vis, Visibility::Private));
                }
                "mod" => {
                    self.parse_mod(std::mem::replace(&mut pending_vis, Visibility::Private));
                }
                "impl" => {
                    pending_vis = Visibility::Private;
                    self.parse_impl();
                }
                "trait" => {
                    self.parse_trait(std::mem::replace(&mut pending_vis, Visibility::Private));
                }
                "fn" => {
                    self.parse_fn(std::mem::replace(&mut pending_vis, Visibility::Private));
                }
                "struct" | "enum" | "union" => {
                    let kind: &'static str = match text {
                        "struct" => "struct",
                        "enum" => "enum",
                        _ => "union",
                    };
                    self.parse_type_like(
                        kind,
                        std::mem::replace(&mut pending_vis, Visibility::Private),
                    );
                }
                "type" | "const" | "static" => {
                    let kind: &'static str = match text {
                        "type" => "type",
                        "const" => "const",
                        _ => "static",
                    };
                    self.parse_terminated(
                        kind,
                        std::mem::replace(&mut pending_vis, Visibility::Private),
                    );
                }
                "macro_rules" => {
                    self.parse_macro_rules();
                    pending_vis = Visibility::Private;
                }
                "{" => {
                    // A brace the item grammar didn't claim: enter it as an
                    // anonymous scope so the matching `}` pops cleanly.
                    self.scopes.push(Scope { kind: ScopeKind::Other });
                    self.si += 1;
                    pending_vis = Visibility::Private;
                }
                "}" => {
                    self.scopes.pop();
                    self.si += 1;
                    pending_vis = Visibility::Private;
                }
                _ => {
                    pending_vis = Visibility::Private;
                    self.si += 1;
                }
            }
        }
    }

    fn record_item(&mut self, kind: &'static str, name: String, vis: Visibility, at: usize) {
        let (modules, self_ty, trait_name) = self.context();
        let (line, col) = self.line_col(at);
        let _ = col;
        self.out.items.push(NamedItem {
            kind,
            name,
            modules,
            self_ty,
            trait_name,
            vis,
            line,
            is_test: self.ctx.in_test_region(self.byte(at)),
        });
    }

    fn parse_use(&mut self, vis: Visibility) {
        let (line, _) = self.line_col(self.si);
        let start = self.si + 1;
        // Find the terminating `;`.
        let mut end = start;
        while end < self.len() && self.text(end) != ";" {
            end += 1;
        }
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(start, end, &mut prefix, &vis, line);
        self.si = end + 1;
    }

    /// Recursively expand a use tree in `[from, to)` under `prefix`.
    fn parse_use_tree(
        &mut self,
        from: usize,
        to: usize,
        prefix: &mut Vec<String>,
        vis: &Visibility,
        line: u32,
    ) {
        let mut segs: Vec<String> = Vec::new();
        let mut i = from;
        while i < to {
            let t = self.text(i);
            if self.kind(i) == TokenKind::Ident || self.kind(i) == TokenKind::RawIdent {
                if t == "as" {
                    // `path as alias`
                    if i + 1 < to {
                        let alias = self.ident_name(i + 1);
                        let mut path = prefix.clone();
                        path.extend(segs.iter().cloned());
                        self.out.uses.push(UseDecl {
                            alias,
                            path,
                            glob: false,
                            vis: vis.clone(),
                            line,
                        });
                    }
                    return;
                }
                segs.push(self.ident_name(i));
                i += 1;
            } else if t == "*" {
                let mut path = prefix.clone();
                path.extend(segs.iter().cloned());
                self.out.uses.push(UseDecl {
                    alias: String::new(),
                    path,
                    glob: true,
                    vis: vis.clone(),
                    line,
                });
                return;
            } else if t == "{" {
                let close = self.skip_group(i, "{", "}") - 1;
                let base_len = prefix.len();
                prefix.extend(segs.iter().cloned());
                // Split the group body on top-level commas.
                let mut part_start = i + 1;
                let mut j = i + 1;
                while j <= close {
                    let tj = self.text(j);
                    if tj == "{" {
                        j = self.skip_group(j, "{", "}");
                        continue;
                    }
                    if (tj == "," && depth_zero()) || j == close {
                        if part_start < j {
                            self.parse_use_tree(part_start, j, prefix, vis, line);
                        }
                        part_start = j + 1;
                    }
                    j += 1;
                }
                prefix.truncate(base_len);
                return;

                // Commas inside nested groups were skipped by the recursive
                // `skip_group` above, so every comma seen here is top-level.
                fn depth_zero() -> bool {
                    true
                }
            } else {
                i += 1;
            }
        }
        if !segs.is_empty() {
            let alias = segs.last().cloned().unwrap_or_default();
            let mut path = prefix.clone();
            path.extend(segs.iter().cloned());
            // `use a::b::self;` binds `b` — the `self` segment names the
            // parent.
            let (alias, path) = if alias == "self" {
                let mut p = path.clone();
                p.pop();
                (p.last().cloned().unwrap_or_default(), p)
            } else {
                (alias, path)
            };
            self.out.uses.push(UseDecl { alias, path, glob: false, vis: vis.clone(), line });
        }
    }

    fn parse_mod(&mut self, vis: Visibility) {
        let at = self.si;
        self.si += 1;
        if self.si >= self.len()
            || !matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
        {
            return;
        }
        let name = self.ident_name(self.si);
        self.si += 1;
        self.record_item("mod", name.clone(), vis, at);
        if self.si < self.len() && self.text(self.si) == "{" {
            self.scopes.push(Scope { kind: ScopeKind::Mod(name) });
            self.si += 1;
        } else if self.si < self.len() && self.text(self.si) == ";" {
            self.si += 1;
        }
    }

    fn parse_impl(&mut self) {
        // `impl` [<generics>] TypePath [`for` TypePath] [where …] `{`
        self.si += 1;
        if self.si < self.len() && self.text(self.si) == "<" {
            self.si = self.skip_angles(self.si);
        }
        let mut first_path_last: Option<String> = None;
        let mut second_path_last: Option<String> = None;
        let mut saw_for = false;
        while self.si < self.len() {
            let t = self.text(self.si);
            match t {
                "{" => break,
                ";" => {
                    // `impl Trait for Type;` (rare) — nothing to enter.
                    self.si += 1;
                    return;
                }
                "for" => {
                    saw_for = true;
                    self.si += 1;
                }
                "where" => {
                    // Skip the where clause to the `{`.
                    while self.si < self.len() && self.text(self.si) != "{" {
                        if self.text(self.si) == "<" {
                            self.si = self.skip_angles(self.si);
                        } else {
                            self.si += 1;
                        }
                    }
                }
                "<" => {
                    self.si = self.skip_angles(self.si);
                }
                "(" => {
                    self.si = self.skip_group(self.si, "(", ")");
                }
                "[" => {
                    self.si = self.skip_group(self.si, "[", "]");
                }
                _ => {
                    if matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
                        && !matches!(t, "dyn" | "mut" | "const" | "unsafe")
                    {
                        let name = self.ident_name(self.si);
                        if saw_for {
                            second_path_last = Some(name);
                        } else {
                            first_path_last = Some(name);
                        }
                    }
                    self.si += 1;
                }
            }
        }
        let (self_ty, trait_name) = if saw_for {
            (second_path_last.unwrap_or_default(), first_path_last)
        } else {
            (first_path_last.unwrap_or_default(), None)
        };
        if self.si < self.len() && self.text(self.si) == "{" {
            self.scopes.push(Scope { kind: ScopeKind::Impl { self_ty, trait_name } });
            self.si += 1;
        }
    }

    fn parse_trait(&mut self, vis: Visibility) {
        let at = self.si;
        self.si += 1;
        if self.si >= self.len()
            || !matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
        {
            return;
        }
        let name = self.ident_name(self.si);
        self.si += 1;
        self.record_item("trait", name.clone(), vis, at);
        // Skip generics / supertrait bounds / where clause to the body.
        while self.si < self.len() && !matches!(self.text(self.si), "{" | ";") {
            if self.text(self.si) == "<" {
                self.si = self.skip_angles(self.si);
            } else {
                self.si += 1;
            }
        }
        if self.si < self.len() && self.text(self.si) == "{" {
            self.scopes.push(Scope { kind: ScopeKind::Trait(name) });
            self.si += 1;
        } else if self.si < self.len() {
            self.si += 1;
        }
    }

    fn parse_fn(&mut self, vis: Visibility) {
        let at = self.si;
        self.si += 1;
        if self.si >= self.len()
            || !matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
        {
            return;
        }
        let name = self.ident_name(self.si);
        self.si += 1;
        // Generics.
        if self.si < self.len() && self.text(self.si) == "<" {
            self.si = self.skip_angles(self.si);
        }
        // Parameters.
        if self.si < self.len() && self.text(self.si) == "(" {
            self.si = self.skip_group(self.si, "(", ")");
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        while self.si < self.len() && !matches!(self.text(self.si), "{" | ";") {
            if self.text(self.si) == "<" {
                self.si = self.skip_angles(self.si);
            } else if self.text(self.si) == "(" {
                self.si = self.skip_group(self.si, "(", ")");
            } else if self.text(self.si) == "[" {
                self.si = self.skip_group(self.si, "[", "]");
            } else {
                self.si += 1;
            }
        }
        let body = if self.si < self.len() && self.text(self.si) == "{" {
            let close = self.find_close(self.si);
            let range = (self.si, close);
            // Items are not scanned inside bodies: jump past it. Nested
            // `fn` declarations inside bodies are a documented false
            // negative of the item layer (their calls are attributed to
            // the enclosing function by the graph layer).
            self.si = close + 1;
            Some(range)
        } else {
            self.si = (self.si + 1).min(self.len());
            None
        };
        let (modules, self_ty, trait_name) = self.context();
        let (line, col) = self.line_col(at);
        let is_test = self.ctx.in_test_region(self.byte(at));
        self.out.fns.push(FnItem {
            name: name.clone(),
            modules: modules.clone(),
            self_ty: self_ty.clone(),
            trait_name: trait_name.clone(),
            vis: vis.clone(),
            line,
            col,
            body,
            is_test,
        });
        self.out.items.push(NamedItem {
            kind: "fn",
            name,
            modules,
            self_ty,
            trait_name,
            vis,
            line,
            is_test,
        });
    }

    fn parse_type_like(&mut self, kind: &'static str, vis: Visibility) {
        let at = self.si;
        self.si += 1;
        if self.si >= self.len()
            || !matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
        {
            return;
        }
        let name = self.ident_name(self.si);
        self.si += 1;
        self.record_item(kind, name, vis, at);
        // Skip to the end of the declaration: `;` for unit/tuple structs,
        // or a balanced `{…}` body for field structs/enums/unions.
        while self.si < self.len() {
            match self.text(self.si) {
                ";" => {
                    self.si += 1;
                    return;
                }
                "{" => {
                    self.si = self.skip_group(self.si, "{", "}");
                    return;
                }
                "<" => self.si = self.skip_angles(self.si),
                "(" => {
                    self.si = self.skip_group(self.si, "(", ")");
                    // A tuple struct still ends with `;`.
                }
                _ => self.si += 1,
            }
        }
    }

    /// `type X = …;`, `const X: T = …;`, `static X: T = …;` — also covers
    /// `const fn` (by falling through to `fn` handling) and `const _`.
    fn parse_terminated(&mut self, kind: &'static str, vis: Visibility) {
        let at = self.si;
        self.si += 1;
        if self.si < self.len() && self.text(self.si) == "fn" {
            // `const fn name…` / `static` never precedes fn; re-dispatch.
            self.parse_fn(vis);
            return;
        }
        if self.si < self.len() && self.text(self.si) == "mut" {
            self.si += 1;
        }
        if self.si >= self.len()
            || !matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
        {
            return;
        }
        let name = self.ident_name(self.si);
        // `impl Trait for Type { type Assoc = …; }` associated items and
        // module-level aliases both end at `;`; expression braces cannot
        // appear without `=` first, and we skip everything to `;` anyway.
        self.si += 1;
        self.record_item(kind, name, vis, at);
        while self.si < self.len() && self.text(self.si) != ";" {
            if self.text(self.si) == "{" {
                self.si = self.skip_group(self.si, "{", "}");
            } else {
                self.si += 1;
            }
        }
        self.si += 1;
    }

    fn parse_macro_rules(&mut self) {
        let at = self.si;
        self.si += 1; // `!`
        if self.si < self.len() && self.text(self.si) == "!" {
            self.si += 1;
        }
        if self.si < self.len()
            && matches!(self.kind(self.si), TokenKind::Ident | TokenKind::RawIdent)
        {
            let name = self.ident_name(self.si);
            self.si += 1;
            self.record_item("macro", name, Visibility::Private, at);
        }
        if self.si < self.len() && self.text(self.si) == "{" {
            self.si = self.skip_group(self.si, "{", "}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn parse(path: &str, src: &str) -> FileItems {
        let ctx = FileContext::new(src);
        parse_items(path, src, &ctx)
    }

    #[test]
    fn crate_and_module_inference() {
        assert_eq!(
            crate_and_modules("crates/phylo/src/tree/builder.rs"),
            ("phylo".to_string(), vec!["tree".to_string(), "builder".to_string()])
        );
        assert_eq!(
            crate_and_modules("crates/phylo/src/tree/mod.rs"),
            ("phylo".to_string(), vec!["tree".to_string()])
        );
        assert_eq!(crate_and_modules("crates/mpcgs/src/lib.rs"), ("mpcgs".to_string(), vec![]));
        assert_eq!(crate_and_modules("src/lib.rs"), ("mpcgs_repro".to_string(), vec![]));
        assert_eq!(crate_and_modules("tests/accuracy.rs"), ("tests__accuracy".to_string(), vec![]));
        assert_eq!(
            crate_and_modules("crates/bench/src/bin/perf_trajectory.rs"),
            ("bench__bin_perf_trajectory".to_string(), vec![])
        );
    }

    #[test]
    fn fns_carry_impl_and_module_context() {
        let src = "pub struct Kernel;\nimpl Kernel {\n    pub fn combine_rows(&self) {}\n    fn helper() {}\n}\nmod inner {\n    pub fn free() {}\n}\nimpl std::fmt::Display for Kernel {\n    fn fmt(&self) {}\n}\n";
        let items = parse("crates/phylo/src/likelihood.rs", src);
        let f = |name: &str| items.fns.iter().find(|f| f.name == name).unwrap();
        assert_eq!(f("combine_rows").self_ty.as_deref(), Some("Kernel"));
        assert!(f("combine_rows").vis.is_pub());
        assert_eq!(f("helper").self_ty.as_deref(), Some("Kernel"));
        assert_eq!(f("helper").vis, Visibility::Private);
        assert_eq!(f("free").modules, vec!["inner".to_string()]);
        assert_eq!(f("fmt").self_ty.as_deref(), Some("Kernel"));
        assert_eq!(f("fmt").trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn trait_methods_and_defaults_are_recorded() {
        let src = "pub trait GenealogySampler {\n    fn step(&mut self);\n    fn run(&mut self) { self.step(); }\n}\n";
        let items = parse("crates/lamarc/src/run.rs", src);
        let step = items.fns.iter().find(|f| f.name == "step").unwrap();
        assert_eq!(step.trait_name.as_deref(), Some("GenealogySampler"));
        assert!(step.body.is_none());
        let run = items.fns.iter().find(|f| f.name == "run").unwrap();
        assert!(run.body.is_some());
    }

    #[test]
    fn fn_bodies_do_not_leak_items() {
        // The `match` arms and struct expressions inside the body must not
        // register as items, and the nested impl context must not escape.
        let src = "fn outer() {\n    let x = Foo { bar: 1 };\n    match x { _ => {} }\n}\npub fn after() {}\n";
        let items = parse("crates/mcmc/src/chain.rs", src);
        assert_eq!(items.fns.len(), 2);
        let after = items.fns.iter().find(|f| f.name == "after").unwrap();
        assert!(after.self_ty.is_none());
        assert!(after.vis.is_pub());
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let src = "use std::collections::{BTreeMap, BTreeSet as Set};\npub use crate::serve::JobQueue;\nuse phylo::likelihood::*;\nuse mcmc::rng::r#type;\n";
        let items = parse("crates/mpcgs/src/lib.rs", src);
        let find = |alias: &str| items.uses.iter().find(|u| u.alias == alias).unwrap();
        assert_eq!(find("BTreeMap").path, ["std", "collections", "BTreeMap"]);
        assert_eq!(find("Set").path, ["std", "collections", "BTreeSet"]);
        assert!(find("JobQueue").vis.is_pub());
        assert!(items.uses.iter().any(|u| u.glob && u.path == ["phylo", "likelihood"]));
        assert_eq!(find("type").path, ["mcmc", "rng", "type"]);
    }

    #[test]
    fn visibility_forms() {
        let src =
            "pub fn a() {}\npub(crate) fn b() {}\nfn c() {}\npub struct S;\npub(super) mod m {}\n";
        let items = parse("crates/exec/src/lib.rs", src);
        let f = |name: &str| items.fns.iter().find(|f| f.name == name).unwrap();
        assert_eq!(f("a").vis, Visibility::Pub);
        assert_eq!(f("b").vis, Visibility::Restricted);
        assert_eq!(f("c").vis, Visibility::Private);
        let m = items.items.iter().find(|i| i.kind == "mod").unwrap();
        assert_eq!(m.vis, Visibility::Restricted);
    }

    #[test]
    fn test_regions_mark_fns() {
        let src = "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let items = parse("crates/phylo/src/tables.rs", src);
        assert!(!items.fns.iter().find(|f| f.name == "shipped").unwrap().is_test);
        assert!(items.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let src = "impl<E: LikelihoodEngine> GenealogySampler for MultiProposalSampler<E> {\n    fn step(&mut self) {}\n}\nimpl<T> Wrapper<T> where T: Clone {\n    fn get(&self) {}\n}\n";
        let items = parse("crates/mpcgs/src/sampler.rs", src);
        let step = items.fns.iter().find(|f| f.name == "step").unwrap();
        assert_eq!(step.self_ty.as_deref(), Some("MultiProposalSampler"));
        assert_eq!(step.trait_name.as_deref(), Some("GenealogySampler"));
        let get = items.fns.iter().find(|f| f.name == "get").unwrap();
        assert_eq!(get.self_ty.as_deref(), Some("Wrapper"));
        assert!(get.trait_name.is_none());
    }
}
