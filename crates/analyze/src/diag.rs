//! Diagnostics: the engine's output, rendered in the workspace's pointed
//! `file:line:col` error style and encodable as JSON for CI artifacts.

use codec::Json;

/// One finding, after pragma application.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired (`d1` … `d6` or `pragma`).
    pub rule: &'static str,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to use instead.
    pub message: String,
    /// `Some(reason)` when an inline pragma suppressed this diagnostic.
    pub suppressed: Option<String>,
}

impl Diagnostic {
    /// Render in the codebase's pointed diagnostic style.
    pub fn render(&self) -> String {
        let mut line =
            format!("{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message);
        if let Some(reason) = &self.suppressed {
            line.push_str(&format!(" — suppressed by pragma: {reason}"));
        }
        line
    }

    /// The JSON encoding used by `mpcgs-analyze --json`.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("rule".to_string(), Json::string(self.rule)),
            ("file".to_string(), Json::string(self.file.clone())),
            ("line".to_string(), Json::Number(self.line as f64)),
            ("col".to_string(), Json::Number(self.col as f64)),
            ("message".to_string(), Json::string(self.message.clone())),
            ("suppressed".to_string(), Json::Bool(self.suppressed.is_some())),
        ];
        if let Some(reason) = &self.suppressed {
            members.push(("reason".to_string(), Json::string(reason.clone())));
        }
        Json::Object(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_pointed_style() {
        let d = Diagnostic {
            rule: "d1",
            file: "crates/phylo/src/patterns.rs".to_string(),
            line: 56,
            col: 22,
            message: "`HashMap` where order can leak".to_string(),
            suppressed: None,
        };
        assert_eq!(
            d.render(),
            "crates/phylo/src/patterns.rs:56:22: [d1] `HashMap` where order can leak"
        );
        let json = d.to_json();
        assert_eq!(json.get("rule").and_then(Json::as_str), Some("d1"));
        assert_eq!(json.get("suppressed").and_then(Json::as_bool), Some(false));
        assert!(json.get("reason").is_none());
    }

    #[test]
    fn suppressed_rendering_carries_the_reason() {
        let d = Diagnostic {
            rule: "d5",
            file: "a.rs".to_string(),
            line: 1,
            col: 2,
            message: "bare float `==`".to_string(),
            suppressed: Some("sentinel is exact by construction".to_string()),
        };
        assert!(d.render().contains("suppressed by pragma: sentinel"));
        assert_eq!(
            d.to_json().get("reason").and_then(Json::as_str),
            Some("sentinel is exact by construction")
        );
    }
}
