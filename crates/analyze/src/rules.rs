//! The invariant registry: what each rule enforces, where it applies, and
//! the token-level checkers.
//!
//! Every rule guards a convention the compiler cannot see but the sampler's
//! determinism contract depends on — bit-identical checkpoint/resume,
//! cross-host ensemble reproducibility, and the differential op-tape oracle
//! all assume them. Scopes are path-based (the registry knows the workspace
//! layout) plus a test-code axis: `#[cfg(test)]` regions and files under
//! `tests/`, `benches/`, or `examples/` are exempt from the rules that only
//! protect shipped sampler state.

use crate::context::FileContext;
use crate::lexer::{Token, TokenKind};

/// One diagnostic before pragma application.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// The rule that fired (`d1` … `d6` or `pragma`).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to use instead.
    pub message: String,
}

/// Static description of one rule, shown by `--explain`.
pub struct RuleInfo {
    /// Stable id used in diagnostics and pragmas.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The long-form rationale.
    pub explain: &'static str,
}

/// Paths whose contents feed sampler state, checkpoint bytes, or codec
/// output — the determinism-critical surface for D1/D5/D6.
const DETERMINISM_PATHS: &[&str] = &[
    "crates/phylo/src",
    "crates/mcmc/src",
    "crates/lamarc/src",
    "crates/mpcgs/src",
    "crates/codec/src",
    "crates/coalescent/src",
    "crates/exec/src",
];

/// The only module allowed to contain `unsafe` / `#[allow(unsafe_code)]`:
/// the runtime CPU-feature dispatch for the SIMD combine kernel.
const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[("crates/phylo/src/simd.rs", "dispatch")];

/// Where `std::thread::{spawn, scope}` is legitimate: the `Backend` seam
/// itself, and the rayon shim it delegates to.
const THREAD_ALLOWED: &[&str] = &["crates/exec/src", "crates/shims/rayon/src"];

/// Where wall-clock reads are legitimate: benchmarking and the serve
/// layer's latency reporting.
const CLOCK_ALLOWED: &[&str] =
    &["crates/bench", "crates/shims/criterion", "crates/mpcgs/src/serve.rs"];

/// Where `Mt19937` construction is legitimate: the RNG module itself, plus
/// drivers that seed a whole process (bench binaries, shims).
const RNG_ALLOWED: &[&str] = &["crates/mcmc/src/rng", "crates/bench", "crates/shims"];

/// The full registry, in diagnostic-id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "d1",
        title: "no unordered-map iteration in sampler/checkpoint/codec paths",
        explain: "HashMap and HashSet iterate in a randomized, per-process order. In the \
                  sampler, checkpoint, and codec paths that order can leak into pattern \
                  numbering, node ordering, or serialized bytes, silently breaking the \
                  bit-identical checkpoint/resume contract and cross-host ensemble \
                  reproducibility. Use BTreeMap/BTreeSet (or a Vec kept sorted) so every \
                  traversal is a deterministic function of the keys. Lookups that provably \
                  never iterate may instead carry a pragma with a written reason.\n\nSee \
                  docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "d2",
        title: "unsafe code only inside phylo::simd::dispatch; every crate root denies it",
        explain: "Every crate root must carry #![deny(unsafe_code)] (or forbid), and the \
                  only module allowed to opt back in with #[allow(unsafe_code)] is \
                  phylo::simd::dispatch — the runtime CPU-feature dispatch whose soundness \
                  obligation (calling a #[target_feature] function after a CPUID probe) is \
                  documented in place. Unsafe code anywhere else widens the audit surface \
                  for memory-safety bugs that the determinism harnesses cannot catch.\n\n\
                  See docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "d3",
        title: "no std::thread::{spawn, scope} outside crates/exec",
        explain: "All parallelism routes through exec::Backend (map_mut / map_grid), which \
                  owns deterministic work splitting, the device command queue, and the \
                  cost accounting. A stray std::thread::spawn bypasses that seam: its \
                  interleaving is invisible to the dispatch records and its results can \
                  arrive in nondeterministic order. crates/exec itself (and the rayon shim \
                  it delegates to) are the sanctioned homes for raw threads.\n\nSee \
                  docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "d4",
        title: "no Instant::now / SystemTime in sampler-state paths",
        explain: "Wall-clock reads are nondeterministic inputs: anything derived from them \
                  that reaches sampler state, checkpoint bytes, or proposal decisions \
                  breaks run-to-run bit-identity. Timing belongs in the bench crate and \
                  the serve layer's latency reporting, where it is measurement, not \
                  state.\n\nSee docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "d5",
        title: "no bare f64/f32 == or != in sampler paths",
        explain: "Exact float equality silently encodes a bit-identity assumption. Where \
                  that assumption is the point (cache keys, checkpoint comparisons), \
                  compare the bit patterns explicitly via to_bits() — as EdgeMatrixCache \
                  keying does — so the intent survives refactoring; elsewhere use an \
                  explicit tolerance. Sentinel comparisons that are exact by construction \
                  (a value just assigned 0.0, an infinity flag) may carry a pragma with a \
                  written reason.\n\nSee docs/ARCHITECTURE.md, 'Static analysis & \
                  invariants'.",
    },
    RuleInfo {
        id: "d6",
        title: "no Mt19937 construction outside mcmc::rng, tests, and the harness",
        explain: "Every random stream in a run must be derived from the run's StreamBank \
                  (or the sanctioned mcmc::rng::host_rng root constructor) so that seeds, \
                  stream positions, and checkpoint resume stay coherent. An ad-hoc \
                  Mt19937::new(seed) creates a stream the checkpoint codec does not know \
                  about, which desynchronizes resume and cross-host replay. Tests, the \
                  op-tape harness, and bench drivers seed their own processes and are \
                  exempt.\n\nSee docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "r1",
        title: "panic-freedom: no unwrap/expect/panic!/assert!/risky indexing reachable from \
                step, serve drain, or the checkpoint codec",
        explain: "A panic inside SessionRunner::step, the JobQueue drain, or the \
                  SessionCheckpoint codec is a fault-isolation bug: it tears down a serve \
                  job (or the whole process) instead of surfacing a per-job Err outcome, \
                  and it can leave a checkpoint half-written. The rule walks the resolved \
                  call graph from those roots and flags every reachable `.unwrap()`, \
                  `.expect()`, panicking macro (panic!/assert!/unreachable!/todo!/\
                  unimplemented!), and arithmetic slice index (`v[i - 1]`) — each \
                  diagnostic shows the call chain that puts the site in scope. Invariants \
                  that genuinely cannot fail (arena indexes validated at construction) \
                  carry a pragma with the written reason; debug_assert! is exempt because \
                  release builds compile it out.\n\nThe cone walks resolved edges only: \
                  dyn-trait dispatch, function pointers, and macro bodies do not extend it \
                  (documented false-negative classes).\n\nSee docs/ARCHITECTURE.md, \
                  'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "r2",
        title: "no-alloc hot loop: no Vec/String/Box/format! allocation reachable from the \
                combine kernel or the dirty-path rescore",
        explain: "The paper's throughput rests on the per-site combine loop staying \
                  allocation-free: Kernel::combine_rows, the SIMD lanes under it, and \
                  FelsensteinPruner::rescore_with_workspace run millions of times per \
                  chain, and a single Vec::new or format! in that cone turns into \
                  allocator traffic that dwarfs the FLOPs. Workspaces are allocated once \
                  and reused; growth happens in `reserve`-style cold paths. The rule flags \
                  Vec::new/with_capacity, String construction, Box::new, vec!/format!, and \
                  .push/.to_vec/.to_string/.to_owned reachable from the kernel roots. \
                  Pooled-scratch pushes whose capacity is retained across calls (no \
                  realloc once warm) carry a pragma saying so.\n\nSee \
                  docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "r3",
        title: "no I/O reachable from sampler step paths: observers and the CLI are the \
                only output seams",
        explain: "GenealogySampler::step and SessionRunner::step must be pure state \
                  transitions: any std::fs call, print macro, or stdio handle reachable \
                  from them smuggles side effects into the sampler, breaks the serve \
                  layer's output contract (stdout is the artifact stream), and makes \
                  cross-host ensemble replicas diverge in behaviour. Progress and \
                  telemetry route through RunObserver implementations — which the graph \
                  deliberately does not traverse (dyn dispatch is an unresolved edge), \
                  making observers the sanctioned seam by construction.\n\nSee \
                  docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "r4",
        title: "golden public-API surface: docs/api-surface.txt must match --api-surface",
        explain: "`mpcgs-analyze --api-surface` emits a sorted, normalised listing of \
                  every pub item per crate (fn/struct/enum/trait/…, trait-impl methods \
                  riding their trait). CI diffs it against the committed \
                  docs/api-surface.txt; a mismatch fails the build with the exact +/- \
                  lines and the regen one-liner:\n\n    cargo run -q -p analyze --bin \
                  mpcgs-analyze -- --api-surface > docs/api-surface.txt\n\nThe point is \
                  not to freeze the API but to make drift a reviewed artifact: adding, \
                  removing, or renaming a pub item shows up as a one-line diff in the PR \
                  instead of an accident discovered downstream. Signatures and generics \
                  are deliberately ignored so parameter changes do not churn the \
                  baseline.\n\nSee docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
    RuleInfo {
        id: "pragma",
        title: "suppression pragmas must parse, name a real rule, carry a reason, and be used",
        explain: "Inline suppressions look like:\n\n    // mpcgs-analyze: allow(d1, reason \
                  = \"lookup only; iteration order never escapes\")\n\nA pragma on its own \
                  line suppresses matching diagnostics on the next code line; a trailing \
                  pragma suppresses its own line. The reason is mandatory — a suppression \
                  without a written justification is itself a violation — and a pragma \
                  that suppresses nothing is reported so stale exemptions cannot \
                  accumulate. Pragma diagnostics cannot themselves be suppressed.\n\nSee \
                  docs/ARCHITECTURE.md, 'Static analysis & invariants'.",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `path` (workspace-relative, `/`-separated) starts with any of
/// the given prefixes (component-aligned) or equals one exactly.
fn path_in(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path == *p || (path.starts_with(p) && path.as_bytes()[p.len()] == b'/'))
}

/// Files that are test/driver code by location.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Crate roots: `src/lib.rs` / `src/main.rs` of a workspace member.
fn is_crate_root(path: &str) -> bool {
    let comps: Vec<&str> = path.split('/').collect();
    match comps.as_slice() {
        ["src", file] => matches!(*file, "lib.rs" | "main.rs"),
        [rest @ .., "src", file] => {
            !rest.is_empty() && rest[0] == "crates" && matches!(*file, "lib.rs" | "main.rs")
        }
        _ => false,
    }
}

/// Run every rule over one file.
pub fn check_all(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    check_d1(path, source, ctx, out);
    check_d2(path, source, ctx, out);
    check_d3(path, source, ctx, out);
    check_d4(path, source, ctx, out);
    check_d5(path, source, ctx, out);
    check_d6(path, source, ctx, out);
}

fn diag(out: &mut Vec<RawDiag>, rule: &'static str, tok: &Token, message: String) {
    out.push(RawDiag { rule, line: tok.line, col: tok.col, message });
}

/// D1: unordered collections in determinism-critical paths.
fn check_d1(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    if !path_in(path, DETERMINISM_PATHS) || is_test_path(path) {
        return;
    }
    for &ti in &ctx.sig {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.in_test_region(tok.start) {
            continue;
        }
        let (bad, good) = match tok.text(source) {
            "HashMap" => ("HashMap", "BTreeMap"),
            "HashSet" => ("HashSet", "BTreeSet"),
            "hash_map" => ("hash_map", "btree_map"),
            "hash_set" => ("hash_set", "btree_set"),
            _ => continue,
        };
        diag(
            out,
            "d1",
            tok,
            format!(
                "`{bad}` in a sampler/checkpoint/codec path: iteration order is randomized \
                 per process and can leak into pattern numbering, node order, or checkpoint \
                 bytes; use `{good}` or a sorted collection"
            ),
        );
    }
}

/// D2: crate roots deny unsafe; unsafe tokens only inside the allowlisted
/// dispatch module.
fn check_d2(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    if is_crate_root(path) && !has_unsafe_deny_attr(source, ctx) {
        out.push(RawDiag {
            rule: "d2",
            line: 1,
            col: 1,
            message: "crate root is missing `#![deny(unsafe_code)]` (or \
                      `#![forbid(unsafe_code)]`)"
                .to_string(),
        });
    }
    let allowed_region = UNSAFE_ALLOWLIST
        .iter()
        .find(|(file, _)| *file == path)
        .and_then(|(_, module)| ctx.module_region(source, module));
    let in_allowed =
        |byte: usize| allowed_region.is_some_and(|(start, end)| byte >= start && byte < end);
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text(source) {
            "unsafe" if !in_allowed(tok.start) => diag(
                out,
                "d2",
                tok,
                "`unsafe` outside the sanctioned boundary: `phylo::simd::dispatch` is the \
                 only module allowed to hold unsafe code"
                    .to_string(),
            ),
            "unsafe_code" if !in_allowed(tok.start) => {
                // `deny(unsafe_code)` / `forbid(unsafe_code)` strengthen the
                // invariant and are welcome anywhere; `allow(unsafe_code)`
                // pokes a hole in it.
                let gate = si
                    .checked_sub(2)
                    .map(|i| ctx.tokens[ctx.sig[i]].text(source))
                    .unwrap_or_default();
                if gate != "deny" && gate != "forbid" {
                    diag(
                        out,
                        "d2",
                        tok,
                        "`#[allow(unsafe_code)]` outside the sanctioned \
                         `phylo::simd::dispatch` boundary"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Whether the file carries `#![deny(unsafe_code)]` or the `forbid` form.
fn has_unsafe_deny_attr(source: &str, ctx: &FileContext) -> bool {
    let s = |si: usize| ctx.tokens[ctx.sig[si]].text(source);
    (0..ctx.sig.len().saturating_sub(7)).any(|i| {
        s(i) == "#"
            && s(i + 1) == "!"
            && s(i + 2) == "["
            && (s(i + 3) == "deny" || s(i + 3) == "forbid")
            && s(i + 4) == "("
            && s(i + 5) == "unsafe_code"
            && s(i + 6) == ")"
            && s(i + 7) == "]"
    })
}

/// D3: raw threads outside the Backend seam.
fn check_d3(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    if path_in(path, THREAD_ALLOWED) || is_test_path(path) {
        return;
    }
    let s = |si: usize| ctx.tokens[ctx.sig[si]].text(source);
    for si in 0..ctx.sig.len().saturating_sub(3) {
        let tok = &ctx.tokens[ctx.sig[si]];
        if tok.kind == TokenKind::Ident
            && tok.text(source) == "thread"
            && s(si + 1) == ":"
            && s(si + 2) == ":"
            && matches!(s(si + 3), "spawn" | "scope")
            && !ctx.in_test_region(tok.start)
        {
            diag(
                out,
                "d3",
                tok,
                format!(
                    "`std::thread::{}` outside `crates/exec`: all parallelism must route \
                     through `Backend::map_mut`/`map_grid` so dispatch stays deterministic \
                     and accounted",
                    s(si + 3)
                ),
            );
        }
    }
}

/// D4: wall-clock reads outside bench/serve reporting.
fn check_d4(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    if path_in(path, CLOCK_ALLOWED) || is_test_path(path) {
        return;
    }
    let s = |si: usize| ctx.tokens[ctx.sig[si]].text(source);
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.in_test_region(tok.start) {
            continue;
        }
        match tok.text(source) {
            "Instant"
                if si + 3 < ctx.sig.len()
                    && s(si + 1) == ":"
                    && s(si + 2) == ":"
                    && s(si + 3) == "now" =>
            {
                diag(
                    out,
                    "d4",
                    tok,
                    "`Instant::now` in a sampler-state path: wall-clock reads are \
                     nondeterministic inputs; timing belongs in bench/serve reporting \
                     modules"
                        .to_string(),
                );
            }
            "SystemTime" => diag(
                out,
                "d4",
                tok,
                "`SystemTime` in a sampler-state path: wall-clock reads are \
                 nondeterministic inputs; timing belongs in bench/serve reporting modules"
                    .to_string(),
            ),
            _ => {}
        }
    }
}

/// D5: bare float equality.
fn check_d5(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    if !path_in(path, DETERMINISM_PATHS) || is_test_path(path) {
        return;
    }
    let toks = &ctx.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        let (a, b) = (&toks[i], &toks[i + 1]);
        if a.kind != TokenKind::Punct || b.kind != TokenKind::Punct || a.end != b.start {
            continue;
        }
        let op = match (a.text(source), b.text(source)) {
            ("=", "=") => "==",
            ("!", "=") => "!=",
            _ => continue,
        };
        if ctx.in_test_region(a.start) {
            continue;
        }
        let float_lhs = prev_is_float(source, toks, i);
        let float_rhs = next_is_float(source, toks, i + 2);
        if float_lhs || float_rhs {
            diag(
                out,
                "d5",
                a,
                format!(
                    "bare float `{op}`: exact float comparisons hide bit-identity \
                     assumptions; compare `to_bits()` (as `EdgeMatrixCache` keying does) \
                     or use an explicit tolerance"
                ),
            );
        }
    }
}

const FLOAT_CONSTS: &[&str] = &["INFINITY", "NEG_INFINITY", "NAN"];

fn prev_is_float(source: &str, toks: &[Token], before: usize) -> bool {
    let Some(prev) = toks[..before].iter().rev().find(|t| t.is_significant()) else {
        return false;
    };
    prev.kind == TokenKind::Float
        || (prev.kind == TokenKind::Ident && FLOAT_CONSTS.contains(&prev.text(source)))
}

fn next_is_float(source: &str, toks: &[Token], from: usize) -> bool {
    let mut sig = toks[from..].iter().filter(|t| t.is_significant());
    let mut first = match sig.next() {
        Some(t) => t,
        None => return false,
    };
    if first.kind == TokenKind::Punct && first.text(source) == "-" {
        first = match sig.next() {
            Some(t) => t,
            None => return false,
        };
    }
    if first.kind == TokenKind::Float {
        return true;
    }
    if first.kind == TokenKind::Ident && matches!(first.text(source), "f64" | "f32") {
        // `f64::INFINITY` and friends.
        let rest: Vec<&Token> = sig.take(3).collect();
        return rest.len() == 3
            && rest[0].text(source) == ":"
            && rest[1].text(source) == ":"
            && FLOAT_CONSTS.contains(&rest[2].text(source));
    }
    false
}

/// D6: ad-hoc RNG construction outside the stream plumbing.
fn check_d6(path: &str, source: &str, ctx: &FileContext, out: &mut Vec<RawDiag>) {
    if !path_in(path, DETERMINISM_PATHS) || path_in(path, RNG_ALLOWED) || is_test_path(path) {
        return;
    }
    const CTORS: &[&str] =
        &["new", "from_seed", "from_seed_array", "seed_from_u64", "from_entropy"];
    let s = |si: usize| ctx.tokens[ctx.sig[si]].text(source);
    for si in 0..ctx.sig.len().saturating_sub(3) {
        let tok = &ctx.tokens[ctx.sig[si]];
        if tok.kind == TokenKind::Ident
            && tok.text(source) == "Mt19937"
            && s(si + 1) == ":"
            && s(si + 2) == ":"
            && CTORS.contains(&s(si + 3))
            && !ctx.in_test_region(tok.start)
        {
            diag(
                out,
                "d6",
                tok,
                format!(
                    "`Mt19937::{}` outside `mcmc::rng`: every stream must be derived from \
                     `StreamBank` (or the sanctioned `mcmc::rng::host_rng` root \
                     constructor) so checkpoints can replay it",
                    s(si + 3)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, source: &str) -> Vec<RawDiag> {
        let ctx = FileContext::new(source);
        let mut out = Vec::new();
        check_all(path, source, &ctx, &mut out);
        out
    }

    fn rules_fired(path: &str, source: &str) -> Vec<&'static str> {
        run(path, source).into_iter().map(|d| d.rule).collect()
    }

    const ROOT_OK: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn d1_fires_in_scope_and_not_in_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        assert_eq!(rules_fired("crates/phylo/src/patterns.rs", src), ["d1"]);
        assert!(rules_fired("crates/bench/src/json.rs", src).is_empty());
        assert!(rules_fired("tests/accuracy.rs", src).is_empty());
    }

    #[test]
    fn d2_requires_root_attr_and_fences_unsafe() {
        assert_eq!(rules_fired("crates/phylo/src/lib.rs", "fn f() {}\n"), ["d2"]);
        assert!(rules_fired("crates/phylo/src/lib.rs", ROOT_OK).is_empty());
        // `unsafe` outside the dispatch module, even in the allowlisted file.
        let src = "fn f() { unsafe { g(); } }\n#[allow(unsafe_code)]\npub mod dispatch { pub fn h() { unsafe { i(); } } }\n";
        let diags = run("crates/phylo/src/simd.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        // The same contents in any other file: both unsafes and the allow fire.
        let diags = run("crates/mcmc/src/chain.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "d2").count(), 3);
    }

    #[test]
    fn d2_ignores_comments_and_strings() {
        let src = "// unsafe in prose\nlet s = \"unsafe\";\n";
        assert!(rules_fired("crates/mcmc/src/chain.rs", src).is_empty());
    }

    #[test]
    fn d3_flags_spawn_and_scope_outside_exec() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_fired("crates/mpcgs/src/ensemble.rs", src), ["d3"]);
        assert!(rules_fired("crates/exec/src/executor.rs", src).is_empty());
        assert!(rules_fired("crates/shims/rayon/src/pool.rs", src).is_empty());
        let src2 = "fn f() { thread::scope(|s| {}); }\n";
        assert_eq!(rules_fired("crates/lamarc/src/run.rs", src2), ["d3"]);
        // available_parallelism is a read, not a spawn.
        assert!(rules_fired(
            "crates/lamarc/src/run.rs",
            "let n = std::thread::available_parallelism();\n"
        )
        .is_empty());
    }

    #[test]
    fn d4_flags_clocks_outside_reporting() {
        let src = "let t0 = std::time::Instant::now();\n";
        assert_eq!(rules_fired("crates/mpcgs/src/sampler.rs", src), ["d4"]);
        assert!(rules_fired("crates/mpcgs/src/serve.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/perf_trajectory.rs", src).is_empty());
        assert_eq!(
            rules_fired("crates/phylo/src/likelihood.rs", "use std::time::SystemTime;\n"),
            ["d4"]
        );
    }

    #[test]
    fn d5_flags_float_literal_comparisons() {
        for src in [
            "if x == 1.0 {}\n",
            "if 0.5 != y {}\n",
            "if x == -1.0e-9 {}\n",
            "if max == f64::INFINITY {}\n",
            "if self.0 != f64::NAN {}\n",
        ] {
            assert_eq!(rules_fired("crates/mcmc/src/logdomain.rs", src), ["d5"], "{src}");
        }
        for src in ["if x == y {}\n", "if n == 1 {}\n", "if a.to_bits() == b.to_bits() {}\n"] {
            assert!(rules_fired("crates/mcmc/src/logdomain.rs", src).is_empty(), "{src}");
        }
    }

    #[test]
    fn d6_flags_adhoc_rng_construction() {
        let src = "let mut rng = Mt19937::new(42);\n";
        assert_eq!(rules_fired("crates/mpcgs/src/session.rs", src), ["d6"]);
        assert!(rules_fired("crates/mcmc/src/rng/streams.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/fig2_burnin_trace.rs", src).is_empty());
        assert!(rules_fired("tests/harness/mod.rs", src).is_empty());
        // Non-constructor paths are fine.
        assert!(rules_fired("crates/mpcgs/src/session.rs", "let p = Mt19937::position(&rng);\n")
            .is_empty());
    }

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/mpcgs/src/main.rs"));
        assert!(is_crate_root("crates/shims/rand/src/lib.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/perf_trajectory.rs"));
        assert!(!is_crate_root("crates/phylo/src/tree/mod.rs"));
        assert!(!is_crate_root("tests/accuracy.rs"));
    }

    #[test]
    fn registry_ids_are_unique_and_looked_up() {
        for r in RULES {
            assert_eq!(RULES.iter().filter(|o| o.id == r.id).count(), 1);
            assert!(rule(r.id).is_some());
        }
        assert!(rule("d99").is_none());
    }
}
