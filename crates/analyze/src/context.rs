//! Per-file context the rules share: which byte ranges are test code, where
//! a named module's body lies, and the inline suppression pragmas.
//!
//! Everything here works on the token stream from [`crate::lexer`] — braces
//! inside strings or comments never confuse the region trackers because they
//! were already swallowed into single tokens.

use crate::lexer::{Token, TokenKind};

/// An inline suppression: `// mpcgs-analyze: allow(d1, reason = "…")`.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule id being suppressed (`d1` … `d6`).
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line of the pragma comment itself.
    pub line: u32,
    /// 1-based column of the pragma comment.
    pub col: u32,
    /// The line whose diagnostics this pragma suppresses: its own line for a
    /// trailing pragma, the next code line for a standalone one.
    pub target_line: u32,
}

/// A pragma that could not be parsed (these are diagnostics themselves).
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-based line of the malformed pragma.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Token stream plus the derived regions and pragmas for one file.
pub struct FileContext {
    /// The lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Parsed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas.
    pub pragma_errors: Vec<PragmaError>,
}

/// The comment marker every pragma starts with.
pub const PRAGMA_MARKER: &str = "mpcgs-analyze:";

impl FileContext {
    /// Build the context for one file.
    pub fn new(source: &str) -> FileContext {
        let tokens = crate::lexer::tokenize(source);
        let sig: Vec<usize> =
            tokens.iter().enumerate().filter(|(_, t)| t.is_significant()).map(|(i, _)| i).collect();
        let test_regions = find_test_regions(source, &tokens, &sig);
        let (pragmas, pragma_errors) = find_pragmas(source, &tokens);
        FileContext { tokens, sig, test_regions, pragmas, pragma_errors }
    }

    /// Whether the byte offset lies inside test-only code.
    pub fn in_test_region(&self, byte: usize) -> bool {
        self.test_regions.iter().any(|&(start, end)| byte >= start && byte < end)
    }

    /// The byte range of `mod <name> { … }`, extended backwards over the
    /// attributes attached to it (so `#[allow(unsafe_code)] mod dispatch`
    /// is one region). `None` if the module is absent.
    pub fn module_region(&self, source: &str, name: &str) -> Option<(usize, usize)> {
        for (si, &ti) in self.sig.iter().enumerate() {
            if self.tokens[ti].kind != TokenKind::Ident || self.tokens[ti].text(source) != "mod" {
                continue;
            }
            let name_ti = *self.sig.get(si + 1)?;
            if self.tokens[name_ti].text(source) != name {
                continue;
            }
            let open_ti = *self.sig.get(si + 2)?;
            if self.tokens[open_ti].text(source) != "{" {
                continue;
            }
            let end = match_brace(source, &self.tokens, &self.sig, si + 2)?;
            let start_si = attr_run_start(source, &self.tokens, &self.sig, si);
            return Some((self.tokens[self.sig[start_si]].start, end));
        }
        None
    }
}

/// Walk backwards from significant index `si` over the item's visibility
/// (`pub`, `pub(crate)`, `pub(in …)`) and any `#[…]` attribute groups,
/// returning the significant index where the run starts.
fn attr_run_start(source: &str, tokens: &[Token], sig: &[usize], mut si: usize) -> usize {
    loop {
        if si == 0 {
            return si;
        }
        match tokens[sig[si - 1]].text(source) {
            "pub" => si -= 1,
            ")" => {
                // `pub(crate)` / `pub(in path)`: scan back to the matching
                // `(` and require `pub` before it.
                let Some(j) = match_back(source, tokens, sig, si - 1, "(", ")") else {
                    return si;
                };
                if j == 0 || tokens[sig[j - 1]].text(source) != "pub" {
                    return si;
                }
                si = j - 1;
            }
            "]" => {
                // An attribute: scan back to the matching `[` and the `#`
                // before that.
                let Some(j) = match_back(source, tokens, sig, si - 1, "[", "]") else {
                    return si;
                };
                if j == 0 || tokens[sig[j - 1]].text(source) != "#" {
                    return si;
                }
                si = j - 1;
            }
            _ => return si,
        }
    }
}

/// From the closer at significant index `close_si`, scan backwards to the
/// significant index of the matching `open` delimiter.
fn match_back(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    close_si: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close_si;
    loop {
        let text = tokens[sig[j]].text(source);
        if text == close {
            depth += 1;
        } else if text == open {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Find the byte offset one past the `}` matching the `{` at significant
/// index `open_si`.
fn match_brace(source: &str, tokens: &[Token], sig: &[usize], open_si: usize) -> Option<usize> {
    let mut depth = 0i32;
    for &ti in &sig[open_si..] {
        match tokens[ti].text(source) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(tokens[ti].end);
                }
            }
            _ => {}
        }
    }
    // Unbalanced file: treat the region as running to the end.
    Some(source.len())
}

/// Byte ranges of items annotated `#[cfg(test)]` (any cfg expression that
/// mentions the bare `test` ident) or `#[test]`.
fn find_test_regions(source: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut si = 0usize;
    while si + 1 < sig.len() {
        // Outer attribute: `#` `[` … `]` (inner `#![…]` attributes are
        // configuration, not items — skip them).
        if tokens[sig[si]].text(source) != "#" || tokens[sig[si + 1]].text(source) != "[" {
            si += 1;
            continue;
        }
        let attr_start = tokens[sig[si]].start;
        // Collect idents inside the bracket group.
        let mut depth = 0i32;
        let mut j = si + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < sig.len() {
            let t = &tokens[sig[j]];
            match t.text(source) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if t.kind == TokenKind::Ident {
                        idents.push(t.text(source));
                    }
                }
            }
            j += 1;
        }
        if j >= sig.len() {
            break;
        }
        let is_test_attr = match idents.split_first() {
            Some((&"cfg", rest)) => rest.contains(&"test"),
            Some((&"test", _)) | Some((&"bench", _)) => true,
            _ => false,
        };
        if !is_test_attr {
            si = j + 1;
            continue;
        }
        // The region runs from the attribute through the end of the item it
        // annotates: skip further attributes, then either to a `;` at brace
        // depth zero or through the first balanced `{ … }` block.
        let mut k = j + 1;
        while k + 1 < sig.len()
            && tokens[sig[k]].text(source) == "#"
            && tokens[sig[k + 1]].text(source) == "["
        {
            let mut d = 0i32;
            let mut m = k + 1;
            while m < sig.len() {
                match tokens[sig[m]].text(source) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        let mut end = source.len();
        let mut m = k;
        while m < sig.len() {
            match tokens[sig[m]].text(source) {
                ";" => {
                    end = tokens[sig[m]].end;
                    break;
                }
                "{" => {
                    end = match_brace(source, tokens, sig, m).unwrap_or(source.len());
                    break;
                }
                _ => m += 1,
            }
        }
        regions.push((attr_start, end));
        si = j + 1;
    }
    regions
}

/// Extract `// mpcgs-analyze: allow(rule, reason = "…")` pragmas from the
/// comment tokens.
fn find_pragmas(source: &str, tokens: &[Token]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(source).trim_start_matches('/').trim();
        let Some(body) = text.strip_prefix(PRAGMA_MARKER) else { continue };
        match parse_allow(body.trim()) {
            Ok((rule, reason)) => {
                let trailing = tokens[..i]
                    .iter()
                    .rev()
                    .take_while(|t| t.line == tok.line)
                    .any(|t| t.is_significant());
                let target_line = if trailing {
                    tok.line
                } else {
                    tokens[i + 1..]
                        .iter()
                        .find(|t| t.is_significant())
                        .map(|t| t.line)
                        .unwrap_or(tok.line)
                };
                pragmas.push(Pragma { rule, reason, line: tok.line, col: tok.col, target_line });
            }
            Err(message) => errors.push(PragmaError { line: tok.line, col: tok.col, message }),
        }
    }
    (pragmas, errors)
}

/// Parse `allow(<rule>, reason = "<text>")`. The reason is mandatory and
/// must be non-empty — a suppression without a written justification is
/// itself a violation.
fn parse_allow(body: &str) -> Result<(String, String), String> {
    let inner = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('('))
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| {
            format!("expected `allow(<rule>, reason = \"…\")` after `{PRAGMA_MARKER}`")
        })?;
    let (rule, rest) = inner
        .split_once(',')
        .ok_or_else(|| "pragma is missing the mandatory `reason = \"…\"` field".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
        return Err(format!("`{rule}` is not a rule id"));
    }
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('"'))
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| "pragma is missing the mandatory `reason = \"…\"` field".to_string())?;
    if reason.trim().is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_region() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { inner(); }\n}\nfn after() {}\n";
        let ctx = FileContext::new(src);
        assert_eq!(ctx.test_regions.len(), 1);
        let inner_at = src.find("inner").unwrap();
        let after_at = src.find("after").unwrap();
        assert!(ctx.in_test_region(inner_at));
        assert!(!ctx.in_test_region(after_at));
        assert!(!ctx.in_test_region(0));
    }

    #[test]
    fn test_attr_on_a_single_fn() {
        let src = "#[test]\nfn unit() { body(); }\nfn not_test() { other(); }\n";
        let ctx = FileContext::new(src);
        assert!(ctx.in_test_region(src.find("body").unwrap()));
        assert!(!ctx.in_test_region(src.find("other").unwrap()));
    }

    #[test]
    fn cfg_all_test_counts_and_attrs_stack() {
        let src =
            "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod m { fn f() { g(); } }\n";
        let ctx = FileContext::new(src);
        assert!(ctx.in_test_region(src.find("g()").unwrap()));
    }

    #[test]
    fn cfg_feature_named_test_string_is_not_a_region() {
        let src = "#[cfg(feature = \"test-utils\")]\nmod m { fn f() {} }\n";
        let ctx = FileContext::new(src);
        assert!(ctx.test_regions.is_empty());
    }

    #[test]
    fn module_region_includes_attached_attrs() {
        let src = "mod other {}\n/// docs\n#[allow(unsafe_code)]\npub(crate) mod dispatch {\n    fn f() {}\n}\nfn tail() {}\n";
        let ctx = FileContext::new(src);
        let (start, end) = ctx.module_region(src, "dispatch").unwrap();
        assert!(start <= src.find("#[allow(unsafe_code)]").unwrap());
        assert!(end > src.find("fn f").unwrap());
        assert!(end <= src.find("fn tail").unwrap());
        assert!(ctx.module_region(src, "missing").is_none());
    }

    #[test]
    fn standalone_and_trailing_pragmas_target_the_right_line() {
        let src = "// mpcgs-analyze: allow(d1, reason = \"standalone\")\nlet a = 1;\nlet b = 2; // mpcgs-analyze: allow(d5, reason = \"trailing\")\n";
        let ctx = FileContext::new(src);
        assert_eq!(ctx.pragmas.len(), 2);
        assert_eq!((ctx.pragmas[0].rule.as_str(), ctx.pragmas[0].target_line), ("d1", 2));
        assert_eq!((ctx.pragmas[1].rule.as_str(), ctx.pragmas[1].target_line), ("d5", 3));
        assert!(ctx.pragma_errors.is_empty());
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        for bad in [
            "// mpcgs-analyze: allow(d1)",
            "// mpcgs-analyze: allow(d1, reason = \"\")",
            "// mpcgs-analyze: disallow(d1, reason = \"x\")",
            "// mpcgs-analyze: allow(d 1, reason = \"x\")",
        ] {
            let ctx = FileContext::new(bad);
            assert_eq!(ctx.pragma_errors.len(), 1, "{bad}");
            assert!(ctx.pragmas.is_empty(), "{bad}");
        }
    }
}
