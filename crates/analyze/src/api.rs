//! The golden public-API surface (r4): a sorted, normalised listing of
//! every `pub` item per crate, diffed against a committed baseline so API
//! drift becomes a reviewed artifact instead of an accident.
//!
//! One line per item:
//!
//! ```text
//! phylo::likelihood::Kernel  struct
//! phylo::likelihood::Kernel::combine_rows  fn
//! mpcgs::serve::JobQueue::run  fn
//! ```
//!
//! Normalisation rules: only `pub` items (restricted forms like
//! `pub(crate)` are internal and excluded); trait-impl methods list when
//! the implementing type is itself listed (trait methods are as public as
//! their trait); paths are `crate::module::…` with raw-ident prefixes
//! stripped; lines are bytewise sorted and unique. The listing is a
//! *surface fingerprint*, not rustdoc: it deliberately ignores signatures
//! and generics, so a parameter change does not churn the baseline — only
//! additions, removals, and renames do.
//!
//! `mpcgs-analyze --api-surface` prints the listing;
//! `--check-api-surface docs/api-surface.txt` diffs it against the
//! committed baseline and fails with a readable diff plus the regen
//! one-liner.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::graph::FileUnit;
use crate::items::Visibility;

/// Build the normalised API-surface listing over the parsed workspace.
pub fn surface(files: &[FileUnit]) -> String {
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for file in files {
        let items = &file.items;
        // Test/driver crates are not API.
        if items.crate_name.starts_with("tests__") || items.crate_name.contains("__bin_") {
            continue;
        }
        for item in &items.items {
            if item.vis != Visibility::Pub || item.is_test {
                continue;
            }
            let mut parts: Vec<&str> = vec![items.crate_name.as_str()];
            parts.extend(items.base_modules.iter().map(String::as_str));
            parts.extend(item.modules.iter().map(String::as_str));
            if let Some(ty) = &item.self_ty {
                parts.push(ty.as_str());
            }
            parts.push(item.name.as_str());
            lines.insert(format!("{}  {}", parts.join("::"), item.kind));
        }
        // Trait-impl methods are as public as their trait: list them even
        // without an explicit `pub` (writing `pub` there is not legal Rust).
        for f in &items.fns {
            if f.is_test || f.trait_name.is_none() || f.self_ty.is_none() {
                continue;
            }
            if f.self_ty == f.trait_name {
                // A default body declared in the trait itself — the trait
                // entry already covers it.
                continue;
            }
            let mut parts: Vec<&str> = vec![items.crate_name.as_str()];
            parts.extend(items.base_modules.iter().map(String::as_str));
            parts.extend(f.modules.iter().map(String::as_str));
            let ty = f.self_ty.as_deref().unwrap_or_default();
            let tr = f.trait_name.as_deref().unwrap_or_default();
            parts.push(ty);
            parts.push(f.name.as_str());
            lines.insert(format!("{}  fn [impl {}]", parts.join("::"), tr));
        }
    }
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Diff the live surface against the committed baseline. Returns one `r4`
/// diagnostic per added/removed line, attached to `docs/api-surface.txt`.
pub fn check(live: &str, baseline: &str) -> Vec<Diagnostic> {
    let live_set: BTreeSet<&str> = live.lines().collect();
    let base_set: BTreeSet<&str> = baseline.lines().collect();
    let mut diags = Vec::new();
    let mut push = |message: String| {
        diags.push(Diagnostic {
            rule: "r4",
            file: "docs/api-surface.txt".to_string(),
            line: 1,
            col: 1,
            message,
            suppressed: None,
        });
    };
    for added in live_set.difference(&base_set) {
        push(format!("pub item not in the committed API-surface baseline: + {added}"));
    }
    for removed in base_set.difference(&live_set) {
        push(format!("baseline pub item no longer exists: - {removed}"));
    }
    diags
}

/// Render a `check` failure as a unified-style diff plus the regen
/// one-liner — what the CI step prints.
pub fn render_diff(live: &str, baseline: &str) -> String {
    let live_set: BTreeSet<&str> = live.lines().collect();
    let base_set: BTreeSet<&str> = baseline.lines().collect();
    let mut out = String::from("docs/api-surface.txt is stale — the public API surface changed:\n");
    for removed in base_set.difference(&live_set) {
        out.push_str(&format!("  - {removed}\n"));
    }
    for added in live_set.difference(&base_set) {
        out.push_str(&format!("  + {added}\n"));
    }
    out.push_str(
        "\nIf the change is intentional, regenerate and commit the baseline:\n  \
         cargo run -q -p analyze --bin mpcgs-analyze -- --api-surface > docs/api-surface.txt\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn surface_of(files: &[(&str, &str)]) -> String {
        let units =
            graph::units(files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect());
        surface(&units)
    }

    #[test]
    fn lists_pub_items_only_sorted() {
        let s = surface_of(&[(
            "crates/phylo/src/likelihood.rs",
            "pub struct Kernel;\nstruct Hidden;\npub(crate) fn internal() {}\npub fn score() {}\nimpl Kernel {\n    pub fn combine_rows(&self) {}\n    fn helper(&self) {}\n}\n",
        )]);
        assert_eq!(
            s,
            "phylo::likelihood::Kernel  struct\n\
             phylo::likelihood::Kernel::combine_rows  fn\n\
             phylo::likelihood::score  fn\n"
        );
    }

    #[test]
    fn trait_impl_methods_ride_their_trait() {
        let s = surface_of(&[(
            "crates/lamarc/src/sampler.rs",
            "pub trait GenealogySampler { fn step(&mut self); }\npub struct LamarcSampler;\nimpl GenealogySampler for LamarcSampler {\n    fn step(&mut self) {}\n}\n",
        )]);
        assert!(s.contains("lamarc::sampler::GenealogySampler  trait\n"));
        assert!(s.contains("lamarc::sampler::LamarcSampler::step  fn [impl GenealogySampler]\n"));
    }

    #[test]
    fn test_and_bin_crates_are_excluded() {
        let s = surface_of(&[
            ("tests/accuracy.rs", "pub fn harness() {}\n"),
            ("crates/bench/src/bin/perf.rs", "pub fn main_helper() {}\n"),
            ("crates/mcmc/src/lib.rs", "pub fn real() {}\n"),
        ]);
        assert_eq!(s, "mcmc::real  fn\n");
    }

    #[test]
    fn check_reports_adds_and_removes() {
        let live = "a::x  fn\nb::y  struct\n";
        let base = "a::x  fn\nc::z  fn\n";
        let diags = check(live, base);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "r4"));
        assert!(diags.iter().any(|d| d.message.contains("+ b::y  struct")));
        assert!(diags.iter().any(|d| d.message.contains("- c::z  fn")));
        assert!(check(live, live).is_empty());
        let diff = render_diff(live, base);
        assert!(diff.contains("+ b::y  struct"));
        assert!(diff.contains("- c::z  fn"));
        assert!(diff.contains("--api-surface > docs/api-surface.txt"));
    }
}
