//! The reachability rule families r1–r3: contracts on everything a root
//! function can *transitively* call, not just its own body.
//!
//! Each rule names a set of roots (by method, trait method, or free
//! function — see [`RootSpec`]), walks the resolved call graph from them,
//! and scans every reachable function body for rule-specific sink tokens.
//! Diagnostics land on the sink and carry the reachability chain, so the
//! reader sees *why* the function is in scope:
//!
//! ```text
//! crates/phylo/src/tables.rs:88:21: [r1] `.expect(...)` can panic in
//! `phylo::tables::NodeTable::parent`, reachable from
//! `mpcgs::session::SessionRunner::step` via mpcgs::session::SessionRunner::step
//! → phylo::likelihood::FelsensteinPruner::rescore_with_workspace → …
//! ```
//!
//! Because the graph only walks *resolved* edges, the cone is an
//! under-approximation: dyn-trait dispatch, function pointers, and
//! macro-generated calls do not extend it (documented false-negative
//! classes; see docs/ARCHITECTURE.md). The pay-off is that every diagnostic
//! is backed by a concrete, name-resolved chain — no speculative noise.

use crate::graph::{CallGraph, FileUnit};
use crate::lexer::TokenKind;
use crate::rules::RawDiag;

/// How a rule names its reachability roots.
pub enum RootSpec {
    /// An inherent or trait-impl method: `Type::name`.
    Method(&'static str, &'static str),
    /// Every impl of `Trait::name`, plus the trait's provided default.
    TraitMethod(&'static str, &'static str),
    /// A free function by name.
    FreeFn(&'static str),
}

/// r1 roots: the runner step path, the serve drain, and the checkpoint
/// codec — the paths whose panics break fault isolation or resume.
const R1_ROOTS: &[RootSpec] = &[
    RootSpec::Method("SessionRunner", "step"),
    RootSpec::Method("JobQueue", "run"),
    RootSpec::Method("JobQueue", "run_with"),
    RootSpec::Method("SessionCheckpoint", "to_json"),
    RootSpec::Method("SessionCheckpoint", "from_json"),
    RootSpec::Method("SessionCheckpoint", "parse"),
];

/// r2 roots: the SIMD combine kernel and the dirty-path rescore — the
/// per-site hot loop where a stray allocation costs throughput.
const R2_ROOTS: &[RootSpec] = &[
    RootSpec::Method("Kernel", "combine_rows"),
    RootSpec::Method("KernelVariant", "combine_rows"),
    RootSpec::FreeFn("combine_rows_f64x4"),
    RootSpec::Method("FelsensteinPruner", "rescore_with_workspace"),
];

/// r3 roots: every sampler step implementation plus the session runner —
/// observers and the CLI are the only sanctioned output seams.
const R3_ROOTS: &[RootSpec] =
    &[RootSpec::TraitMethod("GenealogySampler", "step"), RootSpec::Method("SessionRunner", "step")];

/// Macros whose expansion can panic.
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Methods that panic on the error/none arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Print/stdio macros (r3).
const PRINT_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

/// Resolve one rule's root node set.
fn roots(graph: &CallGraph, files: &[FileUnit], specs: &[RootSpec]) -> Vec<usize> {
    let mut out = Vec::new();
    for spec in specs {
        match spec {
            RootSpec::Method(ty, name) => out.extend(graph.find_method(files, ty, name)),
            RootSpec::TraitMethod(tr, name) => {
                out.extend(graph.find_trait_method(files, tr, name));
            }
            RootSpec::FreeFn(name) => out.extend(graph.find_free_fn(files, name)),
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether this file is test/driver code by location (mirrors the per-file
/// rules' axis): such functions neither root nor extend a cone.
fn is_test_file(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
        || !path.starts_with("crates/")
}

/// Run r1–r3 over the workspace graph, appending raw diagnostics into the
/// per-file buckets.
pub fn check_reachability(files: &[FileUnit], graph: &CallGraph, out: &mut [Vec<RawDiag>]) {
    for (rule, specs) in [("r1", R1_ROOTS), ("r2", R2_ROOTS), ("r3", R3_ROOTS)] {
        let root_set: Vec<usize> = roots(graph, files, specs)
            .into_iter()
            .filter(|&n| {
                let node = &graph.nodes[n];
                let f = &files[node.file].items.fns[node.item];
                !f.is_test && !is_test_file(&files[node.file].path)
            })
            .collect();
        let parents = graph.reachable_from(&root_set);
        for &node_id in parents.keys() {
            let node = &graph.nodes[node_id];
            let file = &files[node.file];
            if is_test_file(&file.path) {
                continue;
            }
            let f = &file.items.fns[node.item];
            if f.is_test {
                continue;
            }
            let Some((body_start, body_end)) = f.body else { continue };
            let chain = graph.chain(&parents, node_id);
            let via = if chain.len() == 1 {
                format!("`{}` is itself a protected root", chain[0])
            } else {
                format!("reachable from `{}` via {}", chain[0], chain.join(" → "))
            };
            let sinks = scan_sinks(rule, file, body_start, body_end);
            for s in sinks {
                out[node.file].push(RawDiag {
                    rule,
                    line: s.line,
                    col: s.col,
                    message: format!("{} in `{}`, {via}", s.what, node.key),
                });
            }
        }
    }
}

struct Sink {
    what: String,
    line: u32,
    col: u32,
}

/// Scan one body's significant tokens for `rule`'s sinks.
fn scan_sinks(rule: &str, file: &FileUnit, body_start: usize, body_end: usize) -> Vec<Sink> {
    let ctx = &file.ctx;
    let src = file.source.as_str();
    let end = body_end.min(ctx.sig.len().saturating_sub(1));
    let text = |si: usize| ctx.tokens[ctx.sig[si]].text(src);
    let kind = |si: usize| ctx.tokens[ctx.sig[si]].kind;
    let at = |si: usize| {
        let t = &ctx.tokens[ctx.sig[si]];
        (t.line, t.col)
    };
    let mut sinks = Vec::new();
    let mut push = |what: String, si: usize| {
        let (line, col) = at(si);
        sinks.push(Sink { what, line, col });
    };

    for si in body_start..=end {
        if kind(si) != TokenKind::Ident {
            // Slice-index heuristic (r1) triggers on `[`, handled below.
            if rule == "r1" && text(si) == "[" {
                if let Some(what) = risky_index(file, si, end) {
                    push(what, si);
                }
            }
            continue;
        }
        let name = text(si);
        let next = if si < end { text(si + 1) } else { "" };
        let prev = if si > 0 { text(si - 1) } else { "" };
        let is_macro = next == "!";
        let is_method = prev == "." && next == "(";
        let is_path_head = next == ":" && si + 2 <= end && text(si + 2) == ":";
        let path_tail = if is_path_head && si + 3 <= end { text(si + 3) } else { "" };

        match rule {
            "r1" => {
                if is_method && PANIC_METHODS.contains(&name) {
                    push(format!("`.{name}(...)` can panic"), si);
                } else if is_macro && PANIC_MACROS.contains(&name) {
                    push(format!("`{name}!` can panic"), si);
                }
            }
            "r2" => {
                if is_path_head && name == "Vec" && matches!(path_tail, "new" | "with_capacity") {
                    push(format!("`Vec::{path_tail}` allocates"), si);
                } else if is_path_head
                    && name == "String"
                    && matches!(path_tail, "new" | "from" | "with_capacity")
                {
                    push(format!("`String::{path_tail}` allocates"), si);
                } else if is_path_head && name == "Box" && path_tail == "new" {
                    push("`Box::new` allocates".to_string(), si);
                } else if is_macro && matches!(name, "vec" | "format") {
                    push(format!("`{name}!` allocates"), si);
                } else if is_method && matches!(name, "push" | "to_vec" | "to_string" | "to_owned")
                {
                    push(format!("`.{name}(...)` can allocate"), si);
                }
            }
            "r3" => {
                if is_macro && PRINT_MACROS.contains(&name) {
                    push(format!("`{name}!` writes to stdio"), si);
                } else if (name == "fs" && is_path_head)
                    || (is_path_head && name == "File" && matches!(path_tail, "open" | "create"))
                {
                    push("filesystem I/O".to_string(), si);
                } else if matches!(name, "stdin" | "stdout" | "stderr") && next == "(" {
                    push(format!("`{name}()` touches stdio"), si);
                }
            }
            _ => {}
        }
    }
    sinks
}

/// The r1 slice-index heuristic: flag `expr[i ± k]`-shaped indexing —
/// an index expression containing `+`/`-`/`*` arithmetic — because
/// off-by-one arithmetic is where unguarded indexing actually panics.
/// Plain `v[i]` and range slicing `v[a..b]` pass (flagging every index
/// would drown the signal; the trade is documented as a false-negative
/// class).
fn risky_index(file: &FileUnit, open: usize, end: usize) -> Option<String> {
    let ctx = &file.ctx;
    let src = file.source.as_str();
    let text = |si: usize| ctx.tokens[ctx.sig[si]].text(src);
    let kind = |si: usize| ctx.tokens[ctx.sig[si]].kind;
    // Only index positions: `[` must directly follow an ident, `]`, or `)`.
    if open == 0 {
        return None;
    }
    let prev_kind = kind(open - 1);
    let prev_text = text(open - 1);
    let indexes = matches!(prev_kind, TokenKind::Ident | TokenKind::RawIdent)
        || prev_text == "]"
        || prev_text == ")";
    if !indexes || prev_text == "#" {
        return None;
    }
    // `#[attr]` — the `[` after `#` never reaches here (prev is `#`), but
    // closures carrying attributes inside bodies do not either.
    let mut depth = 0usize;
    let mut has_arith = false;
    let mut si = open;
    while si <= end {
        let t = text(si);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "." if depth == 1 && si < end && text(si + 1) == "." => {
                // A range: slicing, not single-element indexing.
                return None;
            }
            // Arithmetic only between operands (`a - 1`, `i * 4`): a token
            // with no operand on its left is a unary deref (`v[*slot]`) or
            // sign, not index arithmetic.
            "+" | "*" | "-"
                if depth == 1
                    && si > open + 1
                    && (matches!(
                        kind(si - 1),
                        TokenKind::Ident | TokenKind::Int | TokenKind::RawIdent
                    ) || matches!(text(si - 1), ")" | "]")) =>
            {
                has_arith = true;
            }
            _ => {}
        }
        si += 1;
    }
    if has_arith {
        Some("unguarded arithmetic slice index can panic".to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn diags_for(files: &[(&str, &str)]) -> Vec<(String, String)> {
        let units =
            graph::units(files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect());
        let g = graph::build(&units);
        let mut out: Vec<Vec<RawDiag>> = vec![Vec::new(); units.len()];
        check_reachability(&units, &g, &mut out);
        let mut flat = Vec::new();
        for (fi, diags) in out.iter().enumerate() {
            for d in diags {
                flat.push((d.rule.to_string(), format!("{}: {}", units[fi].path, d.message)));
            }
        }
        flat
    }

    #[test]
    fn r1_fires_transitively_with_chain() {
        let diags = diags_for(&[(
            "crates/mpcgs/src/session.rs",
            "pub struct SessionRunner;\nimpl SessionRunner {\n    pub fn step(&mut self) { helper(); }\n}\nfn helper() { inner(); }\nfn inner(x: Option<u32>) { x.unwrap(); }\nfn unreached(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        let r1: Vec<&String> = diags.iter().filter(|(r, _)| r == "r1").map(|(_, m)| m).collect();
        assert_eq!(r1.len(), 1, "{diags:?}");
        assert!(r1[0].contains("`.unwrap(...)` can panic"));
        assert!(r1[0].contains("reachable from `mpcgs::session::SessionRunner::step`"));
        assert!(r1[0].contains("via mpcgs::session::SessionRunner::step → mpcgs::session::helper → mpcgs::session::inner"));
    }

    #[test]
    fn r1_flags_roots_themselves_and_arith_indexing() {
        let diags = diags_for(&[(
            "crates/mpcgs/src/session.rs",
            "pub struct SessionRunner;\nimpl SessionRunner {\n    pub fn step(&mut self, v: &[u32], i: usize) { let _ = v[i - 1]; let _ = v[i]; let _ = &v[1..3]; }\n}\n",
        )]);
        let r1: Vec<&String> = diags.iter().filter(|(r, _)| r == "r1").map(|(_, m)| m).collect();
        assert_eq!(r1.len(), 1, "{diags:?}");
        assert!(r1[0].contains("unguarded arithmetic slice index"));
        assert!(r1[0].contains("is itself a protected root"));
    }

    #[test]
    fn r2_flags_allocation_in_the_kernel_cone() {
        let diags = diags_for(&[(
            "crates/phylo/src/likelihood.rs",
            "pub struct Kernel;\nimpl Kernel {\n    pub fn combine_rows(&self) { stage(); }\n}\nfn stage() { let mut v = Vec::new(); v.push(1); let s = format!(\"x\"); }\n",
        )]);
        let r2: Vec<&String> = diags.iter().filter(|(r, _)| r == "r2").map(|(_, m)| m).collect();
        assert_eq!(r2.len(), 3, "{diags:?}");
        assert!(r2.iter().any(|m| m.contains("`Vec::new` allocates")));
        assert!(r2.iter().any(|m| m.contains("`.push(...)` can allocate")));
        assert!(r2.iter().any(|m| m.contains("`format!` allocates")));
    }

    #[test]
    fn r3_flags_io_from_sampler_steps_across_impls() {
        let diags = diags_for(&[
            (
                "crates/lamarc/src/run.rs",
                "pub trait GenealogySampler { fn step(&mut self); }\n",
            ),
            (
                "crates/mpcgs/src/sampler.rs",
                "use lamarc::run::GenealogySampler;\npub struct MultiProposalSampler;\nimpl GenealogySampler for MultiProposalSampler {\n    fn step(&mut self) { trace(); }\n}\nfn trace() { println!(\"tick\"); let _ = std::fs::read(\"x\"); }\n",
            ),
        ]);
        let r3: Vec<&String> = diags.iter().filter(|(r, _)| r == "r3").map(|(_, m)| m).collect();
        assert_eq!(r3.len(), 2, "{diags:?}");
        assert!(r3.iter().any(|m| m.contains("`println!` writes to stdio")));
        assert!(r3.iter().any(|m| m.contains("filesystem I/O")));
    }

    #[test]
    fn test_code_neither_roots_nor_extends_cones() {
        let diags = diags_for(&[(
            "crates/mpcgs/src/session.rs",
            "pub struct SessionRunner;\nimpl SessionRunner {\n    pub fn step(&mut self) {}\n}\n#[cfg(test)]\nmod tests {\n    impl super::SessionRunner { pub fn step_test(&mut self) { None::<u32>.unwrap(); } }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unrelated_code_is_out_of_scope() {
        let diags = diags_for(&[(
            "crates/bench/src/lib.rs",
            "pub fn driver(x: Option<u32>) { x.unwrap(); println!(\"ok\"); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
