//! `mpcgs-analyze` — the workspace invariant linter.
//!
//! The sampler's strongest guarantees — bit-identical checkpoint/resume,
//! deterministic MC³ ensembles, the differential op-tape oracle — rest on
//! conventions the compiler cannot check: no unordered-map iteration in
//! sampler/codec paths, `unsafe` only inside `phylo::simd::dispatch`, raw
//! threads only under the `Backend` seam, no wall-clock reads in sampler
//! state, no bare float equality, RNG streams only via `StreamBank`. This
//! crate makes those conventions machine-checked: a small lossless Rust
//! lexer ([`lexer`]), per-file context extraction ([`context`]), and a rule
//! registry ([`rules`]) producing pointed `file:line:col` diagnostics
//! ([`diag::Diagnostic`]).
//!
//! Violations that are correct by construction carry an inline pragma with
//! a mandatory written reason:
//!
//! ```text
//! // mpcgs-analyze: allow(d5, reason = "sentinel is exact by construction")
//! ```
//!
//! Like the rest of the workspace tooling, the crate is dependency-free
//! (JSON output rides [`codec`], the shared serde-free codec). Run it as
//! `cargo run -p analyze --bin mpcgs-analyze`; see `--explain <rule>` for
//! each invariant's rationale and docs/ARCHITECTURE.md, "Static analysis &
//! invariants", for the full story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod context;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod reach;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use codec::Json;

use context::FileContext;
use diag::Diagnostic;

/// Directories never scanned: build output, VCS, and the linter's own
/// seeded-violation fixture corpus.
const SKIP_RELATIVE: &[&str] = &["target", ".git", "crates/analyze/tests/fixtures"];

/// Analyze one file's source under its workspace-relative path, applying
/// pragmas and appending the pragma meta-diagnostics.
///
/// Runs the per-file rules *and* the graph rules (r1–r3) over this single
/// file — fixtures seed self-contained roots, so reachability works on one
/// file too. For cross-crate reachability use [`analyze_files`].
pub fn analyze_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let mut report = analyze_files(vec![(path.to_string(), source.to_string())]);
    std::mem::take(&mut report.diagnostics)
}

/// Analyze a set of `(workspace-relative path, source)` files as one unit:
/// per-file token rules, then the workspace call graph and the r1–r3
/// reachability rules, then per-file pragma application.
pub fn analyze_files(files: Vec<(String, String)>) -> Report {
    let units = graph::units(files);
    let files_scanned = units.len();
    let mut raw_per_file: Vec<Vec<rules::RawDiag>> = units
        .iter()
        .map(|u| {
            let mut raw = Vec::new();
            rules::check_all(&u.path, &u.source, &u.ctx, &mut raw);
            raw
        })
        .collect();
    let call_graph = graph::build(&units);
    reach::check_reachability(&units, &call_graph, &mut raw_per_file);
    let mut diagnostics = Vec::new();
    for (unit, raw) in units.iter().zip(raw_per_file) {
        diagnostics.extend(apply_pragmas(&unit.path, &unit.ctx, raw));
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Report { files_scanned, diagnostics }
}

/// Apply a file's suppression pragmas to its raw diagnostics and append
/// the pragma meta-diagnostics (unknown rule, unused pragma, parse error).
fn apply_pragmas(path: &str, ctx: &FileContext, raw: Vec<rules::RawDiag>) -> Vec<Diagnostic> {
    let mut used = vec![false; ctx.pragmas.len()];
    let mut diags: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let suppressed = ctx
            .pragmas
            .iter()
            .enumerate()
            .find(|(_, p)| p.rule == d.rule && p.target_line == d.line)
            .map(|(pi, p)| {
                used[pi] = true;
                p.reason.clone()
            });
        diags.push(Diagnostic {
            rule: d.rule,
            file: path.to_string(),
            line: d.line,
            col: d.col,
            message: d.message,
            suppressed,
        });
    }
    for e in &ctx.pragma_errors {
        diags.push(Diagnostic {
            rule: "pragma",
            file: path.to_string(),
            line: e.line,
            col: e.col,
            message: e.message.clone(),
            suppressed: None,
        });
    }
    for (pi, p) in ctx.pragmas.iter().enumerate() {
        let message = if rules::rule(&p.rule).is_none() {
            format!("pragma names unknown rule `{}` (see --list for the registry)", p.rule)
        } else if !used[pi] {
            format!(
                "unused pragma: no `{}` diagnostic on line {} to suppress — remove the \
                 stale exemption",
                p.rule, p.target_line
            )
        } else {
            continue;
        };
        diags.push(Diagnostic {
            rule: "pragma",
            file: path.to_string(),
            line: p.line,
            col: p.col,
            message,
            suppressed: None,
        });
    }
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

/// The result of analyzing a whole workspace.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All diagnostics, sorted by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// The diagnostics no pragma suppressed — these fail CI.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_none())
    }

    /// The pragma-suppressed diagnostics (each carries its written reason).
    pub fn suppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_some())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "mpcgs-analyze: {} file(s) scanned, {} diagnostic(s), {} suppressed by pragma",
            self.files_scanned,
            self.unsuppressed().count(),
            self.suppressed().count()
        )
    }

    /// The `mpcgs-analyze/v1` JSON artifact.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("format".to_string(), Json::string("mpcgs-analyze/v1")),
            ("files_scanned".to_string(), Json::Number(self.files_scanned as f64)),
            ("unsuppressed_count".to_string(), Json::Number(self.unsuppressed().count() as f64)),
            ("suppressed_count".to_string(), Json::Number(self.suppressed().count() as f64)),
            (
                "diagnostics".to_string(),
                Json::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

/// Analyze every workspace `.rs` file under `root` as one unit, so the
/// r1–r3 reachability cones cross crate boundaries.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    Ok(analyze_files(read_workspace(root)?))
}

/// Read every workspace `.rs` file under `root` into `(relative path,
/// source)` pairs, in deterministic (sorted) order.
pub fn read_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    workspace_files(root)?
        .into_iter()
        .map(|(rel, abs)| Ok((rel, fs::read_to_string(&abs)?)))
        .collect()
}

/// Every `.rs` file under `root` in deterministic (sorted) order, as
/// `(workspace-relative path, absolute path)` pairs.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = relative(root, &path);
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_RELATIVE.contains(&rel.as_str()) || name == "target" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push((rel, path));
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_suppresses_exactly_its_rule_and_line() {
        let src = "use std::collections::HashMap; // mpcgs-analyze: allow(d1, reason = \"lookup only\")\nuse std::collections::HashSet;\n";
        let diags = analyze_source("crates/phylo/src/patterns.rs", src);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].suppressed.as_deref(), Some("lookup only"));
        assert!(diags[1].suppressed.is_none());
    }

    #[test]
    fn standalone_pragma_covers_the_next_code_line() {
        let src =
            "// mpcgs-analyze: allow(d6, reason = \"root seeding\")\nlet rng = Mt19937::new(1);\n";
        let diags = analyze_source("crates/mpcgs/src/session.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed.is_some());
    }

    #[test]
    fn unused_and_unknown_pragmas_are_diagnostics() {
        let src = "// mpcgs-analyze: allow(d1, reason = \"nothing here\")\nlet x = 1;\n// mpcgs-analyze: allow(d99, reason = \"no such rule\")\nlet y = 2;\n";
        let diags = analyze_source("crates/phylo/src/patterns.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "pragma" && d.suppressed.is_none()));
        assert!(diags[0].message.contains("unused pragma"));
        assert!(diags[1].message.contains("unknown rule `d99`"));
    }

    #[test]
    fn wrong_rule_pragma_does_not_suppress() {
        let src =
            "use std::collections::HashMap; // mpcgs-analyze: allow(d5, reason = \"wrong rule\")\n";
        let diags = analyze_source("crates/phylo/src/patterns.rs", src);
        // The d1 diagnostic survives and the d5 pragma is unused.
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.rule == "d1" && d.suppressed.is_none()));
        assert!(diags.iter().any(|d| d.rule == "pragma" && d.message.contains("unused")));
    }

    #[test]
    fn report_json_shape() {
        let report = Report {
            files_scanned: 3,
            diagnostics: analyze_source(
                "crates/phylo/src/patterns.rs",
                "use std::collections::HashMap;\n",
            ),
        };
        let json = report.to_json();
        assert_eq!(json.get("format").and_then(Json::as_str), Some("mpcgs-analyze/v1"));
        assert_eq!(json.get("unsuppressed_count").and_then(Json::as_f64), Some(1.0));
        let text = json.to_pretty();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed, json);
    }
}
