//! Golden tests over the seeded-violation fixture corpus, plus the
//! workspace self-check.
//!
//! Each `tests/fixtures/<rule>.rs` file seeds violations of exactly one
//! rule (and, where natural, a non-violation showing the exemption). The
//! file is analyzed under a synthetic workspace-relative path that puts it
//! in the rule's scope, and the rendered diagnostics are compared
//! line-for-line against `tests/fixtures/<rule>.expected`.
//!
//! After an intentional rule change, regenerate the goldens with
//! `MPCGS_REGEN_FIXTURES=1 cargo test -p analyze --test fixtures` and
//! review the diff — the same knob the checkpoint-format fixtures use.
//!
//! The fixtures directory is excluded from `analyze_workspace`'s walk, so
//! the seeded violations never pollute the self-check below.

use std::fs;
use std::path::{Path, PathBuf};

use analyze::diag::Diagnostic;

/// `(fixture stem, synthetic workspace-relative path it is analyzed under)`.
/// The paths place each fixture inside its rule's scope: determinism paths
/// for d1/d5/d6, a crate root for d2, and non-allowlisted crates for d3/d4.
const FIXTURES: &[(&str, &str)] = &[
    ("d1", "crates/phylo/src/fixture.rs"),
    ("d2", "crates/mcmc/src/lib.rs"),
    ("d3", "crates/mcmc/src/fixture.rs"),
    ("d4", "crates/mpcgs/src/fixture.rs"),
    ("d5", "crates/mcmc/src/fixture.rs"),
    ("d6", "crates/lamarc/src/fixture.rs"),
    ("r1", "crates/mpcgs/src/fixture.rs"),
    ("r2", "crates/phylo/src/fixture.rs"),
    ("r3", "crates/lamarc/src/fixture.rs"),
    ("r4", "crates/phylo/src/fixture.rs"),
    ("pragma", "crates/phylo/src/fixture.rs"),
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render_all(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

#[test]
fn fixture_corpus_matches_goldens() {
    let dir = fixtures_dir();
    let regen = std::env::var_os("MPCGS_REGEN_FIXTURES").is_some();
    let mut divergences = Vec::new();
    for (stem, synthetic_path) in FIXTURES {
        let source = fs::read_to_string(dir.join(format!("{stem}.rs"))).unwrap();
        // r4 is a workspace-surface gate, not a per-file token rule: its
        // diagnostics come from diffing the fixture's api::surface against
        // an empty baseline — one `r4` line per pub item, exactly what CI
        // prints when docs/api-surface.txt is stale.
        let diags = if *stem == "r4" {
            let units = analyze::graph::units(vec![(synthetic_path.to_string(), source.clone())]);
            analyze::api::check(&analyze::api::surface(&units), "")
        } else {
            analyze::analyze_source(synthetic_path, &source)
        };
        assert!(
            diags.iter().any(|d| d.rule == *stem),
            "fixture {stem} fired no `{stem}` diagnostic:\n{}",
            render_all(&diags)
        );
        let rendered = render_all(&diags);
        let golden_path = dir.join(format!("{stem}.expected"));
        if regen {
            fs::write(&golden_path, &rendered).unwrap();
            continue;
        }
        let golden = fs::read_to_string(&golden_path).unwrap_or_default();
        if rendered != golden {
            divergences.push(format!("fixture {stem}: expected\n{golden}\ngot\n{rendered}"));
        }
    }
    assert!(
        divergences.is_empty(),
        "{}\nrun `MPCGS_REGEN_FIXTURES=1 cargo test -p analyze --test fixtures` \
         and review the diff",
        divergences.join("\n---\n")
    );
}

/// Every rule in the registry has a seeded-violation fixture, and every
/// fixture names a registered rule — the corpus and the registry cannot
/// drift apart silently.
#[test]
fn corpus_covers_the_whole_registry() {
    let fixture_stems: Vec<&str> = FIXTURES.iter().map(|(s, _)| *s).collect();
    for rule in analyze::rules::RULES {
        assert!(
            fixture_stems.contains(&rule.id),
            "rule `{}` has no fixture under tests/fixtures/",
            rule.id
        );
    }
    for stem in &fixture_stems {
        assert!(analyze::rules::rule(stem).is_some(), "fixture `{stem}` names no registered rule");
    }
}

/// The linter runs clean on the actual workspace: zero unsuppressed
/// diagnostics, and every suppression carries a written reason.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let report = analyze::analyze_workspace(&root).unwrap();
    let offenders: Vec<String> = report.unsuppressed().map(Diagnostic::render).collect();
    assert!(
        offenders.is_empty(),
        "workspace has unsuppressed mpcgs-analyze diagnostics:\n{}",
        offenders.join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — did the walk break?",
        report.files_scanned
    );
    for d in report.suppressed() {
        let reason = d.suppressed.as_deref().unwrap_or_default();
        assert!(!reason.trim().is_empty(), "{}: empty suppression reason", d.render());
    }
    // Zero unsuppressed reachability findings is the r1–r3 gate; the
    // suppressed set must still CONTAIN r1/r2 findings (the workspace's
    // written-reason pragmas), or the call graph silently stopped
    // resolving roots and the gate above passed vacuously.
    assert!(
        report.unsuppressed().all(|d| !matches!(d.rule, "r1" | "r2" | "r3")),
        "unsuppressed reachability findings survived the gate"
    );
    for rule in ["r1", "r2"] {
        assert!(
            report.suppressed().any(|d| d.rule == rule),
            "no suppressed `{rule}` findings in the workspace — did root resolution break?"
        );
    }
}

/// The committed API-surface baseline matches the live listing, so drift
/// fails `cargo test` locally with the same regen one-liner CI prints.
#[test]
fn api_surface_baseline_is_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let files = analyze::read_workspace(&root).unwrap();
    let live = analyze::api::surface(&analyze::graph::units(files));
    let baseline = fs::read_to_string(root.join("docs/api-surface.txt")).unwrap_or_default();
    if analyze::api::check(&live, &baseline).is_empty() {
        return;
    }
    if std::env::var_os("MPCGS_REGEN_FIXTURES").is_some() {
        fs::write(root.join("docs/api-surface.txt"), &live).unwrap();
        return;
    }
    panic!("{}", analyze::api::render_diff(&live, &baseline));
}
