//! Seeded `d6` violations: ad-hoc `Mt19937` construction outside
//! `mcmc::rng`. Every stream must be checkpoint-accounted: chain/swap
//! streams come from `StreamBank`, the host RNG from `mcmc::rng::host_rng`.

use mcmc::rng::Mt19937;

fn fresh() -> Mt19937 {
    Mt19937::new(4357)
}

fn reseeded() -> Mt19937 {
    Mt19937::seed_from_u64(99)
}
