//! Seeded `d1` violations: unordered collections in a determinism path.
//! Analyzed under a synthetic `crates/phylo/src/` path by the golden test.

use std::collections::HashMap;
use std::collections::HashSet;

fn index(keys: &[u32]) -> HashMap<u32, usize> {
    let mut map = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        map.insert(*k, i);
    }
    map
}

fn dedup(keys: &[u32]) -> usize {
    keys.iter().collect::<HashSet<_>>().len()
}

#[cfg(test)]
mod tests {
    // Exempt: test code may use unordered collections freely.
    use std::collections::HashSet;

    #[test]
    fn scratch() {
        let _ = HashSet::<u32>::new();
    }
}
