//! Seeded `d3` violations: raw thread spawning outside `crates/exec`.
//! Parallelism belongs behind the `Backend` seam (`map_mut`/`map_grid`).

fn fan_out(xs: &mut [f64]) {
    std::thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(|| *x += 1.0);
        }
    });
}

fn detach() -> i32 {
    let handle = std::thread::spawn(|| 42);
    handle.join().unwrap()
}
