//! Seeded `d2` violations: a crate root missing `#![deny(unsafe_code)]`,
//! an `#[allow(unsafe_code)]` escape hatch, and an `unsafe` block outside
//! the allowlisted `phylo::simd::dispatch` module. Analyzed under a
//! synthetic `crates/*/src/lib.rs` path by the golden test.

#[allow(unsafe_code)]
fn peek(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
