//! Seeded r1 violations: panics reachable from `SessionRunner::step`.
//!
//! `step` calls `helper`, which calls `deep` — the `.unwrap()`, `panic!`,
//! and arithmetic index inside that cone all fire, each diagnostic carrying
//! the reachability chain. `outside` is not reachable from any r1 root, so
//! its `.unwrap()` shows the cone is bounded. The suppressed `.expect` at
//! the end shows a written-reason pragma in action.

pub struct SessionRunner;

impl SessionRunner {
    pub fn step(&mut self) -> bool {
        helper(Some(1));
        true
    }
}

fn helper(x: Option<u32>) {
    deep(x);
}

fn deep(x: Option<u32>) {
    let v = [1u32, 2, 3];
    let i = x.unwrap() as usize;
    if i > 0 {
        panic!("value {} out of range", v[i - 1]);
    }
    // mpcgs-analyze: allow(r1, reason = "sentinel checked by the branch above")
    let _ = x.expect("checked above");
}

/// Not reachable from `step`: no diagnostic, showing the cone is bounded.
pub fn outside(x: Option<u32>) -> u32 {
    x.unwrap()
}
