//! Seeded r4 surface: the pub items below must appear in the normalised
//! API-surface listing; the private ones must not.
//!
//! This fixture is checked differently from r1–r3: the harness computes
//! `api::surface` over the file and diffs it against an empty baseline via
//! `api::check`, so the golden records one `r4` diagnostic per pub item —
//! exactly what CI reports when `docs/api-surface.txt` is stale.

pub struct Exposed;

impl Exposed {
    pub fn visible(&self) {}
    fn hidden(&self) {}
}

pub trait Surface {
    fn required(&self);
}

impl Surface for Exposed {
    fn required(&self) {}
}

pub fn free() {}

pub(crate) fn internal() {}

struct Private;

pub const LIMIT: usize = 8;

pub mod nested {
    pub fn inner() {}
}
