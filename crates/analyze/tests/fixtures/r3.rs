//! Seeded r3 violations: I/O reachable from a sampler `step` impl.
//!
//! The `GenealogySampler::step` impl calls `trace`, whose `println!` and
//! `std::fs` call both fire. The `RunObserver`-style seam below escapes by
//! construction: `dyn` dispatch is an unresolved edge the graph refuses to
//! traverse, so `observe` extends no cone even though a step calls it.

pub trait GenealogySampler {
    fn step(&mut self) -> bool;
}

pub struct FixtureSampler;

impl GenealogySampler for FixtureSampler {
    fn step(&mut self) -> bool {
        trace("tick");
        false
    }
}

fn trace(message: &str) {
    println!("{message}");
    let _ = std::fs::read("progress.log");
}

/// The sanctioned seam: stdout via an observer trait object. The call is
/// dyn-dispatched, so the graph records it as unresolved instead of
/// extending the step cone into the printer.
pub trait Observer {
    fn on_event(&mut self, message: &str);
}

pub struct StdoutObserver;

impl Observer for StdoutObserver {
    fn on_event(&mut self, message: &str) {
        println!("{message}");
    }
}
