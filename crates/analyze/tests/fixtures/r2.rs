//! Seeded r2 violations: allocation reachable from `Kernel::combine_rows`.
//!
//! The kernel root calls `stage`, whose `Vec::new`, `.push`, and `format!`
//! all fire with the chain. `cold_path` is outside the kernel cone, so its
//! allocations pass — allocation is only banned where the per-site loop
//! pays for it.

pub struct Kernel;

impl Kernel {
    pub fn combine_rows(&self, rows: &mut [f64]) {
        stage(rows);
    }
}

fn stage(rows: &mut [f64]) {
    let mut scratch = Vec::new();
    scratch.push(rows.len());
    let _label = format!("{} rows", rows.len());
}

/// Outside the kernel cone: allocation here is fine.
pub fn cold_path(n: usize) -> Vec<usize> {
    let mut v = Vec::new();
    v.push(n);
    v
}
