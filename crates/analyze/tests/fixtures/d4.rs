//! Seeded `d4` violations: wall-clock reads in a sampler-state path.
//! Timing belongs in bench/serve reporting, never in anything a draw
//! depends on.

fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    workload();
    t0.elapsed().as_secs_f64()
}

fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn workload() {}
