//! Seeded `d5` violations: bare float equality outside test code.
//! The sanctioned spelling compares bit patterns, as `EdgeMatrixCache`
//! keying does.

fn same(a: f64, b: f64) -> bool {
    a == 1.0 || b != 0.5
}

fn overflowed(x: f64) -> bool {
    x == f64::INFINITY
}

fn keyed(a: f64, b: f64) -> bool {
    // Not a violation: the bit-pattern comparison is the sanctioned form.
    a.to_bits() == b.to_bits()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_assertions_are_fine_in_tests() {
        assert!(super::same(1.0, 1.0));
        let x = 0.25;
        assert!(x == 0.25);
        assert!(super::keyed(x, x));
    }
}
