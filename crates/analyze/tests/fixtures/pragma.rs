//! Seeded pragma mechanics: one correct suppression plus every failure
//! mode the `pragma` meta-rule reports.

// A used pragma: suppresses the d1 diagnostic below, recording its reason.
// mpcgs-analyze: allow(d1, reason = "lookup-only scratch map; never iterated")
use std::collections::HashMap;

// An unused pragma: nothing on the next line fires d4.
// mpcgs-analyze: allow(d4, reason = "stale exemption")
fn quiet() {}

// An unknown rule name.
// mpcgs-analyze: allow(d99, reason = "no such rule")
fn unknown() {}

// A pragma with no reason: the reason is mandatory, so this suppresses
// nothing and is itself reported.
// mpcgs-analyze: allow(d1)
use std::collections::HashSet;
