//! Criterion microbenchmarks of the data-likelihood kernel (the hot loop of
//! the whole system, Section 5.2.2): serial versus site-parallel Felsenstein
//! pruning, and scaling with sequence length and sequence count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use benchkit::{harness_rng, simulate_alignment};
use phylo::likelihood::ExecutionMode;
use phylo::model::F81;
use phylo::{upgma_tree, FelsensteinPruner};

fn bench_pruning_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("felsenstein_pruning");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-lik", 0);
    for &sites in &[200usize, 1_000] {
        let alignment = simulate_alignment(&mut rng, 1.0, 12, sites);
        let tree = upgma_tree(&alignment, 1.0).unwrap();
        for (label, mode) in
            [("serial", ExecutionMode::Serial), ("site_parallel", ExecutionMode::Parallel)]
        {
            let engine =
                FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()))
                    .with_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, sites), &tree, |b, tree| {
                b.iter(|| engine.log_likelihood(tree).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_pruning_vs_sequences(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_vs_sequences");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-lik-seqs", 0);
    for &n in &[12usize, 48] {
        let alignment = simulate_alignment(&mut rng, 1.0, n, 200);
        let tree = upgma_tree(&alignment, 1.0).unwrap();
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| engine.log_likelihood(tree).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning_modes, bench_pruning_vs_sequences);
criterion_main!(benches);
