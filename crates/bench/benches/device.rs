//! Figure 14–16 regeneration from *measured* operation counts: the same
//! sampler runs that previously only fed the analytic `SpeedupModel` are
//! executed end to end on `Backend::Device`, and the speedup curves are
//! rebuilt from what the `exec::device::Queue` actually accounted — kernel
//! launches, logical (proposal × site) threads, occupancy, register-spill
//! traffic — rather than from workload arithmetic.
//!
//! Three sweeps, one per figure, each over deliberately small chains so the
//! harness doubles as a CI smoke:
//!
//! * **Figure 14** — speedup versus chain length: the fixed device
//!   initialisation charge amortises, so the curve rises gently.
//! * **Figure 15** — speedup versus tree size: the device recomputes every
//!   node per thread while the host baseline updates the O(log n) dirty
//!   path, and big trees spill past the register budget, so the curve
//!   declines.
//! * **Figure 16** — speedup versus sequence length: more sites mean more
//!   resident (proposal, site) threads hiding memory latency, so the curve
//!   rises until occupancy saturates.
//!
//! Requires `--features device`:
//! `cargo bench -p benchkit --features device --bench device`.

use benchkit::{harness_rng, render_table, simulate_alignment};
use exec::{Backend, DeviceReport, DeviceSpec, Queue};
use mcmc::rng::Mt19937;
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
use phylo::{Alignment, Sequence};

/// The leading `sites` columns of an alignment, so a sequence-length sweep
/// is *nested* (every point shares one simulated genealogy and one site
/// history) instead of comparing unrelated random data sets.
fn truncated(alignment: &Alignment, sites: usize) -> Alignment {
    let sequences = alignment
        .sequences()
        .iter()
        .map(|s| Sequence::new(s.name(), s.bases()[..sites].to_vec()))
        .collect();
    Alignment::new(sequences).expect("truncation preserves validity")
}

/// One measured run on the device backend: run a single chain over the
/// given alignment, return this run's queue accounting as a report.
fn measured_report_for(spec: DeviceSpec, alignment: Alignment, samples: usize) -> DeviceReport {
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        burn_in_draws: samples / 4,
        sample_draws: samples,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        backend: Backend::device(spec),
        ..MpcgsConfig::default()
    };
    let mut session = Session::builder()
        .alignment(alignment)
        .strategy(SamplerStrategy::MultiProposal)
        .config(config)
        .build()
        .expect("valid device session");
    let baseline = Queue::stats();
    session.run_chain(&mut Mt19937::new(1)).expect("device chain runs");
    DeviceReport::new(spec, Queue::stats().delta(&baseline))
}

/// Simulate fresh data and run one measured chain over it.
fn measured_report(
    spec: DeviceSpec,
    n_sequences: usize,
    sequence_length: usize,
    samples: usize,
) -> DeviceReport {
    let mut rng = harness_rng("bench-device", (n_sequences * sequence_length + samples) as u64);
    let alignment = simulate_alignment(&mut rng, 1.0, n_sequences, sequence_length);
    measured_report_for(spec, alignment, samples)
}

fn row(x: usize, report: &DeviceReport, speedup: f64) -> Vec<String> {
    vec![
        x.to_string(),
        report.stats.launches.to_string(),
        format!("{:.2}M", report.stats.logical_threads as f64 / 1.0e6),
        format!("{:.1}%", report.mean_occupancy() * 100.0),
        format!("{:.2}", report.modelled_device_us() / 1_000.0),
        format!("{:.2}", report.modelled_host_us / 1_000.0),
        format!("{:.3}", speedup),
    ]
}

const HEADERS: [&str; 7] =
    ["x", "launches", "threads", "occupancy", "device ms", "host ms", "speedup"];

fn assert_monotone(label: &str, speedups: &[f64], rising: bool) {
    let ordered = speedups.windows(2).all(|w| if rising { w[1] > w[0] } else { w[1] < w[0] });
    assert!(
        ordered,
        "{label}: expected a {} curve, measured {speedups:?}",
        if rising { "rising" } else { "declining" }
    );
}

fn main() {
    let spec = DeviceSpec::kepler();

    // Figure 14: speedup versus chain length (samples per chain), with the
    // fixed initialisation charge included — amortising it is the effect.
    // One simulated data set serves every point, so only the chain length
    // varies (not the pattern counts of unrelated random alignments).
    let mut fig14_rng = harness_rng("bench-device-fig14", 0);
    let fig14_data = simulate_alignment(&mut fig14_rng, 1.0, 8, 100);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &samples in &[100usize, 200, 400, 800] {
        let report = measured_report_for(spec, fig14_data.clone(), samples);
        speedups.push(report.modelled_speedup());
        rows.push(row(samples, &report, report.modelled_speedup()));
    }
    println!(
        "{}",
        render_table("Figure 14 (measured): speedup vs samples per chain", &HEADERS, &rows)
    );
    assert_monotone("figure 14", &speedups, true);

    // Figures 15 and 16 are measured in the paper at 20k+ samples, where the
    // init charge is long amortised, so they use the sustained per-launch
    // rate (`kernel_speedup`) the smoke-sized chains approach.
    //
    // Figure 15: speedup versus tree size (number of sequences). Long loci
    // keep each launch kernel-bound so the per-thread full-recompute vs
    // dirty-path asymmetry (and register spill past 64 nodes) shows; the
    // sweep starts past the handful-of-sequences regime where occupancy
    // gains still dominate (the paper's own sweep starts at 12).
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &n_sequences in &[16usize, 32, 64, 96] {
        let report = measured_report(spec, n_sequences, 500, 200);
        speedups.push(report.kernel_speedup());
        rows.push(row(n_sequences, &report, report.kernel_speedup()));
    }
    println!("{}", render_table("Figure 15 (measured): speedup vs sequences", &HEADERS, &rows));
    assert_monotone("figure 15", &speedups, false);

    // Figure 16: speedup versus sequence length — more resident
    // (proposal, site) threads hide memory latency and amortise the launch
    // overhead. The sweep is nested: one simulated 800 bp data set, each
    // point scoring its leading prefix, so only the length varies.
    let mut fig16_rng = harness_rng("bench-device-fig16", 0);
    let full = simulate_alignment(&mut fig16_rng, 1.0, 8, 800);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &length in &[50usize, 100, 200, 400, 800] {
        let report = measured_report_for(spec, truncated(&full, length), 200);
        speedups.push(report.kernel_speedup());
        rows.push(row(length, &report, report.kernel_speedup()));
    }
    println!(
        "{}",
        render_table("Figure 16 (measured): speedup vs sequence length", &HEADERS, &rows)
    );
    assert_monotone("figure 16", &speedups, true);

    // The same measured counts on a modern-generation card, for scale.
    let modern = measured_report(DeviceSpec::modern(), 8, 400, 200);
    println!("modern preset, 8 seq x 400 bp x 200 samples:\n{}\n", modern.summary());

    println!("device bench: all three measured curves match the paper's qualitative shapes");
}
