//! Criterion benchmarks of the two sampler strategies: cost per retained
//! genealogy sample for the single-proposal baseline and the multi-proposal
//! sampler at several proposal-set sizes (the wall-clock counterpart of
//! Tables 2–4; the modelled speedups live in the table harness binaries).
//!
//! Both strategies are built through the `Session` facade but the engine and
//! the starting genealogy are constructed once outside the timing loop, so
//! the measurement covers sampling work only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use benchkit::{harness_rng, simulate_alignment};
use exec::Backend;
use lamarc::run::NullObserver;
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};

const SAMPLES_PER_RUN: usize = 200;

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_sampler");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-baseline", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 12, 200);
    let config = MpcgsConfig {
        initial_theta: 1.0,
        burn_in_draws: 0,
        sample_draws: SAMPLES_PER_RUN,
        ..MpcgsConfig::default()
    };
    let session = Session::builder()
        .alignment(alignment)
        .strategy(SamplerStrategy::Baseline)
        .config(config)
        .build()
        .unwrap();
    let mut sampler = session.make_sampler(config.initial_theta).unwrap();
    let initial = session.starting_tree().unwrap();
    group.bench_function("200_samples_12seq_200bp", |b| {
        b.iter(|| {
            let mut run_rng = harness_rng("bench-baseline-run", 1);
            sampler.run(initial.clone(), &mut run_rng, &mut NullObserver).unwrap()
        })
    });
    group.finish();
}

fn bench_multiproposal(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiproposal_sampler");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-gmh", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 12, 200);
    for &proposals in &[4usize, 16] {
        let config = MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: proposals,
            draws_per_iteration: proposals,
            burn_in_draws: 0,
            sample_draws: SAMPLES_PER_RUN,
            backend: Backend::Rayon,
            ..Default::default()
        };
        let session = Session::builder()
            .alignment(alignment.clone())
            .strategy(SamplerStrategy::MultiProposal)
            .config(config)
            .build()
            .unwrap();
        let mut sampler = session.make_sampler(config.initial_theta).unwrap();
        let initial = session.starting_tree().unwrap();
        group.bench_with_input(
            BenchmarkId::new("200_samples_12seq_200bp", proposals),
            &proposals,
            |b, &proposals| {
                b.iter(|| {
                    let mut run_rng = harness_rng("bench-gmh-run", proposals as u64);
                    sampler.run(initial.clone(), &mut run_rng, &mut NullObserver).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baseline, bench_multiproposal);
criterion_main!(benches);
