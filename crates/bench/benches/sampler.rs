//! Criterion benchmarks of the two samplers: cost per retained genealogy
//! sample for the single-proposal baseline and the multi-proposal sampler at
//! several proposal-set sizes (the wall-clock counterpart of Tables 2–4; the
//! modelled speedups live in the table harness binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use benchkit::{harness_rng, simulate_alignment};
use exec::Backend;
use lamarc::{LamarcSampler, SamplerConfig};
use mpcgs::sampler::MultiProposalSampler;
use mpcgs::MpcgsConfig;
use phylo::model::F81;
use phylo::{upgma_tree, FelsensteinPruner};

const SAMPLES_PER_RUN: usize = 200;

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_sampler");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-baseline", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 12, 200);
    let initial = upgma_tree(&alignment, 1.0).unwrap();
    let engine = FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
    let config = SamplerConfig {
        theta: 1.0,
        burn_in: 0,
        samples: SAMPLES_PER_RUN,
        thinning: 1,
        ..Default::default()
    };
    let sampler = LamarcSampler::new(engine, config).unwrap();
    group.bench_function("200_samples_12seq_200bp", |b| {
        b.iter(|| {
            let mut run_rng = harness_rng("bench-baseline-run", 1);
            sampler.run(initial.clone(), &mut run_rng).unwrap()
        })
    });
    group.finish();
}

fn bench_multiproposal(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiproposal_sampler");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-gmh", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 12, 200);
    let initial = upgma_tree(&alignment, 1.0).unwrap();
    for &proposals in &[4usize, 16] {
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let config = MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: proposals,
            draws_per_iteration: proposals,
            burn_in_draws: 0,
            sample_draws: SAMPLES_PER_RUN,
            backend: Backend::Rayon,
            ..Default::default()
        };
        let sampler = MultiProposalSampler::new(engine, config).unwrap();
        group.bench_with_input(
            BenchmarkId::new("200_samples_12seq_200bp", proposals),
            &initial,
            |b, initial| {
                b.iter(|| {
                    let mut run_rng = harness_rng("bench-gmh-run", proposals as u64);
                    sampler.run(initial.clone(), &mut run_rng).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baseline, bench_multiproposal);
criterion_main!(benches);
