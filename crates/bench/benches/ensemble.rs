//! Criterion smoke benchmark of ensemble chain dispatch: the same fixed
//! per-chain workload sharded across 2/4/8 chains, dispatched round-robin
//! (`Backend::Serial`) versus one scoped worker thread per chain
//! (`Backend::Rayon`). With coarse chains and one core per chain the
//! parallel dispatch should approach the ideal `B + N/P` wall-clock of
//! Section 3 — the measured counterpart of the Figure 6 arithmetic. (On a
//! single-core host the rayon rows instead show the pure scoped-thread
//! overhead per ensemble round; results are bit-identical either way, which
//! tests/ensemble.rs pins down.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use benchkit::{harness_rng, simulate_alignment};
use exec::Backend;
use mcmc::rng::Mt19937;
use mpcgs::ensemble::EnsembleSpec;
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};

/// Retained draws per chain — per-chain work is held fixed, so doubling the
/// chain count doubles total work; parallel dispatch should hold wall-clock
/// roughly flat until the cores run out.
const SAMPLES_PER_CHAIN: usize = 150;
const BURN_IN_PER_CHAIN: usize = 50;

fn bench_chain_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_dispatch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let mut rng = harness_rng("bench-ensemble", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 10, 150);

    for &chains in &[2usize, 4, 8] {
        for &backend in &[Backend::Serial, Backend::Rayon] {
            let config = MpcgsConfig {
                initial_theta: 1.0,
                burn_in_draws: BURN_IN_PER_CHAIN,
                sample_draws: SAMPLES_PER_CHAIN,
                proposals_per_iteration: 8,
                draws_per_iteration: 8,
                // Within-chain work stays serial; `chain_dispatch` below is
                // the only thing that varies, so the serial-vs-rayon gap
                // measures chain scheduling alone.
                backend: Backend::Serial,
                ..MpcgsConfig::default()
            };
            let mut session = Session::builder()
                .alignment(alignment.clone())
                .strategy(SamplerStrategy::MultiProposal)
                .config(config)
                .ensemble(EnsembleSpec {
                    n_chains: chains,
                    chain_dispatch: Some(backend),
                    ..EnsembleSpec::independent(chains)
                })
                .build()
                .expect("valid ensemble session");
            group.bench_function(
                BenchmarkId::new(format!("{backend}"), format!("{chains}_chains")),
                |b| {
                    b.iter(|| {
                        session
                            .run_ensemble(&mut Mt19937::new(1))
                            .expect("ensemble run succeeds")
                            .total_transitions()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chain_dispatch);
criterion_main!(benches);
