//! Microbenchmark of the likelihood *combine kernel* (the innermost loop of
//! every evaluation, Section 5.2.2): the scalar node-outer/pattern-inner
//! loop versus the explicit four-lane SIMD kernel versus the runtime-probed
//! `Kernel::Auto` (AVX2/FMA multiversioned) variant, measured three ways —
//! the pure kernel in isolation (through the public [`Kernel::combine_rows`]
//! seam), full workspace builds, and batched dirty-path rescoring, serial
//! and rayon.
//!
//! Run with `cargo bench -p benchkit --features simd --bench kernel`.
//! Without `--features simd` the `Kernel::Simd` request falls back to the
//! scalar kernel at runtime, so the A/B collapses to ~1.0× — the summary
//! says so explicitly rather than reporting a fake win.
//!
//! Kernel throughput is codegen-sensitive: under the default x86-64 baseline
//! (SSE2) the four-lane kernel wins ~1.3–1.5×; compiled for a wider target
//! (`RUSTFLAGS="-C target-feature=+avx2,+fma"`) each `F64x4` op becomes one
//! 256-bit instruction and the win grows to ~3.5×. The summary prints which
//! features this binary was built with.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use benchkit::{harness_rng, simulate_alignment};
use exec::Backend;
use lamarc::GenealogyProposer;
use phylo::likelihood::LikelihoodEngine;
use phylo::model::F81;
use phylo::{upgma_tree, Alignment, FelsensteinPruner, GeneTree, Kernel, NodeId, TreeProposal};

const N_TAXA: usize = 12;
const N_PROPOSALS: usize = 32;
/// ≥1 kb alignments: the regime the acceptance bar is stated for.
const SITES: [usize; 2] = [1_000, 2_000];

struct Fixture {
    alignment: Alignment,
    generator: GeneTree,
    edits: Vec<(GeneTree, Vec<NodeId>)>,
}

fn fixture(sites: usize) -> Fixture {
    let mut rng = harness_rng("kernel-bench", sites as u64);
    let alignment = simulate_alignment(&mut rng, 1.0, N_TAXA, sites);
    let generator = upgma_tree(&alignment, 1.0).unwrap();
    let proposer = GenealogyProposer::new(1.0).unwrap();
    let phi = proposer.sample_target(&generator, &mut rng);
    let edits =
        (0..N_PROPOSALS).map(|_| proposer.propose_with_edit(&generator, phi, &mut rng)).collect();
    Fixture { alignment, generator, edits }
}

fn engine_for(fixture: &Fixture, kernel: Kernel) -> FelsensteinPruner<F81> {
    FelsensteinPruner::new(
        &fixture.alignment,
        F81::normalized(fixture.alignment.base_frequencies()),
    )
    .with_kernel(kernel)
}

/// Synthetic children rows for the pure-kernel measurement: `len` patterns
/// of plausible partial likelihoods plus two transition matrices.
struct KernelRows {
    ma: [[f64; 4]; 4],
    mb: [[f64; 4]; 4],
    pa: Vec<f64>,
    pb: Vec<f64>,
    sa: Vec<f64>,
    sb: Vec<f64>,
}

fn kernel_rows(len: usize) -> KernelRows {
    let ma =
        [[0.7, 0.1, 0.1, 0.1], [0.1, 0.7, 0.1, 0.1], [0.2, 0.1, 0.6, 0.1], [0.1, 0.2, 0.1, 0.6]];
    let mb =
        [[0.6, 0.2, 0.1, 0.1], [0.1, 0.6, 0.2, 0.1], [0.1, 0.1, 0.7, 0.1], [0.2, 0.1, 0.1, 0.6]];
    let pa = (0..len * 4).map(|i| 0.05 + ((i * 37) % 100) as f64 / 150.0).collect();
    let pb = (0..len * 4).map(|i| 0.05 + ((i * 53) % 100) as f64 / 150.0).collect();
    KernelRows { ma, mb, pa, pb, sa: vec![0.0; len], sb: vec![0.0; len] }
}

/// One pure kernel invocation over `len` patterns (one interior node's worth
/// of work for one chunk).
fn run_kernel(kernel: Kernel, rows: &KernelRows, op: &mut [f64], os: &mut [f64]) {
    kernel.combine_rows(1e-100, &rows.ma, &rows.mb, &rows.pa, &rows.pb, &rows.sa, &rows.sb, op, os);
}

/// One full prune: every interior node of every pattern goes through the
/// combine kernel, so this measures kernel throughput plus workspace
/// build overhead (allocation, tips, root reduction).
fn full_prune(engine: &FelsensteinPruner<F81>, fixture: &Fixture, backend: Backend) -> f64 {
    engine.build_workspace(backend, &fixture.generator).unwrap().log_likelihood()
}

/// One steady-state Generalized-MH iteration: dirty-path rescoring of the
/// whole proposal set against the memoised generator workspace.
fn batched(engine: &FelsensteinPruner<F81>, fixture: &Fixture, backend: Backend) -> f64 {
    let proposals: Vec<TreeProposal<'_>> =
        fixture.edits.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();
    let eval = engine.log_likelihood_batch(backend, &fixture.generator, &proposals).unwrap();
    eval.generator_log_likelihood + eval.log_likelihoods.iter().sum::<f64>()
}

fn bench_pure_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_rows");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for &len in &[256usize, 1_024] {
        let rows = kernel_rows(len);
        let mut op = vec![0.0; len * 4];
        let mut os = vec![0.0; len];
        for kernel in [Kernel::Scalar, Kernel::Simd, Kernel::Auto] {
            group.bench_with_input(
                BenchmarkId::new(kernel.to_string(), len),
                &kernel,
                |b, &kernel| {
                    b.iter(|| {
                        run_kernel(kernel, &rows, &mut op, &mut os);
                        std::hint::black_box(&op);
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_engine_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_kernel");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for &sites in &SITES {
        let fixture = fixture(sites);
        for kernel in [Kernel::Scalar, Kernel::Simd, Kernel::Auto] {
            for (backend_label, backend) in [("serial", Backend::Serial), ("rayon", Backend::Rayon)]
            {
                let engine = engine_for(&fixture, kernel);
                group.bench_with_input(
                    BenchmarkId::new(format!("full_prune/{kernel}/{backend_label}"), sites),
                    &backend,
                    |b, &backend| b.iter(|| full_prune(&engine, &fixture, backend)),
                );
            }
            let engine = engine_for(&fixture, kernel);
            let _ = batched(&engine, &fixture, Backend::Serial); // warm the memo
            group.bench_with_input(
                BenchmarkId::new(format!("dirty_path/{kernel}/serial"), sites),
                &(),
                |b, _| b.iter(|| batched(&engine, &fixture, Backend::Serial)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pure_kernel, bench_engine_paths);

/// Explicit A/B summary: interleaved min-of-rounds wall time (robust to the
/// noisy shared machine) of the pure kernel and of full prunes, with the
/// simd/scalar ratio against the ≥1.5× acceptance bar.
fn throughput_summary() {
    println!();
    println!(
        "codegen: target_features avx2={} fma={} (set RUSTFLAGS=\"-C target-feature=+avx2,+fma\" \
         on x86-64-v3 hardware for full-width F64x4 ops)",
        cfg!(target_feature = "avx2"),
        cfg!(target_feature = "fma"),
    );
    let host = phylo::likelihood::host_cpu_features();
    println!(
        "runtime: Kernel::Auto resolves to {} (host cpu: {})",
        Kernel::Auto.variant(),
        if host.is_empty() { "baseline".to_string() } else { host.join("+") }
    );
    if !Kernel::simd_compiled() {
        println!(
            "kernel summary: built WITHOUT --features simd; Kernel::Simd falls back to \
             scalar, so no A/B is reported (rebuild with --features simd)."
        );
        return;
    }

    // Pure kernel at the engine's own chunk size: a >=1 kb alignment is
    // walked in PATTERN_CHUNK = 256-pattern chunks, so this is exactly the
    // call shape every workspace build and rescore issues.
    let len = 256;
    let rows = kernel_rows(len);
    let mut op = vec![0.0; len * 4];
    let mut os = vec![0.0; len];
    let reps = 80_000;
    let mut best = [f64::MAX; 3];
    for _ in 0..7 {
        for (slot, kernel) in [Kernel::Scalar, Kernel::Simd, Kernel::Auto].into_iter().enumerate() {
            let t0 = Instant::now();
            for _ in 0..reps {
                run_kernel(kernel, &rows, &mut op, &mut os);
                std::hint::black_box(&op);
            }
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
        }
    }
    let patterns = (len * reps) as f64;
    let speedup = best[0] / best[2];
    println!("pure kernel ({len} patterns/call, {reps} calls, min of 7 rounds):");
    println!("  scalar: {:>8.1} Mpatterns/s", patterns / best[0] / 1e6);
    println!("  simd  : {:>8.1} Mpatterns/s", patterns / best[1] / 1e6);
    println!(
        "  auto  : {:>8.1} Mpatterns/s ({})",
        patterns / best[2] / 1e6,
        Kernel::Auto.variant()
    );
    println!(
        "  auto/scalar: {speedup:.2}x  ({})",
        if speedup >= 1.5 {
            "meets the >=1.5x acceptance bar"
        } else {
            "below 1.5x at this codegen level; see the RUSTFLAGS note above"
        }
    );

    // Engine level: full prunes of a >=1 kb fixture (kernel + build overhead).
    for &sites in &SITES {
        let fixture = fixture(sites);
        let reps = 30;
        let mut best = [f64::MAX; 3];
        for _ in 0..5 {
            for (slot, kernel) in
                [Kernel::Scalar, Kernel::Simd, Kernel::Auto].into_iter().enumerate()
            {
                let engine = engine_for(&fixture, kernel);
                let _ = full_prune(&engine, &fixture, Backend::Serial);
                let t0 = Instant::now();
                for _ in 0..reps {
                    std::hint::black_box(full_prune(&engine, &fixture, Backend::Serial));
                }
                best[slot] = best[slot].min(t0.elapsed().as_secs_f64() / reps as f64);
            }
        }
        println!(
            "full prune ({N_TAXA} taxa x {sites} bp): scalar {:.3} ms, simd {:.3} ms, \
             auto {:.3} ms, auto/scalar {:.2}x",
            best[0] * 1e3,
            best[1] * 1e3,
            best[2] * 1e3,
            best[0] / best[2]
        );
    }
}

fn main() {
    benches();
    throughput_summary();
}
