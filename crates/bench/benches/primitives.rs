//! Criterion microbenchmarks of the supporting primitives: the proposal
//! kernel, MT19937 generation, log-sum-exp reductions, UPGMA construction and
//! coalescent simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use benchkit::{harness_rng, simulate_alignment};
use coalescent::CoalescentSimulator;
use lamarc::GenealogyProposer;
use mcmc::logdomain::log_sum_exp;
use mcmc::rng::Mt19937;
use phylo::upgma_tree;
use rand::RngCore;

fn quick(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
}

fn bench_proposal_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("proposal_kernel");
    quick(&mut group);
    let mut rng = harness_rng("bench-proposal", 0);
    for &n in &[12usize, 48] {
        let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, n).unwrap();
        let proposer = GenealogyProposer::new(1.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            let mut prop_rng = harness_rng("bench-proposal-run", n as u64);
            b.iter(|| {
                let target = proposer.sample_target(tree, &mut prop_rng);
                proposer.propose(tree, target, &mut prop_rng)
            })
        });
    }
    group.finish();
}

fn bench_mt19937(c: &mut Criterion) {
    let mut group = c.benchmark_group("mt19937");
    quick(&mut group);
    group.bench_function("next_u32_x1000", |b| {
        let mut rng = Mt19937::new(5489);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.next_u32());
            }
            acc
        })
    });
    group.finish();
}

fn bench_log_sum_exp(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_sum_exp");
    quick(&mut group);
    for &n in &[32usize, 1_024] {
        let values: Vec<f64> = (0..n).map(|i| -1_000.0 - (i as f64) * 0.37).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| log_sum_exp(v))
        });
    }
    group.finish();
}

fn bench_upgma_and_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    quick(&mut group);
    let mut rng = harness_rng("bench-upgma", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 24, 200);
    group.bench_function("upgma_24seq_200bp", |b| b.iter(|| upgma_tree(&alignment, 1.0).unwrap()));
    group.bench_function("coalescent_sim_24tips", |b| {
        let sim = CoalescentSimulator::constant(1.0).unwrap();
        let mut sim_rng = harness_rng("bench-sim", 1);
        b.iter(|| sim.simulate(&mut sim_rng, 24).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_proposal_kernel,
    bench_mt19937,
    bench_log_sum_exp,
    bench_upgma_and_simulation
);
criterion_main!(benches);
