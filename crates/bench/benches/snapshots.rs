//! Criterion benchmark of genealogy snapshots: the copy-on-write
//! `GeneTree::clone()` over the columnar `phylo::tables` store versus the
//! legacy pointer-arena deep copy it replaced.
//!
//! Two shapes are measured:
//!
//! * **clone** — one snapshot of an `n`-tip genealogy. CoW is six `Arc`
//!   bumps regardless of `n`; the legacy copy scales with the node count.
//! * **ladder_swap_sweep** — the replica-exchange hot loop: one full sweep
//!   of adjacent-rung swaps over an 8/16/32-rung ladder, where every swap
//!   exports both chains' trees (two clones) and installs them crosswise —
//!   exactly the state traffic `ShardedSampler` pays per exchange segment.
//!
//! The `snapshot_then_retime` rows price the deferred side of CoW: the first
//! mutation after a snapshot materialises the touched column slab, so the
//! pair (snapshot + one retime) bounds the real per-proposal cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use benchkit::harness_rng;
use coalescent::CoalescentSimulator;
use phylo::tree::legacy::LegacyTree;
use phylo::GeneTree;

fn simulated_tree(tips: usize) -> GeneTree {
    let mut rng = harness_rng("bench-snapshots", tips as u64);
    CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, tips).unwrap()
}

fn legacy_of(tree: &GeneTree) -> LegacyTree {
    LegacyTree::from_node_records(tree.node_records(), tree.root()).unwrap()
}

fn bench_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_snapshots");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &tips in &[64usize, 512] {
        let tree = simulated_tree(tips);
        let legacy = legacy_of(&tree);
        group.bench_function(BenchmarkId::new("clone_cow", tips), |b| {
            b.iter(|| black_box(tree.clone()).n_nodes())
        });
        group.bench_function(BenchmarkId::new("clone_legacy", tips), |b| {
            b.iter(|| black_box(legacy.clone()).n_nodes())
        });
        let root = tree.root();
        let root_time = tree.time(root);
        group.bench_function(BenchmarkId::new("snapshot_then_retime", tips), |b| {
            b.iter(|| {
                let mut snap = tree.clone();
                snap.set_time(root, root_time * 1.5);
                black_box(snap).n_nodes()
            })
        });
    }
    group.finish();
}

/// One sweep of adjacent-rung exchanges: every swap clones both replicas'
/// trees (the export half of `current_state`) and installs them crosswise
/// (the `replace_state` half).
fn sweep<T: Clone>(replicas: &mut [T]) {
    for i in 0..replicas.len() - 1 {
        let a = replicas[i].clone();
        let b = replicas[i + 1].clone();
        replicas[i] = b;
        replicas[i + 1] = a;
    }
}

fn bench_ladder_swaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ladder_swap_sweep");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let tree = simulated_tree(256);
    for &rungs in &[8usize, 16, 32] {
        let mut cow: Vec<GeneTree> = (0..rungs).map(|_| tree.clone()).collect();
        group.bench_function(BenchmarkId::new("cow", format!("{rungs}_rungs")), |b| {
            b.iter(|| {
                sweep(&mut cow);
                black_box(cow.len())
            })
        });
        let legacy = legacy_of(&tree);
        let mut deep: Vec<LegacyTree> = (0..rungs).map(|_| legacy.clone()).collect();
        group.bench_function(BenchmarkId::new("legacy", format!("{rungs}_rungs")), |b| {
            b.iter(|| {
                sweep(&mut deep);
                black_box(deep.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clone, bench_ladder_swaps);
criterion_main!(benches);
