//! The headline benchmark of the batched likelihood engine: scoring a
//! 32-proposal set (16 taxa × 1 kb, the shape of one Generalized-MH
//! iteration) by fresh full pruning of every tree versus the cached
//! dirty-path engine. Run with `cargo bench --bench batch_likelihood`.
//!
//! Besides the criterion groups, `main` prints an explicit A/B speedup
//! summary so the caching win is a single observable number.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use benchkit::{harness_rng, simulate_alignment};
use exec::Backend;
use lamarc::GenealogyProposer;
use phylo::likelihood::LikelihoodEngine;
use phylo::model::F81;
use phylo::{upgma_tree, Alignment, FelsensteinPruner, GeneTree, NodeId, TreeProposal};

const N_TAXA: usize = 16;
const N_SITES: usize = 1_000;
const N_PROPOSALS: usize = 32;

struct Fixture {
    alignment: Alignment,
    generator: GeneTree,
    edits: Vec<(GeneTree, Vec<NodeId>)>,
}

fn fixture() -> Fixture {
    let mut rng = harness_rng("batch-likelihood", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, N_TAXA, N_SITES);
    let generator = upgma_tree(&alignment, 1.0).unwrap();
    let proposer = GenealogyProposer::new(1.0).unwrap();
    // One φ per iteration, resimulated independently per proposal slot,
    // exactly as the multi-proposal sampler constructs its set.
    let phi = proposer.sample_target(&generator, &mut rng);
    let edits =
        (0..N_PROPOSALS).map(|_| proposer.propose_with_edit(&generator, phi, &mut rng)).collect();
    Fixture { alignment, generator, edits }
}

fn engine_for(fixture: &Fixture) -> FelsensteinPruner<F81> {
    FelsensteinPruner::new(
        &fixture.alignment,
        F81::normalized(fixture.alignment.base_frequencies()),
    )
}

fn proposal_refs(fixture: &Fixture) -> Vec<TreeProposal<'_>> {
    fixture.edits.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect()
}

/// The naive baseline: a fresh full prune of the generator and of every
/// proposal, no state carried anywhere.
fn score_fresh(engine: &FelsensteinPruner<F81>, fixture: &Fixture) -> f64 {
    let mut total = engine.log_likelihood(&fixture.generator).unwrap();
    for (tree, _) in &fixture.edits {
        total += engine.log_likelihood(tree).unwrap();
    }
    total
}

/// The batched engine: dirty-path rescoring against the memoised generator
/// workspace.
fn score_batched(engine: &FelsensteinPruner<F81>, fixture: &Fixture, backend: Backend) -> f64 {
    let proposals = proposal_refs(fixture);
    let eval = engine.log_likelihood_batch(backend, &fixture.generator, &proposals).unwrap();
    eval.generator_log_likelihood + eval.log_likelihoods.iter().sum::<f64>()
}

fn bench_batch_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_likelihood_32x16taxa_1kb");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let fixture = fixture();

    let fresh_engine = engine_for(&fixture);
    group.bench_function("fresh_full_prune", |b| b.iter(|| score_fresh(&fresh_engine, &fixture)));

    for (label, backend) in [("serial", Backend::Serial), ("rayon", Backend::Rayon)] {
        let engine = engine_for(&fixture);
        // Warm the generator memo once so the steady-state (per-iteration)
        // cost is what gets measured, as in a sampler run.
        let _ = score_batched(&engine, &fixture, backend);
        group.bench_with_input(
            BenchmarkId::new("cached_dirty_path", label),
            &backend,
            |b, &backend| b.iter(|| score_batched(&engine, &fixture, backend)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_scoring);

/// Explicit A/B measurement printed after the criterion groups: wall time of
/// `reps` proposal-set evaluations, fresh versus cached, plus the acceptance
/// threshold check (≥2×).
fn speedup_summary() {
    let fixture = fixture();
    let reps = 30;

    let fresh_engine = engine_for(&fixture);
    let _ = score_fresh(&fresh_engine, &fixture); // warm caches of the allocator
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(score_fresh(&fresh_engine, &fixture));
    }
    let fresh = t0.elapsed();

    let batched_engine = engine_for(&fixture);
    let _ = score_batched(&batched_engine, &fixture, Backend::Serial); // warm the memo
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(score_batched(&batched_engine, &fixture, Backend::Serial));
    }
    let batched = t1.elapsed();

    let speedup = fresh.as_secs_f64() / batched.as_secs_f64();
    println!();
    println!(
        "speedup summary ({N_PROPOSALS} proposals, {N_TAXA} taxa x {N_SITES} bp, {reps} reps):"
    );
    println!("  fresh full prune : {:>10.2} ms/set", fresh.as_secs_f64() * 1e3 / reps as f64);
    println!("  cached dirty path: {:>10.2} ms/set", batched.as_secs_f64() * 1e3 / reps as f64);
    println!(
        "  speedup          : {speedup:>10.2}x  ({})",
        if speedup >= 2.0 {
            "meets the >=2x acceptance bar"
        } else {
            "BELOW the 2x acceptance bar"
        }
    );
}

fn main() {
    benches();
    speedup_summary();
}
