//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the
//! evaluation (see DESIGN.md's per-experiment index); this library holds the
//! pieces they share: synthetic-data generation exactly as Section 6.1
//! describes (`ms`-style tree simulation followed by `seq-gen`-style sequence
//! simulation), small text-table rendering, and a Pearson correlation used by
//! the accuracy experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use coalescent::{CoalescentSimulator, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::model::{BaseFrequencies, F84};
use phylo::Alignment;
use rand::Rng;

/// Simulate an alignment the way the paper's accuracy experiment does
/// (Section 6.1): an `ms`-style coalescent tree with the given true θ, then
/// `seq-gen -mF84`-style sequence evolution. The tree simulator already
/// measures branch lengths in units that absorb the true θ, so the sequence
/// simulator uses a unit branch scale (the paper's `-s` option plays the same
/// role there).
pub fn simulate_alignment<R: Rng + ?Sized>(
    rng: &mut R,
    true_theta: f64,
    n_sequences: usize,
    sequence_length: usize,
) -> Alignment {
    let tree = CoalescentSimulator::constant(true_theta)
        .expect("valid theta")
        .simulate(rng, n_sequences)
        .expect("valid simulation size");
    // F84 with a modest transition bias and mildly informative frequencies,
    // as seq-gen's defaults provide.
    let freqs = BaseFrequencies::new(0.27, 0.23, 0.23, 0.27).expect("valid frequencies");
    let model = F84::new(freqs, 2.0).expect("valid kappa");
    SequenceSimulator::new(model, sequence_length, 1.0)
        .expect("valid simulator")
        .simulate(rng, &tree)
        .expect("simulation succeeds")
}

/// Deterministic RNG for a harness, derived from an experiment label so every
/// table regenerates identically from run to run.
pub fn harness_rng(label: &str, replicate: u64) -> Mt19937 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    Mt19937::seed_from_u64_pair(hash, replicate)
}

/// Pearson correlation coefficient between two equal-length series (the
/// accuracy metric of Section 6.1, which reports r = 0.905).
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series must be the same length");
    assert!(x.len() > 1, "correlation needs at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Mean and (population) standard deviation of a series.
pub fn mean_and_sd(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "mean of an empty series");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Render a simple aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut header_line = String::from("  ");
    for (h, w) in headers.iter().zip(&widths) {
        header_line.push_str(&format!("{h:>w$}  ", w = w));
    }
    out.push_str(header_line.trim_end());
    out.push('\n');
    out.push_str(&format!("  {}\n", "-".repeat(header_line.trim_end().len().saturating_sub(2))));
    for row in rows {
        let mut line = String::from("  ");
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Extension used by the harness RNG constructor.
trait SeedPair {
    fn seed_from_u64_pair(a: u64, b: u64) -> Self;
}

impl SeedPair for Mt19937 {
    fn seed_from_u64_pair(a: u64, b: u64) -> Self {
        Mt19937::from_seed_array(&[a as u32, (a >> 32) as u32, b as u32, (b >> 32) as u32])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_alignments_have_the_requested_shape() {
        let mut rng = harness_rng("shape", 0);
        let a = simulate_alignment(&mut rng, 1.0, 12, 200);
        assert_eq!(a.n_sequences(), 12);
        assert_eq!(a.n_sites(), 200);
        assert!(a.variable_sites() > 0, "theta = 1 data should be polymorphic");
    }

    #[test]
    fn harness_rng_is_deterministic_and_label_sensitive() {
        use rand::RngCore;
        let mut a = harness_rng("table1", 0);
        let mut b = harness_rng("table1", 0);
        let mut c = harness_rng("table2", 0);
        assert_eq!(a.next_u32(), b.next_u32());
        let mut a2 = harness_rng("table1", 0);
        a2.next_u32();
        assert_ne!(a2.next_u32(), c.next_u32());
    }

    #[test]
    fn pearson_correlation_behaves() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &z) + 1.0).abs() < 1e-12);
        let flat = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(pearson_correlation(&x, &flat), 0.0);
    }

    #[test]
    fn mean_and_sd_match_hand_computation() {
        let (m, s) = mean_and_sd(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_lines_up() {
        let table = render_table(
            "Table X",
            &["a", "longer"],
            &[vec!["1".into(), "2".into()], vec!["300".into(), "4".into()]],
        );
        assert!(table.contains("Table X"));
        assert!(table.contains("longer"));
        assert!(table.lines().count() >= 5);
    }
}
