//! Table 4 / Figure 16 — speedup versus the sequence size (base pairs).
//!
//! Produced by the calibrated device/host cost model (see DESIGN.md); the
//! paper's measured values are printed alongside.

use benchkit::render_table;
use mpcgs::perf::{SpeedupModel, TABLE4_LENGTHS, TABLE4_PAPER};

fn main() {
    let model = SpeedupModel::paper_calibrated();
    let sweep = model.sweep_sequence_length(&TABLE4_LENGTHS);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(TABLE4_PAPER.iter())
        .map(|(&(len, speedup), &paper)| {
            vec![format!("{len}"), format!("{speedup:.2}"), format!("{paper:.2}")]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 4 / Figure 16: speedup factor for varying sequence size",
            &["sequence size", "modelled speedup", "paper speedup"],
            &rows,
        )
    );
    println!(
        "calibration: host scaled by {:.4} to anchor the 200bp row at 3.69x",
        model.host_calibration()
    );
}
