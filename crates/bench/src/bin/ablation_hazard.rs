//! Ablation — the hazard model of the neighborhood-resimulation proposal.
//!
//! DESIGN.md calls out the choice between the exact conditional-coalescent
//! hazard (`a(a−1+2m)/θ`) and the cheaper active-only Kingman hazard
//! (`a(a−1)/θ`). This harness runs a prior-only Gibbs chain (uniform data
//! likelihood) under both hazards and compares the sampled tree-height and
//! tree-length statistics against the exact Kingman expectations: the
//! conditional hazard should be unbiased, the active-only variant visibly
//! biased.

use benchkit::{harness_rng, render_table};
use coalescent::{CoalescentSimulator, KingmanPrior};
use lamarc::{GenealogyProposer, HazardModel, ProposalConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (burn_in, samples) = if quick { (1_000, 8_000) } else { (2_000, 40_000) };
    let theta = 1.0;
    let n_tips = 6;
    let prior = KingmanPrior::new(theta).expect("valid theta");

    let mut rows = Vec::new();
    for (label, hazard) in [
        ("conditional a(a-1+2m)/theta", HazardModel::Conditional),
        ("active-only a(a-1)/theta", HazardModel::ActiveOnly),
    ] {
        let mut rng = harness_rng("ablation-hazard", hazard as u64);
        let proposer =
            GenealogyProposer::with_config(theta, ProposalConfig { hazard, ..Default::default() })
                .expect("valid proposer");
        let mut tree = CoalescentSimulator::constant(theta)
            .expect("valid theta")
            .simulate(&mut rng, n_tips)
            .expect("simulation succeeds");
        let mut sum_tmrca = 0.0;
        let mut sum_length = 0.0;
        for step in 0..(burn_in + samples) {
            let target = proposer.sample_target(&tree, &mut rng);
            tree = proposer.propose(&tree, target, &mut rng);
            if step >= burn_in {
                sum_tmrca += tree.tmrca();
                sum_length += tree.total_branch_length();
            }
        }
        let mean_tmrca = sum_tmrca / samples as f64;
        let mean_length = sum_length / samples as f64;
        rows.push(vec![
            label.to_string(),
            format!("{mean_tmrca:.3}"),
            format!("{:.3}", prior.expected_tmrca(n_tips)),
            format!("{mean_length:.3}"),
            format!("{:.3}", prior.expected_total_branch_length(n_tips)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation: proposal hazard model (prior-only Gibbs chain, theta = 1, 6 tips)",
            &["hazard", "mean TMRCA", "Kingman TMRCA", "mean tree length", "Kingman length"],
            &rows,
        )
    );
    println!(
        "The conditional hazard reproduces the Kingman expectations (it resamples each\n\
         neighborhood from its exact conditional prior); the active-only variant ignores\n\
         the inactive lineages and systematically inflates the sampled trees."
    );
}
