//! Figure 6 — the inefficiency of the multiple-independent-chains
//! work-around.
//!
//! Two views are printed:
//!
//! 1. the idealised arithmetic of Section 3 (per-chain cost `B + N/P`,
//!    efficiency relative to perfect scaling, and the generalized scheme's
//!    `(B + N)/P`), for the B = 4, N = 4 toy of Figure 6 and for a realistic
//!    chain;
//! 2. a *measured* multi-chain run on simulated data: each chain really pays
//!    its own burn-in, and the total transition counts are reported.

use benchkit::{harness_rng, render_table, simulate_alignment};
use exec::amdahl::{multichain_efficiency, multichain_time, parallel_burnin_time};
use mpcgs::{run_multi_chain, ModelSpec, MultiChainConfig};
use phylo::Dataset;

fn ideal_table(b: f64, n: f64, title: &str) -> String {
    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8, 16, 64]
        .iter()
        .map(|&p| {
            vec![
                format!("{p}"),
                format!("{:.2}", multichain_time(b, n, p)),
                format!("{:.2}", parallel_burnin_time(b, n, p)),
                format!("{:.1}%", 100.0 * multichain_efficiency(b, n, p)),
            ]
        })
        .collect();
    render_table(
        title,
        &["P", "multi-chain B+N/P", "parallel burn-in (B+N)/P", "multi-chain efficiency"],
        &rows,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", ideal_table(4.0, 4.0, "Figure 6 (idealised, B = 4, N = 4):"));
    println!(
        "{}",
        ideal_table(
            1_000.0,
            10_000.0,
            "Idealised costs for a realistic chain (B = 1000, N = 10000):"
        )
    );

    // Measured multi-chain runs.
    let mut rng = harness_rng("fig6", 0);
    let (n_seq, sites, burn_in, total_samples) =
        if quick { (6, 80, 100, 600) } else { (10, 150, 400, 2_400) };
    let dataset = Dataset::single(simulate_alignment(&mut rng, 1.0, n_seq, sites));

    let mut rows = Vec::new();
    for p in [1usize, 2, 4] {
        let config = MultiChainConfig { n_chains: p, burn_in, total_samples, theta: 1.0 };
        let run = run_multi_chain(&dataset, ModelSpec::F81Empirical, &config, 2_016)
            .expect("multi-chain run succeeds");
        rows.push(vec![
            format!("{p}"),
            format!("{}", run.pooled.len()),
            format!("{}", run.transitions_per_chain),
            format!("{}", run.total_transitions),
            format!("{:.1}%", 100.0 * run.burn_in_fraction()),
            format!("{:.0}", run.ideal_parallel_cost()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Measured multi-chain work (pooled sample size held fixed):",
            &[
                "P",
                "pooled samples",
                "transitions/chain",
                "total transitions",
                "burn-in share",
                "ideal B+N/P",
            ],
            &rows,
        )
    );
    println!(
        "The burn-in share of the total work grows with P while the pooled sample size stays\n\
         fixed — the diminishing returns of Eq. 27 that motivate the multi-proposal sampler."
    );
}
