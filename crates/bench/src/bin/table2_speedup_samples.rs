//! Table 2 / Figure 14 — speedup versus the number of genealogy samples.
//!
//! The speedups are produced by the calibrated device/host cost model of
//! `mpcgs::perf` (see DESIGN.md: no GPU is available, so the figure is
//! regenerated from modelled kernel launches driven by the sampler's
//! structure). The paper's measured values are printed alongside.

use benchkit::render_table;
use mpcgs::perf::{SpeedupModel, TABLE2_PAPER, TABLE2_SAMPLES};

fn main() {
    let model = SpeedupModel::paper_calibrated();
    let sweep = model.sweep_samples(&TABLE2_SAMPLES);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(TABLE2_PAPER.iter())
        .map(|(&(samples, speedup), &paper)| {
            vec![format!("{samples}"), format!("{speedup:.2}"), format!("{paper:.2}")]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 2 / Figure 14: speedup factor for varying number of samples",
            &["# samples", "modelled speedup", "paper speedup"],
            &rows,
        )
    );
    println!(
        "calibration: host scaled by {:.4} to anchor the 20k-sample row at 3.69x",
        model.host_calibration()
    );
}
