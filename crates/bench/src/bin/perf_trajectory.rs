//! The persisted performance trajectory of the likelihood engine.
//!
//! Every tracked optimisation claim of the engine is measured here in one
//! run and written as a schema'd JSON artefact (`BENCH_<seq>.json` at the
//! repo root), so performance is a committed, diffable series rather than
//! a one-off number in a PR description:
//!
//! * **kernel** — pure combine-kernel throughput (Mpatterns/s) for the
//!   scalar, four-lane SIMD and runtime-dispatched `auto` variants, at the
//!   engine's own `PATTERN_CHUNK`-sized call shape.
//! * **full_prune** — nanoseconds per full workspace build (kernel plus
//!   build overhead) for the scalar and `auto` kernels.
//! * **dirty_path** — nanoseconds per proposal of batched dirty-path
//!   rescoring on a deep tree, plus the edge transition-matrix cache hit
//!   rate the run observed (the machine-independent metric).
//! * **snapshots** — nanoseconds per genealogy snapshot (`GeneTree::clone`
//!   over the columnar copy-on-write store) versus the legacy pointer-arena
//!   deep copy, slab allocations per snapshot (exactly zero — the O(1)
//!   claim, machine-independent), and the per-swap cost of swap-heavy
//!   8/16/32-rung exchange sweeps.
//! * **ensemble** — effective samples per second of a short
//!   Generalized-MH chain (Geyer initial-sequence ESS over the post
//!   burn-in trace divided by sampling wall-clock).
//! * **serve** — job-queue drain rate of the service layer (jobs/s and
//!   p50/p99 job latency for a flood of small complete estimation jobs,
//!   serial pool vs threaded pool).
//!
//! `--check-against <baseline.json>` compares the current run to a
//! committed artefact and exits non-zero on a >15% regression
//! (direction-aware). `--smoke` shrinks repetition counts for CI and gates
//! only the machine-independent cache hit rate — wall-clock metrics on
//! shared CI hosts are reported but not enforced.
//!
//! Usage: `perf_trajectory [--smoke] [--seq <n>] [--out <path>]
//! [--check-against <path>]` (pass `--out -` to skip writing a file).

use std::process::ExitCode;
use std::time::Instant;

use benchkit::json::Json;
use benchkit::{harness_rng, simulate_alignment};
use coalescent::CoalescentSimulator;
use exec::Backend;
use lamarc::GenealogyProposer;
use mcmc::diagnostics::effective_sample_size;
use mcmc::rng::Mt19937;
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
use phylo::likelihood::{host_cpu_features, LikelihoodEngine};
use phylo::model::F81;
use phylo::tree::legacy::LegacyTree;
use phylo::{upgma_tree, Alignment, FelsensteinPruner, GeneTree, Kernel, NodeId, TreeProposal};

const SCHEMA: &str = "mpcgs-perf-trajectory/v1";
const REGRESSION_TOLERANCE: f64 = 0.15;

struct Opts {
    smoke: bool,
    seq: usize,
    out: Option<String>,
    check_against: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts { smoke: false, seq: 0, out: None, check_against: None };
    let mut i = 0;
    while i < args.len() {
        let take_value = |name: &str, i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--seq" => {
                let text = take_value("--seq", &mut i)?;
                opts.seq = text.parse().map_err(|_| format!("invalid --seq {text:?}"))?;
            }
            "--out" => opts.out = Some(take_value("--out", &mut i)?),
            "--check-against" => opts.check_against = Some(take_value("--check-against", &mut i)?),
            "--help" | "-h" => {
                return Err("usage: perf_trajectory [--smoke] [--seq <n>] [--out <path>] \
                            [--check-against <path>]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Interleaved min-of-rounds timing: robust to other tenants of a shared
/// machine, exactly like the `kernel` criterion bench's summary.
fn min_seconds_of(rounds: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

// ---------------------------------------------------------------------------
// Section 1: pure combine-kernel throughput.

struct KernelRows {
    ma: [[f64; 4]; 4],
    mb: [[f64; 4]; 4],
    pa: Vec<f64>,
    pb: Vec<f64>,
    sa: Vec<f64>,
    sb: Vec<f64>,
}

fn kernel_rows(len: usize) -> KernelRows {
    let ma =
        [[0.7, 0.1, 0.1, 0.1], [0.1, 0.7, 0.1, 0.1], [0.2, 0.1, 0.6, 0.1], [0.1, 0.2, 0.1, 0.6]];
    let mb =
        [[0.6, 0.2, 0.1, 0.1], [0.1, 0.6, 0.2, 0.1], [0.1, 0.1, 0.7, 0.1], [0.2, 0.1, 0.1, 0.6]];
    let pa = (0..len * 4).map(|i| 0.05 + ((i * 37) % 100) as f64 / 150.0).collect();
    let pb = (0..len * 4).map(|i| 0.05 + ((i * 53) % 100) as f64 / 150.0).collect();
    KernelRows { ma, mb, pa, pb, sa: vec![0.0; len], sb: vec![0.0; len] }
}

fn kernel_section(opts: &Opts) -> Json {
    // The engine walks alignments in PATTERN_CHUNK = 256-pattern chunks, so
    // this is the call shape every build and rescore issues.
    let len = 256usize;
    let (reps, rounds) = if opts.smoke { (2_000, 3) } else { (60_000, 7) };
    let rows = kernel_rows(len);
    let mut op = vec![0.0; len * 4];
    let mut os = vec![0.0; len];
    let variants = [Kernel::Scalar, Kernel::Simd, Kernel::Auto];
    let mut best = [f64::MAX; 3];
    // Interleave the variants inside each round so machine noise hits all
    // three equally.
    for _ in 0..rounds {
        for (slot, kernel) in variants.into_iter().enumerate() {
            let t0 = Instant::now();
            for _ in 0..reps {
                kernel.combine_rows(
                    1e-100, &rows.ma, &rows.mb, &rows.pa, &rows.pb, &rows.sa, &rows.sb, &mut op,
                    &mut os,
                );
                std::hint::black_box(&op);
            }
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
        }
    }
    let patterns = (len * reps) as f64;
    let mpatterns = |t: f64| patterns / t / 1e6;
    println!("kernel ({len} patterns/call, {reps} calls, min of {rounds} rounds):");
    for (slot, kernel) in variants.into_iter().enumerate() {
        println!(
            "  {:<7} [{}]: {:>8.1} Mpatterns/s",
            kernel.to_string(),
            kernel.variant(),
            mpatterns(best[slot])
        );
    }
    let auto_over_scalar = best[0] / best[2];
    println!("  auto/scalar: {auto_over_scalar:.2}x");
    Json::Object(vec![
        ("patterns_per_call".to_string(), Json::Number(len as f64)),
        ("scalar_mpatterns_per_s".to_string(), Json::Number(mpatterns(best[0]))),
        ("simd_mpatterns_per_s".to_string(), Json::Number(mpatterns(best[1]))),
        ("auto_mpatterns_per_s".to_string(), Json::Number(mpatterns(best[2]))),
        ("auto_over_scalar".to_string(), Json::Number(auto_over_scalar)),
    ])
}

// ---------------------------------------------------------------------------
// Sections 2 and 3: engine-level paths.

struct Fixture {
    alignment: Alignment,
    generator: GeneTree,
    edits: Vec<(GeneTree, Vec<NodeId>)>,
}

fn fixture(label: &str, n_taxa: usize, sites: usize, n_proposals: usize, deep: bool) -> Fixture {
    let mut rng = harness_rng(label, (n_taxa * sites) as u64);
    let alignment = simulate_alignment(&mut rng, 1.0, n_taxa, sites);
    let generator = upgma_tree(&alignment, 1.0).unwrap();
    let proposer = GenealogyProposer::new(1.0).unwrap();
    // `deep` pins φ to the deepest eligible target so every proposal's dirty
    // path spans the full tree depth — the steady-state regime the
    // edge-matrix cache exists for. Otherwise φ is drawn as a sampler would.
    let phi = if deep {
        deepest_target(&generator).unwrap_or_else(|| proposer.sample_target(&generator, &mut rng))
    } else {
        proposer.sample_target(&generator, &mut rng)
    };
    let edits =
        (0..n_proposals).map(|_| proposer.propose_with_edit(&generator, phi, &mut rng)).collect();
    Fixture { alignment, generator, edits }
}

/// The non-root interior node with the longest ancestor chain.
fn deepest_target(tree: &GeneTree) -> Option<NodeId> {
    tree.non_root_internal_nodes().into_iter().max_by_key(|&node| {
        let mut depth = 0usize;
        let mut cursor = node;
        while let Some(parent) = tree.parent(cursor) {
            depth += 1;
            cursor = parent;
        }
        depth
    })
}

fn engine_for(fixture: &Fixture, kernel: Kernel) -> FelsensteinPruner<F81> {
    FelsensteinPruner::new(
        &fixture.alignment,
        F81::normalized(fixture.alignment.base_frequencies()),
    )
    .with_kernel(kernel)
}

fn full_prune_section(opts: &Opts) -> Json {
    let (taxa, sites) = (12usize, if opts.smoke { 240 } else { 1_000 });
    let (reps, rounds) = if opts.smoke { (3, 2) } else { (20, 5) };
    let fx = fixture("perf-trajectory-prune", taxa, sites, 1, false);
    let mut best = [f64::MAX; 2];
    for _ in 0..rounds {
        for (slot, kernel) in [Kernel::Scalar, Kernel::Auto].into_iter().enumerate() {
            let engine = engine_for(&fx, kernel);
            let _ = engine.build_workspace(Backend::Serial, &fx.generator).unwrap();
            let t = min_seconds_of(1, || {
                for _ in 0..reps {
                    let ws = engine.build_workspace(Backend::Serial, &fx.generator).unwrap();
                    std::hint::black_box(ws.log_likelihood());
                }
            });
            best[slot] = best[slot].min(t / reps as f64);
        }
    }
    println!(
        "full prune ({taxa} taxa x {sites} bp): scalar {:.0} ns, auto {:.0} ns, {:.2}x",
        best[0] * 1e9,
        best[1] * 1e9,
        best[0] / best[1]
    );
    Json::Object(vec![
        ("taxa".to_string(), Json::Number(taxa as f64)),
        ("sites".to_string(), Json::Number(sites as f64)),
        ("scalar_ns".to_string(), Json::Number(best[0] * 1e9)),
        ("auto_ns".to_string(), Json::Number(best[1] * 1e9)),
    ])
}

fn dirty_path_section(opts: &Opts) -> Json {
    // The workload is identical in smoke and full runs (only the repetition
    // count differs) so the cache hit rate — the gated metric — stays
    // comparable across modes. Deep trees exercise long dirty paths, the
    // regime the edge-matrix cache is built for.
    let (taxa, sites, n_proposals) = (96usize, 400usize, 32usize);
    let (reps, rounds) = if opts.smoke { (2, 2) } else { (10, 5) };
    let fx = fixture("perf-trajectory-dirty", taxa, sites, n_proposals, true);
    let engine = engine_for(&fx, Kernel::Auto);
    let proposals: Vec<TreeProposal<'_>> =
        fx.edits.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();
    // Warm the generator memo: steady state is rescore-only.
    let _ = engine.log_likelihood_batch(Backend::Serial, &fx.generator, &proposals).unwrap();
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let t = min_seconds_of(1, || {
            for _ in 0..reps {
                let eval = engine
                    .log_likelihood_batch(Backend::Serial, &fx.generator, &proposals)
                    .unwrap();
                hits += eval.matrix_cache_hits;
                misses += eval.matrix_cache_misses;
                std::hint::black_box(eval.generator_log_likelihood);
            }
        });
        best = best.min(t / (reps * n_proposals) as f64);
    }
    let hit_rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
    println!(
        "dirty path ({taxa} taxa x {sites} bp, {n_proposals} proposals): {:.0} ns/proposal, \
         matrix-cache hit rate {:.1}% ({hits} hits / {misses} misses)",
        best * 1e9,
        100.0 * hit_rate
    );
    Json::Object(vec![
        ("taxa".to_string(), Json::Number(taxa as f64)),
        ("sites".to_string(), Json::Number(sites as f64)),
        ("proposals".to_string(), Json::Number(n_proposals as f64)),
        ("ns_per_proposal".to_string(), Json::Number(best * 1e9)),
        ("matrix_cache_hit_rate".to_string(), Json::Number(hit_rate)),
    ])
}

// ---------------------------------------------------------------------------
// Section 4: genealogy snapshots — the CoW columnar store vs deep copies.

fn snapshots_section(opts: &Opts) -> Json {
    let tips = 384usize;
    let (clone_reps, rounds) = if opts.smoke { (2_000, 3) } else { (50_000, 7) };
    let mut rng = harness_rng("perf-trajectory-snapshots", tips as u64);
    let tree = CoalescentSimulator::constant(1.0)
        .expect("valid theta")
        .simulate(&mut rng, tips)
        .expect("valid simulation size");
    let legacy = LegacyTree::from_node_records(tree.node_records(), tree.root())
        .expect("records round-trip");

    // Snapshot cost, with the O(1) claim checked on the slab ledger: the
    // timing loop takes `clone_reps × rounds` snapshots and must allocate
    // (and CoW-materialise) zero slabs — this quotient is the
    // machine-independent gate.
    let before = phylo::tables::cow_stats();
    let snapshot_s = min_seconds_of(rounds, || {
        for _ in 0..clone_reps {
            std::hint::black_box(tree.clone());
        }
    });
    let delta = phylo::tables::cow_stats().since(&before);
    let slab_allocs_per_snapshot =
        (delta.slab_allocs + delta.slab_cow_clones) as f64 / delta.snapshots.max(1) as f64;
    let deep_copy_s = min_seconds_of(rounds, || {
        for _ in 0..clone_reps {
            std::hint::black_box(legacy.clone());
        }
    });
    let snapshot_ns = snapshot_s / clone_reps as f64 * 1e9;
    let deep_copy_ns = deep_copy_s / clone_reps as f64 * 1e9;
    println!(
        "snapshots ({tips} tips): cow {snapshot_ns:.0} ns, legacy deep copy {deep_copy_ns:.0} ns \
         ({:.1}x), {slab_allocs_per_snapshot:.4} slab allocs/snapshot",
        deep_copy_ns / snapshot_ns
    );

    // Swap-heavy exchange sweeps: every adjacent-rung swap exports both
    // replicas' trees (two clones, the `current_state` half) and installs
    // them crosswise (the `replace_state` half) — the state traffic the
    // sharded sampler pays per exchange segment.
    let sweep_reps = if opts.smoke { 50 } else { 500 };
    let mut ladder_rows = Vec::new();
    let mut ladder32 = (f64::NAN, f64::NAN);
    for &rungs in &[8usize, 16, 32] {
        let swaps_per_sweep = (rungs - 1) as f64;
        let mut cow: Vec<GeneTree> = (0..rungs).map(|_| tree.clone()).collect();
        let cow_s = min_seconds_of(rounds, || {
            for _ in 0..sweep_reps {
                for i in 0..cow.len() - 1 {
                    let a = cow[i].clone();
                    let b = cow[i + 1].clone();
                    cow[i] = b;
                    cow[i + 1] = a;
                }
            }
            std::hint::black_box(&cow);
        });
        let mut deep: Vec<LegacyTree> = (0..rungs).map(|_| legacy.clone()).collect();
        let legacy_s = min_seconds_of(rounds, || {
            for _ in 0..sweep_reps {
                for i in 0..deep.len() - 1 {
                    let a = deep[i].clone();
                    let b = deep[i + 1].clone();
                    deep[i] = b;
                    deep[i + 1] = a;
                }
            }
            std::hint::black_box(&deep);
        });
        let cow_ns = cow_s / (sweep_reps as f64 * swaps_per_sweep) * 1e9;
        let legacy_ns = legacy_s / (sweep_reps as f64 * swaps_per_sweep) * 1e9;
        println!(
            "  ladder {rungs:>2} rungs: cow {cow_ns:.0} ns/swap, legacy {legacy_ns:.0} ns/swap \
             ({:.1}x)",
            legacy_ns / cow_ns
        );
        ladder_rows.push((
            format!("rungs_{rungs}"),
            Json::Object(vec![
                ("cow_ns_per_swap".to_string(), Json::Number(cow_ns)),
                ("legacy_ns_per_swap".to_string(), Json::Number(legacy_ns)),
            ]),
        ));
        if rungs == 32 {
            ladder32 = (cow_ns, legacy_ns);
        }
    }
    Json::Object(vec![
        ("tips".to_string(), Json::Number(tips as f64)),
        ("snapshot_ns".to_string(), Json::Number(snapshot_ns)),
        ("deep_copy_ns".to_string(), Json::Number(deep_copy_ns)),
        ("deep_copy_over_snapshot".to_string(), Json::Number(deep_copy_ns / snapshot_ns)),
        ("slab_allocs_per_snapshot".to_string(), Json::Number(slab_allocs_per_snapshot)),
        ("ladder".to_string(), Json::Object(ladder_rows)),
        ("ladder32_cow_ns_per_swap".to_string(), Json::Number(ladder32.0)),
        ("ladder32_legacy_over_cow".to_string(), Json::Number(ladder32.1 / ladder32.0)),
    ])
}

// ---------------------------------------------------------------------------
// Section 5: end-to-end chain throughput in effective samples per second.

fn ensemble_section(opts: &Opts) -> Json {
    let (taxa, sites) = (10usize, if opts.smoke { 100 } else { 200 });
    let (burn_in, samples) = if opts.smoke { (20, 120) } else { (200, 2_000) };
    let mut rng = harness_rng("perf-trajectory-ensemble", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, taxa, sites);
    let config = MpcgsConfig {
        initial_theta: 1.0,
        burn_in_draws: burn_in,
        sample_draws: samples,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    };
    let mut session = Session::builder()
        .alignment(alignment)
        .strategy(SamplerStrategy::MultiProposal)
        .config(config)
        .build()
        .expect("valid session");
    let t0 = Instant::now();
    let report = session.run_chain(&mut Mt19937::new(20_160_401)).expect("chain run succeeds");
    let wall = t0.elapsed().as_secs_f64();
    let trace = report.trace.post_burn_in();
    // A short, well-mixed trace can defeat the initial-sequence estimator;
    // fall back to the raw draw count rather than dying.
    let ess = effective_sample_size(trace).unwrap_or(trace.len() as f64);
    let ess_per_s = ess / wall;
    let hit_rate = report.counters.matrix_cache_hit_rate();
    println!(
        "ensemble chain ({taxa} taxa x {sites} bp, {} draws): ESS {ess:.0} in {wall:.2} s = \
         {ess_per_s:.1} ESS/s, matrix-cache hit rate {:.1}%",
        burn_in + samples,
        100.0 * hit_rate
    );
    Json::Object(vec![
        ("taxa".to_string(), Json::Number(taxa as f64)),
        ("sites".to_string(), Json::Number(sites as f64)),
        ("draws".to_string(), Json::Number((burn_in + samples) as f64)),
        ("ess".to_string(), Json::Number(ess)),
        ("wall_s".to_string(), Json::Number(wall)),
        ("ess_per_s".to_string(), Json::Number(ess_per_s)),
        ("matrix_cache_hit_rate".to_string(), Json::Number(hit_rate)),
    ])
}

// ---------------------------------------------------------------------------
// Section 6: serve-layer job-queue throughput.

fn serve_section(opts: &Opts) -> Json {
    // Many small-but-real jobs (a complete 1-round EM estimate each), so the
    // queue machinery — locking, quantum preemption, event fan-in — is a
    // visible fraction of the cost. The full run floods the queue past the
    // 1k-job acceptance mark; the deeper sweep lives in `serve_throughput`.
    let n_jobs = if opts.smoke { 200 } else { 2_000 };
    let workers = std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(4);
    let mut rng = harness_rng("perf-trajectory-serve", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 5, 40);
    let dataset = mpcgs::Dataset::single(alignment);
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        proposals_per_iteration: 4,
        draws_per_iteration: 4,
        burn_in_draws: 8,
        sample_draws: 24,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    };
    let drain = |backend: Backend, workers: usize| {
        let mut queue = mpcgs::JobQueue::new(mpcgs::ServeConfig { backend, workers, quantum: 4 });
        for k in 0..n_jobs {
            queue.submit(mpcgs::JobSpec::new(
                format!("job-{k}"),
                dataset.clone(),
                config,
                20_160_401 + k as u32,
            ));
        }
        let report = queue.run();
        assert_eq!(report.completed(), n_jobs, "every queued job must complete");
        report
    };
    let serial = drain(Backend::Serial, 1);
    let threaded = drain(Backend::Rayon, workers);
    println!(
        "serve queue ({n_jobs} jobs): serial {:.0} jobs/s, threaded x{workers} {:.0} jobs/s, \
         threaded p50 {:.4} s p99 {:.4} s",
        serial.jobs_per_sec(),
        threaded.jobs_per_sec(),
        threaded.latency_quantile(0.5),
        threaded.latency_quantile(0.99)
    );
    Json::Object(vec![
        ("jobs".to_string(), Json::Number(n_jobs as f64)),
        ("workers".to_string(), Json::Number(workers as f64)),
        ("serial_jobs_per_sec".to_string(), Json::Number(serial.jobs_per_sec())),
        ("threaded_jobs_per_sec".to_string(), Json::Number(threaded.jobs_per_sec())),
        ("threaded_p50_s".to_string(), Json::Number(threaded.latency_quantile(0.5))),
        ("threaded_p99_s".to_string(), Json::Number(threaded.latency_quantile(0.99))),
    ])
}

// ---------------------------------------------------------------------------
// Baseline comparison.

/// A gated metric: dotted path into the artefact, and whether bigger is
/// better. `machine_bound` metrics are wall-clock-derived and only enforced
/// in full (non-smoke) runs on both sides.
struct Gate {
    path: &'static str,
    higher_is_better: bool,
    machine_bound: bool,
}

const GATES: [Gate; 9] = [
    Gate { path: "kernel.scalar_mpatterns_per_s", higher_is_better: true, machine_bound: true },
    Gate { path: "kernel.auto_mpatterns_per_s", higher_is_better: true, machine_bound: true },
    Gate { path: "full_prune.auto_ns", higher_is_better: false, machine_bound: true },
    Gate { path: "dirty_path.ns_per_proposal", higher_is_better: false, machine_bound: true },
    Gate { path: "dirty_path.matrix_cache_hit_rate", higher_is_better: true, machine_bound: false },
    // Snapshots stay O(1): zero slab traffic per clone (exact, every run)
    // and the per-snapshot / per-swap wall clocks on comparable hosts.
    Gate {
        path: "snapshots.slab_allocs_per_snapshot",
        higher_is_better: false,
        machine_bound: false,
    },
    Gate { path: "snapshots.snapshot_ns", higher_is_better: false, machine_bound: true },
    Gate {
        path: "snapshots.ladder32_cow_ns_per_swap",
        higher_is_better: false,
        machine_bound: true,
    },
    Gate { path: "ensemble.ess_per_s", higher_is_better: true, machine_bound: true },
];

fn check_against(current: &Json, baseline_path: &str, smoke: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = Json::parse(&text).map_err(|e| format!("baseline {baseline_path}: {e}"))?;
    let baseline_schema = baseline.get("schema").and_then(Json::as_str);
    if baseline_schema != Some(SCHEMA) {
        return Err(format!(
            "baseline {baseline_path} has schema {baseline_schema:?}, expected {SCHEMA:?}"
        ));
    }
    let baseline_smoke = baseline.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let enforce_timings = !smoke && !baseline_smoke;
    println!(
        "\ncomparison against {baseline_path} (tolerance {:.0}%):",
        REGRESSION_TOLERANCE * 100.0
    );
    let mut failures = Vec::new();
    for gate in &GATES {
        let (Some(now), Some(then)) = (
            current.get_path(gate.path).and_then(Json::as_f64),
            baseline.get_path(gate.path).and_then(Json::as_f64),
        ) else {
            failures.push(format!("{}: metric missing from current run or baseline", gate.path));
            continue;
        };
        let ratio = if then == 0.0 { 1.0 } else { now / then };
        let regressed = if gate.higher_is_better {
            now < then * (1.0 - REGRESSION_TOLERANCE)
        } else {
            now > then * (1.0 + REGRESSION_TOLERANCE)
        };
        let enforced = enforce_timings || !gate.machine_bound;
        let verdict = match (regressed, enforced) {
            (false, _) => "ok",
            (true, true) => "REGRESSED",
            (true, false) => "regressed (informational: wall-clock metric not gated here)",
        };
        println!("  {:<38} {then:>12.3} -> {now:>12.3}  ({ratio:.2}x)  {verdict}", gate.path);
        if regressed && enforced {
            failures.push(format!(
                "{}: {then:.3} -> {now:.3} ({ratio:.2}x) exceeds the {:.0}% tolerance",
                gate.path,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }
    if failures.is_empty() {
        println!("  all gated metrics within tolerance");
        Ok(())
    } else {
        Err(format!("performance regression:\n  {}", failures.join("\n  ")))
    }
}

fn run(opts: &Opts) -> Result<(), String> {
    let features = host_cpu_features();
    println!(
        "perf trajectory ({} mode): simd_compiled={}, auto resolves to {}, host cpu {}",
        if opts.smoke { "smoke" } else { "full" },
        Kernel::simd_compiled(),
        Kernel::Auto.variant(),
        if features.is_empty() { "baseline".to_string() } else { features.join("+") }
    );

    let kernel = kernel_section(opts);
    let full_prune = full_prune_section(opts);
    let dirty_path = dirty_path_section(opts);
    let snapshots = snapshots_section(opts);
    let ensemble = ensemble_section(opts);
    let serve = serve_section(opts);

    let artefact = Json::Object(vec![
        ("schema".to_string(), Json::string(SCHEMA)),
        ("seq".to_string(), Json::Number(opts.seq as f64)),
        ("smoke".to_string(), Json::Bool(opts.smoke)),
        (
            "host".to_string(),
            Json::Object(vec![
                (
                    "cpu_features".to_string(),
                    Json::Array(features.iter().map(|f| Json::string(*f)).collect()),
                ),
                ("simd_compiled".to_string(), Json::Bool(Kernel::simd_compiled())),
                ("auto_variant".to_string(), Json::string(Kernel::Auto.variant().to_string())),
            ]),
        ),
        ("kernel".to_string(), kernel),
        ("full_prune".to_string(), full_prune),
        ("dirty_path".to_string(), dirty_path),
        ("snapshots".to_string(), snapshots),
        ("ensemble".to_string(), ensemble),
        ("serve".to_string(), serve),
    ]);

    let out_path = match opts.out.as_deref() {
        Some("-") => None,
        Some(path) => Some(path.to_string()),
        None => Some(format!("BENCH_{}.json", opts.seq)),
    };
    if let Some(path) = out_path {
        std::fs::write(&path, artefact.to_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(baseline) = &opts.check_against {
        check_against(&artefact, baseline, opts.smoke)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_opts(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
