//! Throughput lane for the `mpcgs::serve` job queue.
//!
//! Floods the queue with many small-but-real estimation jobs (each one a
//! complete EM run on a tiny simulated alignment) and measures how fast the
//! pool drains them: jobs per second and p50/p99 job latency, on the serial
//! single-worker pool and on the threaded pool, across a sweep of queue
//! depths. The threaded rung at the deepest queue is the acceptance check
//! that the service layer sustains ≥1k queued jobs.
//!
//! Usage: `serve_throughput [--smoke] [--jobs <list>] [--workers <n>]
//! [--out <path>]`. `--jobs` is a comma-separated sweep (default
//! `100,1000,10000`, smoke `100,1000`); `--out` writes a schema'd JSON
//! artefact for CI upload.

use std::process::ExitCode;

use benchkit::json::Json;
use benchkit::{harness_rng, render_table, simulate_alignment};
use exec::Backend;
use mpcgs::{Dataset, JobQueue, JobSpec, MpcgsConfig, ServeConfig, ServeReport};

const SCHEMA: &str = "mpcgs-serve-throughput/v1";

struct Opts {
    smoke: bool,
    jobs: Vec<usize>,
    workers: usize,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let default_workers = std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(4);
    let mut opts = Opts { smoke: false, jobs: Vec::new(), workers: default_workers, out: None };
    let mut i = 0;
    while i < args.len() {
        let take_value = |name: &str, i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--jobs" => {
                let text = take_value("--jobs", &mut i)?;
                opts.jobs = text
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid --jobs entry {part:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--workers" => {
                let text = take_value("--workers", &mut i)?;
                opts.workers = text
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid --workers {text:?}"))?;
            }
            "--out" => opts.out = Some(take_value("--out", &mut i)?),
            "--help" | "-h" => {
                return Err("usage: serve_throughput [--smoke] [--jobs <n,n,...>] \
                            [--workers <n>] [--out <path>]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if opts.jobs.is_empty() {
        opts.jobs = if opts.smoke { vec![100, 1_000] } else { vec![100, 1_000, 10_000] };
    }
    Ok(opts)
}

/// One tiny but real job: a complete 1-round EM estimate on a 5-taxon
/// alignment. Small enough that the queue machinery (locking, preemption,
/// event fan-in) is a visible fraction of the cost, which is what this lane
/// is measuring.
fn job_config() -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        proposals_per_iteration: 4,
        draws_per_iteration: 4,
        burn_in_draws: 8,
        sample_draws: 24,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    }
}

fn drain(dataset: &Dataset, n_jobs: usize, backend: Backend, workers: usize) -> ServeReport {
    let mut queue = JobQueue::new(ServeConfig { backend, workers, quantum: 4 });
    for k in 0..n_jobs {
        queue.submit(JobSpec::new(
            format!("job-{k}"),
            dataset.clone(),
            job_config(),
            20_160_401 + k as u32,
        ));
    }
    let report = queue.run();
    assert_eq!(report.completed(), n_jobs, "every queued job must complete");
    report
}

fn run(opts: &Opts) -> Result<(), String> {
    let mut rng = harness_rng("serve-throughput", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 5, 40);
    let dataset = Dataset::single(alignment);

    println!(
        "serve throughput ({} mode): sweep {:?} jobs, threaded pool uses {} workers",
        if opts.smoke { "smoke" } else { "full" },
        opts.jobs,
        opts.workers
    );

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &n_jobs in &opts.jobs {
        let serial = drain(&dataset, n_jobs, Backend::Serial, 1);
        let threaded = drain(&dataset, n_jobs, Backend::Rayon, opts.workers);
        let speedup = threaded.jobs_per_sec() / serial.jobs_per_sec();
        for (label, report) in [("serial x1", &serial), ("threaded", &threaded)] {
            rows.push(vec![
                n_jobs.to_string(),
                label.to_string(),
                format!("{:.3}", report.wall_seconds),
                format!("{:.1}", report.jobs_per_sec()),
                format!("{:.4}", report.latency_quantile(0.5)),
                format!("{:.4}", report.latency_quantile(0.99)),
            ]);
        }
        points.push(Json::Object(vec![
            ("jobs".to_string(), Json::Number(n_jobs as f64)),
            ("serial_jobs_per_sec".to_string(), Json::Number(serial.jobs_per_sec())),
            ("serial_p50_s".to_string(), Json::Number(serial.latency_quantile(0.5))),
            ("serial_p99_s".to_string(), Json::Number(serial.latency_quantile(0.99))),
            ("threaded_jobs_per_sec".to_string(), Json::Number(threaded.jobs_per_sec())),
            ("threaded_p50_s".to_string(), Json::Number(threaded.latency_quantile(0.5))),
            ("threaded_p99_s".to_string(), Json::Number(threaded.latency_quantile(0.99))),
            ("threaded_over_serial".to_string(), Json::Number(speedup)),
        ]));
    }
    println!(
        "{}",
        render_table(
            "serve queue drain",
            &["jobs", "pool", "wall s", "jobs/s", "p50 s", "p99 s"],
            &rows,
        )
    );

    if let Some(path) = &opts.out {
        let artefact = Json::Object(vec![
            ("schema".to_string(), Json::string(SCHEMA)),
            ("smoke".to_string(), Json::Bool(opts.smoke)),
            ("workers".to_string(), Json::Number(opts.workers as f64)),
            ("points".to_string(), Json::Array(points)),
        ]);
        std::fs::write(path, artefact.to_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_opts(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
