//! Table 3 / Figure 15 — speedup versus the number of sequences.
//!
//! Produced by the calibrated device/host cost model (see DESIGN.md); the
//! paper's measured values are printed alongside.

use benchkit::render_table;
use mpcgs::perf::{SpeedupModel, TABLE3_PAPER, TABLE3_SEQUENCES};

fn main() {
    let model = SpeedupModel::paper_calibrated();
    let sweep = model.sweep_sequences(&TABLE3_SEQUENCES);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(TABLE3_PAPER.iter())
        .map(|(&(n, speedup), &paper)| {
            vec![format!("{n}"), format!("{speedup:.2}"), format!("{paper:.2}")]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 3 / Figure 15: speedup factor for varying number of sequences",
            &["# sequences", "modelled speedup", "paper speedup"],
            &rows,
        )
    );
    println!(
        "calibration: host scaled by {:.4} to anchor the 12-sequence row at 3.69x",
        model.host_calibration()
    );
}
