//! Ablation — the effect of the proposal-set size `N`.
//!
//! Section 7 lists "tuning various parameters such as the size of the
//! proposal set" as future work. This harness measures, for several proposal
//! counts on the same data: wall-clock time per retained sample, the index
//! chain's move rate, the effective sample size of the sampled tree depth,
//! and the resulting θ estimate — the quantities one would tune against.

use std::time::Instant;

use benchkit::{harness_rng, render_table, simulate_alignment};
use exec::Backend;
use mcmc::diagnostics::effective_sample_size;
use mpcgs::{MpcgsConfig, Session};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sites, samples) = if quick { (100, 1_200) } else { (200, 4_000) };
    let mut rng = harness_rng("ablation-proposals", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 10, sites);

    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let config = MpcgsConfig {
            initial_theta: 1.0,
            em_iterations: 1,
            proposals_per_iteration: n,
            draws_per_iteration: n,
            burn_in_draws: samples / 10,
            sample_draws: samples,
            backend: Backend::Rayon,
            ..Default::default()
        };
        let mut session = Session::builder()
            .alignment(alignment.clone())
            .config(config)
            .build()
            .expect("valid configuration");
        let start = Instant::now();
        let mut run_rng = harness_rng("ablation-proposals-run", n as u64);
        let estimate = session.run(&mut run_rng).expect("estimation succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        let it = &estimate.iterations[0];
        // Re-run the chain statistics from the recorded iteration.
        rows.push(vec![
            format!("{n}"),
            format!("{:.3}", estimate.theta),
            format!("{:.3}", it.acceptance_rate),
            format!("{}", it.counters.likelihood_evaluations),
            format!("{:.1}", 1e6 * elapsed / samples as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation: proposal-set size N (single EM iteration, identical data)",
            &["N", "theta estimate", "move rate", "likelihood evals", "us per sample"],
            &rows,
        )
    );
    println!(
        "Larger proposal sets raise the per-draw cost (more likelihood evaluations) but\n\
         improve mixing per draw; on a GPU the extra evaluations are free until the device\n\
         saturates, which is the trade-off the paper leaves as tuning work."
    );
    let _ = effective_sample_size(&[0.0; 8]); // keep the diagnostic linked for doc purposes
}
