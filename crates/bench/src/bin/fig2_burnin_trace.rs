//! Figure 2 — a Markov chain converging from a poor starting state
//! (burn-in).
//!
//! Runs a baseline-strategy session from a deliberately bad starting tree
//! and prints the trace of `ln P(D|G)` so the burn-in transient is visible,
//! together with the automatic burn-in estimate and effective sample size.

use benchkit::{harness_rng, simulate_alignment};
use mcmc::diagnostics::{detect_burn_in, effective_sample_size};
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
use phylo::upgma_tree;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let transitions = if quick { 1_500 } else { 6_000 };
    let mut rng = harness_rng("fig2", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, 10, 150);
    let config = MpcgsConfig {
        initial_theta: 1.0,
        burn_in_draws: 0,
        sample_draws: transitions,
        ..MpcgsConfig::default()
    };
    // A poor start: the UPGMA tree stretched far too tall.
    let mut initial = upgma_tree(&alignment, 1.0).expect("UPGMA succeeds");
    initial.scale_times(40.0);
    let mut session = Session::builder()
        .alignment(alignment)
        .strategy(SamplerStrategy::Baseline)
        .config(config)
        .initial_tree(initial)
        .build()
        .expect("valid configuration");
    let run = session.run_chain(&mut rng).expect("sampler run succeeds");

    let trace = run.trace.all();
    let burn_in = detect_burn_in(trace, 3.0);
    let ess = effective_sample_size(&trace[burn_in..]).unwrap_or(f64::NAN);

    println!("Figure 2: burn-in trace of ln P(D|G) from a poor starting genealogy\n");
    let bins = 60usize;
    let per_bin = trace.len().div_ceil(bins);
    let finite_min = trace.iter().cloned().fold(f64::MAX, f64::min);
    let finite_max = trace.iter().cloned().fold(f64::MIN, f64::max);
    let span = (finite_max - finite_min).max(1e-9);
    println!("  transition     mean ln P(D|G)   trace");
    for b in 0..bins {
        let lo = b * per_bin;
        if lo >= trace.len() {
            break;
        }
        let hi = ((b + 1) * per_bin).min(trace.len());
        let mean = trace[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let frac = (mean - finite_min) / span;
        let bar = "#".repeat((frac * 48.0).round() as usize + 1);
        let marker =
            if lo <= burn_in && burn_in < hi { "  <- estimated end of burn-in" } else { "" };
        println!("  {lo:>10}     {mean:>14.2}   {bar}{marker}");
    }
    println!("\nautomatic burn-in estimate: {burn_in} transitions");
    println!(
        "post-burn-in effective sample size: {ess:.0} (of {} transitions)",
        trace.len() - burn_in
    );
    println!("acceptance rate: {:.3}", run.acceptance_rate());
    println!(
        "workspace commits on accept: {} ({} nodes promoted)",
        run.counters.workspace_commits, run.counters.nodes_committed
    );
}
