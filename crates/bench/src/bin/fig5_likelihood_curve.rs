//! Figure 5 — a relative-likelihood curve with true θ = 1.0 and driving
//! θ₀ = 0.01.
//!
//! Simulates one data set at θ = 1.0, runs a multi-proposal session with a
//! deliberately bad driving value of 0.01 (the paper's setup) and prints the
//! relative-likelihood curve L(θ) over a log-spaced grid together with an
//! ASCII rendering. Values of θ near the true value should carry far higher
//! relative likelihood than the driving value.

use benchkit::{harness_rng, simulate_alignment};
use exec::Backend;
use mpcgs::{MpcgsConfig, RelativeLikelihood, Session};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_sequences, sites, samples) = if quick { (8, 100, 1_500) } else { (12, 200, 6_000) };
    let mut rng = harness_rng("fig5", 0);
    let alignment = simulate_alignment(&mut rng, 1.0, n_sequences, sites);

    let config = MpcgsConfig {
        initial_theta: 0.01,
        em_iterations: 1,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: samples / 10,
        sample_draws: samples,
        backend: Backend::Rayon,
        ..Default::default()
    };
    let mut session =
        Session::builder().alignment(alignment).config(config).build().expect("valid session");
    let grid = RelativeLikelihood::log_grid(0.01, 10.0, 40);
    let curve = session.likelihood_curve(&mut rng, &grid).expect("curve evaluation succeeds");

    println!("Figure 5: relative log-likelihood curve, true theta = 1.0, driving theta0 = 0.01\n");
    println!("  {:>10}  {:>14}  curve", "theta", "ln L(theta)");
    let finite: Vec<f64> = curve.iter().map(|&(_, y)| y).filter(|y| y.is_finite()).collect();
    let max = finite.iter().cloned().fold(f64::MIN, f64::max);
    let min = finite.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-9);
    for &(theta, lnl) in &curve {
        let bar = if lnl.is_finite() {
            let frac = (lnl - min) / span;
            "#".repeat((frac * 50.0).round() as usize)
        } else {
            String::new()
        };
        println!("  {theta:>10.4}  {lnl:>14.3}  {bar}");
    }
    let best = curve.iter().cloned().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
    println!("\npeak of the curve: theta = {:.3} (true value 1.0, driving value 0.01)", best.0);
}
