//! Table 1 / Figure 13 — accuracy of θ estimation: baseline (LAMARC-style)
//! versus mpcgs over simulated data with known true θ.
//!
//! The paper simulates data with `ms` + `seq-gen -mF84` at true θ ∈
//! {0.5, 1, 2, 3, 4} (12 sequences × 200 bp), runs both estimators on each
//! data set, and reports per-θ means, standard deviations and the Pearson
//! correlation between true and estimated values (r = 0.905 in the paper).
//! Both estimators are the same `Session` facade with different sampler
//! strategies. Run with `--quick` for a faster, smaller sweep.

use benchkit::{harness_rng, mean_and_sd, pearson_correlation, render_table, simulate_alignment};
use exec::Backend;
use mcmc::rng::Mt19937;
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
use phylo::Alignment;

struct Scale {
    replicates: usize,
    n_sequences: usize,
    sites: usize,
    samples: usize,
    burn_in: usize,
    em_iterations: usize,
}

fn estimate(
    alignment: &Alignment,
    strategy: SamplerStrategy,
    scale: &Scale,
    rng: &mut Mt19937,
) -> f64 {
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: scale.em_iterations,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: scale.burn_in,
        sample_draws: scale.samples,
        backend: Backend::Rayon,
        ..MpcgsConfig::default()
    };
    Session::builder()
        .alignment(alignment.clone())
        .strategy(strategy)
        .config(config)
        .build()
        .expect("valid configuration")
        .run(rng)
        .expect("estimation succeeds")
        .theta
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            replicates: 2,
            n_sequences: 8,
            sites: 120,
            samples: 1_500,
            burn_in: 200,
            em_iterations: 2,
        }
    } else {
        Scale {
            replicates: 5,
            n_sequences: 12,
            sites: 200,
            samples: 6_000,
            burn_in: 600,
            em_iterations: 3,
        }
    };
    let true_thetas = [0.5, 1.0, 2.0, 3.0, 4.0];

    let mut rows = Vec::new();
    let mut truth_series = Vec::new();
    let mut mpcgs_series = Vec::new();
    let mut lamarc_series = Vec::new();

    for (ti, &true_theta) in true_thetas.iter().enumerate() {
        let mut lamarc_estimates = Vec::new();
        let mut mpcgs_estimates = Vec::new();
        for rep in 0..scale.replicates {
            let mut rng = harness_rng("table1", (ti * 1_000 + rep) as u64);
            let alignment =
                simulate_alignment(&mut rng, true_theta, scale.n_sequences, scale.sites);

            lamarc_estimates.push(estimate(
                &alignment,
                SamplerStrategy::Baseline,
                &scale,
                &mut rng,
            ));
            mpcgs_estimates.push(estimate(
                &alignment,
                SamplerStrategy::MultiProposal,
                &scale,
                &mut rng,
            ));

            truth_series.push(true_theta);
            lamarc_series.push(*lamarc_estimates.last().unwrap());
            mpcgs_series.push(*mpcgs_estimates.last().unwrap());
        }
        let (lamarc_mean, lamarc_sd) = mean_and_sd(&lamarc_estimates);
        let (mpcgs_mean, mpcgs_sd) = mean_and_sd(&mpcgs_estimates);
        rows.push(vec![
            format!("{true_theta:.1}"),
            format!("{lamarc_mean:.3}"),
            format!("{lamarc_sd:.3}"),
            format!("{mpcgs_mean:.3}"),
            format!("{mpcgs_sd:.3}"),
        ]);
    }

    println!(
        "{}",
        render_table(
            "Table 1: comparison of the baseline and mpcgs for theta estimation",
            &["true theta", "baseline", "baseline sd", "mpcgs", "mpcgs sd"],
            &rows,
        )
    );
    println!(
        "Pearson correlation (true vs mpcgs):    r = {:.3}   (paper: 0.905)",
        pearson_correlation(&truth_series, &mpcgs_series)
    );
    println!(
        "Pearson correlation (true vs baseline): r = {:.3}",
        pearson_correlation(&truth_series, &lamarc_series)
    );
    println!(
        "Pearson correlation (baseline vs mpcgs): r = {:.3}   (Figure 13's agreement)",
        pearson_correlation(&lamarc_series, &mpcgs_series)
    );
    println!(
        "\nPaper reference (Table 1): true 0.5 -> LAMARC 0.858 / mpcgs 0.966; 1.0 -> 0.959 / 1.131; \
         2.0 -> 2.521 / 2.423; 3.0 -> 5.432 / 5.32; 4.0 -> 4.384 / 3.913"
    );
}
