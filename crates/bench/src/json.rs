//! Re-export of the workspace JSON codec.
//!
//! The perf-trajectory harness grew this module first; when checkpointing
//! needed the same serde-free tree it was promoted to the shared [`codec`]
//! crate. This alias keeps the historical `benchkit::json::Json` path
//! working for the bench binaries.

pub use codec::Json;
