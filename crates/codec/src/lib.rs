//! A minimal JSON tree with a pretty writer, a recursive-descent parser,
//! and bit-exact scalar encodings — the workspace's shared serde-free codec.
//!
//! Two families of artefact flow through this crate: the perf-trajectory
//! harness persists `BENCH_<seq>.json` files and compares runs against a
//! committed baseline, and the checkpoint/resume layer serialises sampler
//! state that must survive a write → parse cycle **bit for bit**. The
//! workspace deliberately carries no serde dependency (offline, minimal
//! closure), so this crate provides the small subset of JSON both need:
//! objects with preserved key order, arrays, strings, IEEE doubles,
//! booleans and null.
//!
//! Numbers are written with Rust's shortest-roundtrip `f64` formatting, so
//! a finite double survives a write → parse cycle with its exact bit
//! pattern and the cycle is a stable fixed point. Non-finite numbers have
//! no JSON representation: plain [`Json::Number`] writes them as `null`,
//! and the lossless paths use [`Json::exact_f64`] (hex-bits string
//! fallback) instead. Integers wider than the 53-bit mantissa (seeds, RNG
//! stream positions) go through [`Json::u64_text`], which carries them as
//! decimal strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A JSON value. Object keys keep their insertion order so emitted
/// artefacts diff cleanly across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`, as in JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an ordered key → value list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn string(text: impl Into<String>) -> Json {
        Json::String(text.into())
    }

    /// Member lookup on an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => {
                members.iter().find(|(name, _)| name == key).map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// Nested member lookup along a dotted path (`"dirty_path.hit_rate"`).
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements inside, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Encode a `u64` losslessly as a decimal string. [`Json::Number`]
    /// carries `f64`, which cannot represent integers above 2⁵³ exactly —
    /// seeds and RNG stream positions use the full 64-bit range.
    pub fn u64_text(value: u64) -> Json {
        Json::String(value.to_string())
    }

    /// Decode a `u64` written by [`Json::u64_text`].
    pub fn as_u64_text(&self) -> Option<u64> {
        self.as_str()?.parse().ok()
    }

    /// Encode an `f64` losslessly. Finite values (including signed zero)
    /// ride the shortest-roundtrip [`Json::Number`] path; non-finite values,
    /// which plain numbers would flatten to `null`, are carried as a
    /// `"f64:0x…"` hex-bits string so even NaN payloads survive.
    pub fn exact_f64(value: f64) -> Json {
        if value.is_finite() {
            Json::Number(value)
        } else {
            Json::String(format!("f64:0x{:016x}", value.to_bits()))
        }
    }

    /// Decode an `f64` written by [`Json::exact_f64`].
    pub fn as_exact_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            Json::String(s) => s
                .strip_prefix("f64:0x")
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .map(f64::from_bits),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline (the format
    /// committed as `BENCH_<seq>.json`).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and a short
    /// description.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> String {
        format!("json parse error at byte {}: {message}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("expected a value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        // The scanned range is ASCII by the loop condition, so from_utf8
        // cannot fail; route the impossible arm to the same parse error
        // rather than panicking inside the checkpoint codec.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        // Scan at the byte level and copy plain runs in one go: `"` and `\`
        // never occur inside a multi-byte UTF-8 sequence (continuation bytes
        // are >= 0x80), so a byte match is a character match, and validating
        // UTF-8 once per run keeps parsing linear in the document size.
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.utf8_run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.utf8_run(run_start)?);
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The escape-free span `[run_start, pos)`, validated as UTF-8.
    fn utf8_run(&self, run_start: usize) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes[run_start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in string"))
    }

    fn parse_unicode_escape(&mut self) -> Result<char, String> {
        let first = self.parse_hex4()?;
        // Surrogate pair: a high surrogate must be followed by `\u` and a
        // low surrogate; anything else is malformed.
        let code = if (0xd800..0xdc00).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect_byte(b'u')?;
            } else {
                return Err(self.error("lone high surrogate"));
            }
            let second = self.parse_hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("malformed \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("malformed \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::Object(vec![
            ("schema".to_string(), Json::string("mpcgs-perf-trajectory/v1")),
            ("smoke".to_string(), Json::Bool(false)),
            ("nothing".to_string(), Json::Null),
            (
                "kernel".to_string(),
                Json::Object(vec![
                    ("scalar_mpatterns_per_s".to_string(), Json::Number(123.25)),
                    ("ratio".to_string(), Json::Number(1.5)),
                    ("counts".to_string(), Json::Array(vec![Json::Number(1.0), Json::Number(2.0)])),
                ]),
            ),
            ("empty_array".to_string(), Json::Array(vec![])),
            ("empty_object".to_string(), Json::Object(vec![])),
        ])
    }

    #[test]
    fn round_trips_through_pretty_text() {
        let original = doc();
        let text = original.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, original);
        // Stable fixed point: writing the parse reproduces the text.
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn path_lookup_and_accessors() {
        let d = doc();
        assert_eq!(d.get("schema").and_then(Json::as_str), Some("mpcgs-perf-trajectory/v1"));
        assert_eq!(d.get_path("kernel.ratio").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            d.get_path("kernel.counts").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(d.get("smoke").and_then(Json::as_bool), Some(false));
        assert_eq!(d.get_path("kernel.missing"), None);
        assert_eq!(d.get_path("smoke.too_deep"), None);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let parsed =
            Json::parse(r#"{"s": "a\"b\\c\n\u0041\u00e9\ud83d\ude00", "n": [-1.5e3, 0, 42]}"#)
                .unwrap();
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some("a\"b\\c\nAé😀"));
        let numbers: Vec<f64> =
            parsed.get("n").unwrap().as_array().unwrap().iter().filter_map(Json::as_f64).collect();
        assert_eq!(numbers, vec![-1500.0, 0.0, 42.0]);
    }

    #[test]
    fn escapes_survive_a_write_parse_cycle() {
        let original = Json::Object(vec![(
            "text".to_string(),
            Json::string("tab\there \"quoted\" back\\slash\nline\u{0001}"),
        )]);
        let parsed = Json::parse(&original.to_pretty()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{\"a\": \"\\ud800x\"}"]
        {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_numbers_are_written_as_null() {
        let d = Json::Array(vec![Json::Number(f64::NAN), Json::Number(f64::INFINITY)]);
        let parsed = Json::parse(&d.to_pretty()).unwrap();
        assert_eq!(parsed, Json::Array(vec![Json::Null, Json::Null]));
    }

    #[test]
    fn parses_large_string_heavy_documents() {
        // Checkpoint documents reach tens of megabytes and are mostly
        // strings (u64_text positions, exact_f64 bit strings). The parser
        // must stay linear: the original per-character implementation
        // re-validated the whole remaining input for every byte, which
        // turned these documents into effectively infinite parses.
        let long = "x".repeat(1 << 20);
        let many: Vec<Json> = (0..100_000u64).map(Json::u64_text).collect();
        let doc = Json::Object(vec![
            ("long".to_string(), Json::string(long.clone())),
            ("many".to_string(), Json::Array(many)),
        ]);
        let parsed = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(parsed.get("long").and_then(Json::as_str), Some(long.as_str()));
        assert_eq!(parsed.get("many").and_then(Json::as_array).map(<[Json]>::len), Some(100_000));
        assert_eq!(parsed, doc);
    }

    #[test]
    fn u64_text_round_trips_the_full_range() {
        for value in [0u64, 1, (1 << 53) + 1, u64::MAX, 0x656E_7365_6D62_6C65] {
            let encoded = Json::u64_text(value);
            let parsed = Json::parse(&encoded.to_pretty()).unwrap();
            assert_eq!(parsed.as_u64_text(), Some(value));
        }
        assert_eq!(Json::Number(3.0).as_u64_text(), None);
        assert_eq!(Json::string("not a number").as_u64_text(), None);
    }

    #[test]
    fn exact_f64_round_trips_bit_patterns() {
        let quiet_nan = f64::from_bits(0x7ff8_0000_0000_0001);
        for value in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE / 8.0,
            1.0e308,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            quiet_nan,
        ] {
            let encoded = Json::exact_f64(value);
            let parsed = Json::parse(&encoded.to_pretty()).unwrap();
            let decoded = parsed.as_exact_f64().unwrap();
            assert_eq!(decoded.to_bits(), value.to_bits(), "bits diverged for {value}");
        }
        assert_eq!(Json::string("f64:0xzz").as_exact_f64(), None);
        assert_eq!(Json::Null.as_exact_f64(), None);
    }
}
