//! Site-pattern compression.
//!
//! The likelihood of an alignment factorises over sites (Eq. 22), and many
//! alignment columns are identical — especially for closely related
//! sequences, where most columns are invariant. Collapsing identical columns
//! into unique *patterns* with multiplicities lets the likelihood engine do
//! the per-column pruning work once per pattern and multiply the resulting
//! log-likelihood by the pattern count. This is the standard optimisation
//! used by every serious phylogenetic likelihood implementation; the paper's
//! CUDA kernel instead recomputes every site because "the cost of uncached
//! memory access ... means it is computationally more efficient to simply
//! recalculate" (Section 5.2.2) — both paths are provided by the likelihood
//! engine so the trade-off can be benchmarked.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use crate::alignment::Alignment;
use crate::nucleotide::Nucleotide;

/// The distinct alignment columns and their multiplicities.
#[derive(Debug, Clone, PartialEq)]
pub struct SitePatterns {
    /// Each pattern is one base per sequence (same order as the alignment).
    patterns: Vec<Vec<Nucleotide>>,
    /// How many alignment columns carry each pattern.
    weights: Vec<usize>,
    /// Number of sequences per pattern.
    n_sequences: usize,
    /// Total number of sites in the source alignment.
    n_sites: usize,
}

impl SitePatterns {
    /// Compress an alignment into its site patterns.
    ///
    /// Columns are first packed two bits per base into a flat `u64` buffer
    /// (the Section 5.1.3 encoding: 32 sequences per word), site-major, so
    /// deduplication compares word slices borrowed from that one buffer —
    /// no per-site `Vec<Nucleotide>` materialises for the repeated columns
    /// that make compression worthwhile. The index is a `BTreeMap` (ordered,
    /// hasher-free) so nothing about pattern numbering can ever depend on a
    /// per-process hash seed; only the first occurrence of each pattern
    /// expands back to nucleotides, and patterns keep their
    /// first-occurrence order.
    pub fn from_alignment(alignment: &Alignment) -> Self {
        let n_sites = alignment.n_sites();
        let n_sequences = alignment.n_sequences();
        let words = n_sequences.div_ceil(32).max(1);
        let mut packed = vec![0u64; n_sites * words];
        for (row, seq) in alignment.sequences().iter().enumerate() {
            let word = row / 32;
            let shift = 2 * (row % 32);
            for (site, bases) in packed.chunks_exact_mut(words).enumerate() {
                bases[word] |= (seq.base(site).index() as u64) << shift;
            }
        }
        let mut index: BTreeMap<&[u64], usize> = BTreeMap::new();
        let mut patterns: Vec<Vec<Nucleotide>> = Vec::new();
        let mut weights: Vec<usize> = Vec::new();
        for (site, key) in packed.chunks_exact(words).enumerate() {
            match index.entry(key) {
                Entry::Occupied(slot) => weights[*slot.get()] += 1,
                Entry::Vacant(slot) => {
                    slot.insert(patterns.len());
                    patterns.push(alignment.column(site));
                    weights.push(1);
                }
            }
        }
        SitePatterns { patterns, weights, n_sequences, n_sites }
    }

    /// Number of distinct patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Number of sites in the original alignment.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of sequences (rows) per pattern.
    pub fn n_sequences(&self) -> usize {
        self.n_sequences
    }

    /// The `i`-th pattern: one base per sequence.
    pub fn pattern(&self, i: usize) -> &[Nucleotide] {
        &self.patterns[i]
    }

    /// The multiplicity of the `i`-th pattern.
    pub fn weight(&self, i: usize) -> usize {
        self.weights[i]
    }

    /// All multiplicities.
    pub fn weights(&self) -> &[usize] {
        &self.weights
    }

    /// Iterate over `(pattern, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Nucleotide], usize)> {
        self.patterns.iter().map(|p| p.as_slice()).zip(self.weights.iter().copied())
    }

    /// Compression ratio `n_sites / n_patterns` (≥ 1).
    pub fn compression_ratio(&self) -> f64 {
        if self.patterns.is_empty() {
            1.0
        } else {
            self.n_sites as f64 / self.patterns.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;

    #[test]
    fn collapses_identical_columns() {
        let a =
            Alignment::from_letters(&[("s1", "AAGAA"), ("s2", "AAGAA"), ("s3", "AATAA")]).unwrap();
        let p = SitePatterns::from_alignment(&a);
        // Columns: (A,A,A) x4? -> cols 0,1,3,4 are (A,A,A)? col2 = (G,G,T).
        assert_eq!(p.n_sites(), 5);
        assert_eq!(p.n_patterns(), 2);
        assert_eq!(p.n_sequences(), 3);
        let total: usize = p.weights().iter().sum();
        assert_eq!(total, 5);
        assert!((p.compression_ratio() - 2.5).abs() < 1e-12);
        // The invariant pattern has weight 4.
        let invariant = p
            .iter()
            .find(|(pat, _)| pat.iter().all(|&b| b == Nucleotide::A))
            .expect("invariant pattern present");
        assert_eq!(invariant.1, 4);
    }

    #[test]
    fn all_distinct_columns_do_not_compress() {
        let a = Alignment::from_letters(&[("s1", "ACGT"), ("s2", "CGTA")]).unwrap();
        let p = SitePatterns::from_alignment(&a);
        assert_eq!(p.n_patterns(), 4);
        assert!(p.weights().iter().all(|&w| w == 1));
        assert_eq!(p.compression_ratio(), 1.0);
        assert_eq!(p.pattern(0), &[Nucleotide::A, Nucleotide::C]);
        assert_eq!(p.weight(0), 1);
    }

    #[test]
    fn packing_handles_more_than_one_word_of_sequences() {
        // 35 sequences > 32 forces the two-word packed-column path; the
        // alignment is built so sites 0 and 2 collide in word 0 (first 32
        // rows identical) but differ in word 1 (rows 32+), which a buggy
        // one-word dedup would conflate.
        let n_seqs = 35usize;
        let rows: Vec<(String, String)> = (0..n_seqs)
            .map(|r| {
                let third = if r >= 32 { 'T' } else { 'A' };
                (format!("s{r}"), format!("AC{third}A"))
            })
            .collect();
        let named: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let a = Alignment::from_letters(&named).unwrap();
        let p = SitePatterns::from_alignment(&a);
        // Columns: 0 = all A, 1 = all C, 2 = A×32 then T×3, 3 = all A.
        assert_eq!(p.n_patterns(), 3);
        assert_eq!(p.weights().iter().sum::<usize>(), 4);
        // First-occurrence order: all-A first, then all-C, then the mixed one.
        assert!(p.pattern(0).iter().all(|&b| b == Nucleotide::A));
        assert_eq!(p.weight(0), 2);
        assert!(p.pattern(1).iter().all(|&b| b == Nucleotide::C));
        assert_eq!(p.pattern(2)[31], Nucleotide::A);
        assert_eq!(p.pattern(2)[32], Nucleotide::T);
        // Each pattern still expands to one base per sequence.
        for i in 0..p.n_patterns() {
            assert_eq!(p.pattern(i).len(), n_seqs);
        }
    }

    #[test]
    fn packed_dedup_matches_the_naive_column_map() {
        // Randomised cross-check against a straightforward Vec-keyed dedup.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let letters = ['A', 'C', 'G', 'T'];
        for n_seqs in [1usize, 2, 31, 32, 33, 40] {
            let n_sites = 64;
            let rows: Vec<(String, String)> = (0..n_seqs)
                .map(|r| {
                    let seq: String =
                        (0..n_sites).map(|_| letters[(next() % 3) as usize]).collect();
                    (format!("s{r}"), seq)
                })
                .collect();
            let named: Vec<(&str, &str)> =
                rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
            let a = Alignment::from_letters(&named).unwrap();
            let p = SitePatterns::from_alignment(&a);
            let mut naive: HashMap<Vec<Nucleotide>, usize> = HashMap::new();
            for site in 0..a.n_sites() {
                *naive.entry(a.column(site)).or_insert(0) += 1;
            }
            assert_eq!(p.n_patterns(), naive.len(), "{n_seqs} sequences");
            for i in 0..p.n_patterns() {
                assert_eq!(naive.get(p.pattern(i)), Some(&p.weight(i)), "{n_seqs} sequences");
            }
        }
    }

    #[test]
    fn weights_always_sum_to_site_count() {
        let a = Alignment::from_letters(&[
            ("s1", "ACGTACGTACGTAAAA"),
            ("s2", "ACGTACGAACGTAAAA"),
            ("s3", "ACGTACGTACGAAAAA"),
            ("s4", "ACGTACGTACGTAAAT"),
        ])
        .unwrap();
        let p = SitePatterns::from_alignment(&a);
        assert_eq!(p.weights().iter().sum::<usize>(), a.n_sites());
        assert!(p.n_patterns() <= a.n_sites());
        assert!(p.n_patterns() >= 1);
        for i in 0..p.n_patterns() {
            assert_eq!(p.pattern(i).len(), a.n_sequences());
        }
    }
}
