//! Site-pattern compression.
//!
//! The likelihood of an alignment factorises over sites (Eq. 22), and many
//! alignment columns are identical — especially for closely related
//! sequences, where most columns are invariant. Collapsing identical columns
//! into unique *patterns* with multiplicities lets the likelihood engine do
//! the per-column pruning work once per pattern and multiply the resulting
//! log-likelihood by the pattern count. This is the standard optimisation
//! used by every serious phylogenetic likelihood implementation; the paper's
//! CUDA kernel instead recomputes every site because "the cost of uncached
//! memory access ... means it is computationally more efficient to simply
//! recalculate" (Section 5.2.2) — both paths are provided by the likelihood
//! engine so the trade-off can be benchmarked.

use std::collections::HashMap;

use crate::alignment::Alignment;
use crate::nucleotide::Nucleotide;

/// The distinct alignment columns and their multiplicities.
#[derive(Debug, Clone, PartialEq)]
pub struct SitePatterns {
    /// Each pattern is one base per sequence (same order as the alignment).
    patterns: Vec<Vec<Nucleotide>>,
    /// How many alignment columns carry each pattern.
    weights: Vec<usize>,
    /// Number of sequences per pattern.
    n_sequences: usize,
    /// Total number of sites in the source alignment.
    n_sites: usize,
}

impl SitePatterns {
    /// Compress an alignment into its site patterns.
    pub fn from_alignment(alignment: &Alignment) -> Self {
        let n_sites = alignment.n_sites();
        let n_sequences = alignment.n_sequences();
        let mut index: HashMap<Vec<Nucleotide>, usize> = HashMap::new();
        let mut patterns: Vec<Vec<Nucleotide>> = Vec::new();
        let mut weights: Vec<usize> = Vec::new();
        for site in 0..n_sites {
            let column = alignment.column(site);
            match index.get(&column) {
                Some(&i) => weights[i] += 1,
                None => {
                    index.insert(column.clone(), patterns.len());
                    patterns.push(column);
                    weights.push(1);
                }
            }
        }
        SitePatterns { patterns, weights, n_sequences, n_sites }
    }

    /// Number of distinct patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Number of sites in the original alignment.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of sequences (rows) per pattern.
    pub fn n_sequences(&self) -> usize {
        self.n_sequences
    }

    /// The `i`-th pattern: one base per sequence.
    pub fn pattern(&self, i: usize) -> &[Nucleotide] {
        &self.patterns[i]
    }

    /// The multiplicity of the `i`-th pattern.
    pub fn weight(&self, i: usize) -> usize {
        self.weights[i]
    }

    /// All multiplicities.
    pub fn weights(&self) -> &[usize] {
        &self.weights
    }

    /// Iterate over `(pattern, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Nucleotide], usize)> {
        self.patterns.iter().map(|p| p.as_slice()).zip(self.weights.iter().copied())
    }

    /// Compression ratio `n_sites / n_patterns` (≥ 1).
    pub fn compression_ratio(&self) -> f64 {
        if self.patterns.is_empty() {
            1.0
        } else {
            self.n_sites as f64 / self.patterns.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_identical_columns() {
        let a =
            Alignment::from_letters(&[("s1", "AAGAA"), ("s2", "AAGAA"), ("s3", "AATAA")]).unwrap();
        let p = SitePatterns::from_alignment(&a);
        // Columns: (A,A,A) x4? -> cols 0,1,3,4 are (A,A,A)? col2 = (G,G,T).
        assert_eq!(p.n_sites(), 5);
        assert_eq!(p.n_patterns(), 2);
        assert_eq!(p.n_sequences(), 3);
        let total: usize = p.weights().iter().sum();
        assert_eq!(total, 5);
        assert!((p.compression_ratio() - 2.5).abs() < 1e-12);
        // The invariant pattern has weight 4.
        let invariant = p
            .iter()
            .find(|(pat, _)| pat.iter().all(|&b| b == Nucleotide::A))
            .expect("invariant pattern present");
        assert_eq!(invariant.1, 4);
    }

    #[test]
    fn all_distinct_columns_do_not_compress() {
        let a = Alignment::from_letters(&[("s1", "ACGT"), ("s2", "CGTA")]).unwrap();
        let p = SitePatterns::from_alignment(&a);
        assert_eq!(p.n_patterns(), 4);
        assert!(p.weights().iter().all(|&w| w == 1));
        assert_eq!(p.compression_ratio(), 1.0);
        assert_eq!(p.pattern(0), &[Nucleotide::A, Nucleotide::C]);
        assert_eq!(p.weight(0), 1);
    }

    #[test]
    fn weights_always_sum_to_site_count() {
        let a = Alignment::from_letters(&[
            ("s1", "ACGTACGTACGTAAAA"),
            ("s2", "ACGTACGAACGTAAAA"),
            ("s3", "ACGTACGTACGAAAAA"),
            ("s4", "ACGTACGTACGTAAAT"),
        ])
        .unwrap();
        let p = SitePatterns::from_alignment(&a);
        assert_eq!(p.weights().iter().sum::<usize>(), a.n_sites());
        assert!(p.n_patterns() <= a.n_sites());
        assert!(p.n_patterns() >= 1);
        for i in 0..p.n_patterns() {
            assert_eq!(p.pattern(i).len(), a.n_sequences());
        }
    }
}
