//! UPGMA tree construction (Section 5.1.3).
//!
//! The starting genealogy G₀ of the Markov chain is "the UPGMA tree generated
//! by the distance between sequences in D": clusters are repeatedly merged in
//! order of smallest average linkage distance, the height of each merge being
//! half the distance (so leaf-to-root paths are ultrametric). Branch lengths
//! are subsequently scaled by the driving θ via [`GeneTree::scale_times`].

use crate::alignment::Alignment;
use crate::distance::{DistanceMatrix, DistanceMetric};
use crate::error::PhyloError;
use crate::tree::{GeneTree, TreeBuilder};

/// Build a UPGMA tree from a precomputed distance matrix.
pub fn upgma_from_distances(matrix: &DistanceMatrix) -> Result<GeneTree, PhyloError> {
    let n = matrix.len();
    if n == 0 {
        return Err(PhyloError::Empty { what: "distance matrix" });
    }
    if n == 1 {
        return Err(PhyloError::InvalidTree {
            message: "UPGMA needs at least two sequences".into(),
        });
    }

    let mut builder = TreeBuilder::new();
    /// One active cluster during agglomeration.
    struct Cluster {
        node: usize,
        size: usize,
        height: f64,
    }
    let mut clusters: Vec<Cluster> = (0..n)
        .map(|i| Cluster {
            node: builder.add_tip(matrix.names()[i].clone(), 0.0),
            size: 1,
            height: 0.0,
        })
        .collect();
    // Working copy of pairwise distances between active clusters, indexed by
    // position in `clusters`.
    let mut dist: Vec<Vec<f64>> =
        (0..n).map(|i| (0..n).map(|j| matrix.get(i, j)).collect()).collect();

    #[allow(clippy::needless_range_loop)] // triangular indexing over a shrinking matrix
    while clusters.len() > 1 {
        // Find the closest pair.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                if dist[i][j] < best {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        // Merge: height of the new node is half the distance, but never below
        // either child's height (guards against non-ultrametric input).
        let height = (best / 2.0).max(clusters[bi].height).max(clusters[bj].height);
        let node = builder.join(clusters[bi].node, clusters[bj].node, height);
        let merged_size = clusters[bi].size + clusters[bj].size;

        // New distances by weighted average linkage.
        let mut new_row: Vec<f64> = Vec::with_capacity(clusters.len() - 1);
        for k in 0..clusters.len() {
            if k == bi || k == bj {
                continue;
            }
            let d = (dist[bi][k] * clusters[bi].size as f64
                + dist[bj][k] * clusters[bj].size as f64)
                / merged_size as f64;
            new_row.push(d);
        }

        // Remove bj then bi (bj > bi) from clusters and the distance matrix.
        let (hi, lo) = (bj, bi);
        clusters.remove(hi);
        clusters.remove(lo);
        dist.remove(hi);
        dist.remove(lo);
        for row in &mut dist {
            row.remove(hi);
            row.remove(lo);
        }
        // Append the merged cluster.
        clusters.push(Cluster { node, size: merged_size, height });
        for (row, &d) in dist.iter_mut().zip(new_row.iter()) {
            row.push(d);
        }
        let mut last_row = new_row;
        last_row.push(0.0);
        dist.push(last_row);
    }

    builder.build()
}

/// Build the UPGMA starting genealogy for an alignment, as the paper does:
/// Hamming distances, merge heights of half the distance, then scale all node
/// times by `theta_scale` (the driving θ, divided by the sequence length so
/// the heights are in the same units as coalescent time).
pub fn upgma_tree(alignment: &Alignment, theta_scale: f64) -> Result<GeneTree, PhyloError> {
    if !(theta_scale > 0.0 && theta_scale.is_finite()) {
        return Err(PhyloError::InvalidParameter {
            name: "theta_scale",
            value: theta_scale,
            constraint: "theta_scale > 0",
        });
    }
    let matrix = DistanceMatrix::from_alignment(alignment, DistanceMetric::PDistance)?;
    let mut tree = upgma_from_distances(&matrix)?;
    // Guard against a completely invariant alignment, which yields a
    // zero-height tree that the samplers cannot perturb: give it a small
    // positive height proportional to the driving value.
    if tree.tmrca() <= 0.0 {
        let n = tree.n_nodes();
        for node in tree.internal_nodes() {
            // Spread internal nodes over (0, 0.5] in arena order.
            let t = 0.5 * ((node + 1) as f64 / n as f64);
            tree.set_time(node, t);
        }
        // Re-sort times so parents stay older than children.
        fix_ordering(&mut tree);
    }
    tree.scale_times(theta_scale);
    tree.validate()?;
    Ok(tree)
}

/// Ensure each parent is at least as old as its children by pushing parents
/// upward where necessary (used only for the degenerate invariant-data case).
fn fix_ordering(tree: &mut GeneTree) {
    let order = tree.post_order();
    for node in order {
        if let Some((a, b)) = tree.children(node) {
            let min_parent = tree.time(a).max(tree.time(b)) + 1e-6;
            if tree.time(node) < min_parent {
                tree.set_time(node, min_parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;

    #[test]
    fn clusters_most_similar_sequences_first() {
        let a = Alignment::from_letters(&[
            ("close1", "AAAAAAAAAA"),
            ("close2", "AAAAAAAAAT"),
            ("far", "TTTTTTTTAA"),
        ])
        .unwrap();
        let tree = upgma_tree(&a, 1.0).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.n_tips(), 3);
        let c1 = tree.tip_by_label("close1").unwrap();
        let c2 = tree.tip_by_label("close2").unwrap();
        // close1 and close2 must be siblings.
        assert_eq!(tree.sibling(c1), Some(c2));
        // Their ancestor must be younger than the root.
        let anc = tree.parent(c1).unwrap();
        assert!(tree.time(anc) < tree.tmrca());
    }

    #[test]
    fn ultrametric_heights_are_half_the_distance() {
        let a = Alignment::from_letters(&[("x", "AAAA"), ("y", "AATT")]).unwrap();
        let tree = upgma_tree(&a, 1.0).unwrap();
        // p-distance = 0.5, height = 0.25.
        assert!((tree.tmrca() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn theta_scaling_multiplies_times() {
        let a = Alignment::from_letters(&[("x", "AAAA"), ("y", "AATT")]).unwrap();
        let t1 = upgma_tree(&a, 1.0).unwrap();
        let t2 = upgma_tree(&a, 2.0).unwrap();
        assert!((t2.tmrca() - 2.0 * t1.tmrca()).abs() < 1e-12);
    }

    #[test]
    fn invariant_alignment_still_produces_a_usable_tree() {
        let a = Alignment::from_letters(&[("a", "AAAA"), ("b", "AAAA"), ("c", "AAAA")]).unwrap();
        let tree = upgma_tree(&a, 0.5).unwrap();
        tree.validate().unwrap();
        assert!(tree.tmrca() > 0.0, "degenerate tree must be given positive height");
    }

    #[test]
    fn rejects_bad_input() {
        let a = Alignment::from_letters(&[("x", "AAAA"), ("y", "AATT")]).unwrap();
        assert!(upgma_tree(&a, 0.0).is_err());
        assert!(upgma_tree(&a, f64::NAN).is_err());
        let single = Alignment::from_letters(&[("only", "ACGT")]).unwrap();
        assert!(upgma_tree(&single, 1.0).is_err());
    }

    #[test]
    fn larger_alignment_produces_valid_binary_tree() {
        let a = Alignment::from_letters(&[
            ("s1", "ACGTACGTACGTACGT"),
            ("s2", "ACGTACGTACGTACGA"),
            ("s3", "ACGTACGAACGTACGA"),
            ("s4", "ACGAACGAACGTACGA"),
            ("s5", "TCGAACGAACGAACGA"),
            ("s6", "TCGAACGAACGAACTA"),
        ])
        .unwrap();
        let tree = upgma_tree(&a, 1.0).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.n_tips(), 6);
        assert_eq!(tree.n_nodes(), 11);
        // Every tip label survives.
        for name in ["s1", "s2", "s3", "s4", "s5", "s6"] {
            assert!(tree.tip_by_label(name).is_some(), "missing {name}");
        }
    }
}
