//! The multi-locus data model.
//!
//! LAMARC estimates θ from several unlinked loci at once: each locus is an
//! independent alignment over the same set of individuals, and the per-locus
//! data likelihoods multiply (sum in log domain). A [`Dataset`] is an ordered
//! collection of named [`Locus`] alignments sharing one sequence-name set, the
//! input the session layer feeds to
//! [`MultiLocusEngine`](crate::likelihood::MultiLocusEngine).
//!
//! A single-alignment analysis is just the one-locus special case
//! ([`Dataset::single`]); every consumer of a `Dataset` behaves identically to
//! the pre-multi-locus code path in that case.
//!
//! ```
//! use phylo::{Alignment, Dataset, Locus};
//!
//! let l0 = Alignment::from_letters(&[("a", "ACGT"), ("b", "ACGA")]).unwrap();
//! let l1 = Alignment::from_letters(&[("b", "GGTTAA"), ("a", "GGTTAC")]).unwrap();
//! // Loci may differ in length and row order, but must cover the same names.
//! let dataset = Dataset::new(vec![Locus::new("l0", l0), Locus::new("l1", l1)]).unwrap();
//! assert_eq!(dataset.n_loci(), 2);
//! assert_eq!(dataset.n_sequences(), 2);
//! assert_eq!(dataset.total_sites(), 10);
//!
//! // A locus over different individuals is rejected up front.
//! let stranger = Alignment::from_letters(&[("a", "ACGT"), ("c", "ACGA")]).unwrap();
//! assert!(Dataset::new(vec![
//!     Locus::new("l0", Alignment::from_letters(&[("a", "ACGT"), ("b", "ACGA")]).unwrap()),
//!     Locus::new("l1", stranger),
//! ])
//! .is_err());
//! ```

use crate::alignment::Alignment;
use crate::error::PhyloError;

/// One locus: a named alignment over the dataset's shared individuals, with
/// an optional relative mutation-rate scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct Locus {
    name: String,
    alignment: Alignment,
    relative_rate: f64,
}

impl Locus {
    /// Create a named locus with the default relative rate 1.0.
    pub fn new(name: impl Into<String>, alignment: Alignment) -> Self {
        Locus { name: name.into(), alignment, relative_rate: 1.0 }
    }

    /// Create a named locus with an explicit relative mutation rate — the
    /// LAMARC-style per-locus *driving value* scalar. A locus with rate `r`
    /// is scored as if its sequences evolved at `r` times the dataset's
    /// reference rate, i.e. against `θ·r`: the likelihood engine multiplies
    /// every branch length by `r` before building transition matrices.
    ///
    /// Fails unless `rate` is finite and strictly positive. Rate 1.0 is
    /// bit-identical to [`Locus::new`].
    pub fn with_rate(
        name: impl Into<String>,
        alignment: Alignment,
        rate: f64,
    ) -> Result<Self, PhyloError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(PhyloError::InvalidParameter {
                name: "relative_rate",
                value: rate,
                constraint: "finite and > 0",
            });
        }
        Ok(Locus { name: name.into(), alignment, relative_rate: rate })
    }

    /// The locus name (typically the source file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The locus alignment.
    pub fn alignment(&self) -> &Alignment {
        &self.alignment
    }

    /// The relative mutation rate of this locus (1.0 unless set with
    /// [`Locus::with_rate`]).
    pub fn relative_rate(&self) -> f64 {
        self.relative_rate
    }

    /// Number of sites in this locus.
    pub fn n_sites(&self) -> usize {
        self.alignment.n_sites()
    }
}

/// A multi-locus dataset: one or more loci over one shared set of sequence
/// names. Loci may differ in length and base composition but must cover the
/// same individuals, because one genealogy is scored against all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    loci: Vec<Locus>,
}

impl Dataset {
    /// Build a dataset from named loci.
    ///
    /// Fails if no locus is given or if any locus covers a different set of
    /// sequence names than the first (order within an alignment is free; the
    /// likelihood engine maps tips to rows by name).
    pub fn new(loci: Vec<Locus>) -> Result<Self, PhyloError> {
        if loci.is_empty() {
            return Err(PhyloError::Empty { what: "dataset (no loci)" });
        }
        let mut reference: Vec<&str> = loci[0].alignment.names();
        reference.sort_unstable();
        for locus in &loci[1..] {
            let mut names: Vec<&str> = locus.alignment.names();
            names.sort_unstable();
            if names != reference {
                return Err(PhyloError::InvalidTree {
                    message: format!(
                        "locus {:?} covers sequences {names:?} but locus {:?} covers {reference:?}; \
                         all loci must share one sequence-name set",
                        locus.name, loci[0].name
                    ),
                });
            }
        }
        Ok(Dataset { loci })
    }

    /// The single-locus dataset every pre-multi-locus workflow reduces to.
    pub fn single(alignment: Alignment) -> Self {
        Dataset { loci: vec![Locus::new("locus0", alignment)] }
    }

    /// The loci, in input order.
    pub fn loci(&self) -> &[Locus] {
        &self.loci
    }

    /// Number of loci.
    pub fn n_loci(&self) -> usize {
        self.loci.len()
    }

    /// One locus by index.
    pub fn locus(&self, i: usize) -> &Locus {
        &self.loci[i]
    }

    /// Number of sequences (identical across loci by construction).
    pub fn n_sequences(&self) -> usize {
        self.loci[0].alignment.n_sequences()
    }

    /// Total sites summed over loci.
    pub fn total_sites(&self) -> usize {
        self.loci.iter().map(|l| l.n_sites()).sum()
    }

    /// Whether more than one locus is present.
    pub fn is_multi_locus(&self) -> bool {
        self.loci.len() > 1
    }

    /// The alignment whose sequence order defines the canonical tip set (the
    /// first locus; used e.g. to build the UPGMA starting genealogy).
    pub fn primary_alignment(&self) -> &Alignment {
        self.loci[0].alignment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alignment(pairs: &[(&str, &str)]) -> Alignment {
        Alignment::from_letters(pairs).unwrap()
    }

    #[test]
    fn single_locus_dataset() {
        let a = alignment(&[("a", "ACGT"), ("b", "ACGA")]);
        let d = Dataset::single(a.clone());
        assert_eq!(d.n_loci(), 1);
        assert!(!d.is_multi_locus());
        assert_eq!(d.n_sequences(), 2);
        assert_eq!(d.total_sites(), 4);
        assert_eq!(d.primary_alignment(), &a);
        assert_eq!(d.locus(0).name(), "locus0");
    }

    #[test]
    fn multi_locus_dataset_validates_shared_names() {
        let l1 = Locus::new("mt", alignment(&[("a", "ACGT"), ("b", "ACGA")]));
        let l2 = Locus::new("nuc", alignment(&[("b", "AC"), ("a", "GT")]));
        let d = Dataset::new(vec![l1.clone(), l2]).unwrap();
        assert_eq!(d.n_loci(), 2);
        assert!(d.is_multi_locus());
        assert_eq!(d.total_sites(), 6);
        assert_eq!(d.loci()[0].n_sites(), 4);

        let mismatched = Locus::new("bad", alignment(&[("a", "AC"), ("c", "GT")]));
        assert!(Dataset::new(vec![l1, mismatched]).is_err());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        assert!(Dataset::new(vec![]).is_err());
    }

    #[test]
    fn relative_rates_default_and_validate() {
        let a = alignment(&[("a", "ACGT"), ("b", "ACGA")]);
        assert_eq!(Locus::new("l", a.clone()).relative_rate(), 1.0);
        let fast = Locus::with_rate("fast", a.clone(), 2.5).unwrap();
        assert_eq!(fast.relative_rate(), 2.5);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                Locus::with_rate("bad", a.clone(), bad).is_err(),
                "rate {bad} must be rejected"
            );
        }
    }
}
