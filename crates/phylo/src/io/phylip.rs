//! The PHYLIP sequential alignment format.
//!
//! Section 5.1.1: "the sequence data are expected to be in the PHYLIP
//! genealogical data format, in which the first line provides the number of
//! samples and the length of the samples. Each successive line leads with a
//! fixed-length name of the sample followed by the sequence data."
//!
//! The parser accepts both the classical fixed-width 10-character name field
//! and the relaxed whitespace-separated variant, and tolerates sequences
//! wrapped over multiple lines (sequential, not interleaved).

use crate::alignment::Alignment;
use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;
use crate::sequence::Sequence;

/// Width of the classical PHYLIP name field.
const NAME_WIDTH: usize = 10;

/// Parse a PHYLIP-format alignment from text.
pub fn parse_phylip(text: &str) -> Result<Alignment, PhyloError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (header_line_no, header) =
        lines.next().ok_or(PhyloError::Parse { line: 0, message: "empty PHYLIP input".into() })?;
    let mut header_fields = header.split_whitespace();
    let n_seqs: usize =
        header_fields.next().and_then(|f| f.parse().ok()).ok_or_else(|| PhyloError::Parse {
            line: header_line_no + 1,
            message: "header must start with the sequence count".into(),
        })?;
    let n_sites: usize =
        header_fields.next().and_then(|f| f.parse().ok()).ok_or_else(|| PhyloError::Parse {
            line: header_line_no + 1,
            message: "header must give the sequence length".into(),
        })?;
    if n_seqs == 0 || n_sites == 0 {
        return Err(PhyloError::Parse {
            line: header_line_no + 1,
            message: format!("degenerate dimensions {n_seqs} x {n_sites}"),
        });
    }

    let mut sequences: Vec<Sequence> = Vec::with_capacity(n_seqs);
    let mut current_name: Option<String> = None;
    let mut current_bases: Vec<Nucleotide> = Vec::with_capacity(n_sites);

    let flush = |name: Option<String>, bases: &mut Vec<Nucleotide>, seqs: &mut Vec<Sequence>| {
        if let Some(name) = name {
            seqs.push(Sequence::new(name, std::mem::take(bases)));
        }
    };

    for (line_no, raw_line) in lines {
        let line = raw_line.trim_end();
        let starting_new_sequence = current_name.is_none() || current_bases.len() >= n_sites;
        if starting_new_sequence {
            flush(current_name.take(), &mut current_bases, &mut sequences);
            if sequences.len() == n_seqs {
                break;
            }
            // Name field: classical fixed width if the line is long enough
            // and the 10th column boundary splits cleanly, otherwise the
            // first whitespace-delimited token.
            let (name, rest) = split_name(line);
            if name.is_empty() {
                return Err(PhyloError::Parse {
                    line: line_no + 1,
                    message: "expected a sequence name".into(),
                });
            }
            current_name = Some(name);
            append_bases(rest, line_no, &mut current_bases)?;
        } else {
            append_bases(line, line_no, &mut current_bases)?;
        }
    }
    flush(current_name.take(), &mut current_bases, &mut sequences);

    if sequences.len() != n_seqs {
        return Err(PhyloError::Parse {
            line: 0,
            message: format!("header promised {n_seqs} sequences, found {}", sequences.len()),
        });
    }
    for seq in &sequences {
        if seq.len() != n_sites {
            return Err(PhyloError::Parse {
                line: 0,
                message: format!(
                    "sequence {:?} has {} sites, header promised {}",
                    seq.name(),
                    seq.len(),
                    n_sites
                ),
            });
        }
    }
    Alignment::new(sequences)
}

fn split_name(line: &str) -> (String, &str) {
    // Relaxed format: name is the first whitespace-delimited token when the
    // line contains interior whitespace before the sequence data.
    if let Some(pos) = line.find(char::is_whitespace) {
        let (name, rest) = line.split_at(pos);
        return (name.trim().to_string(), rest);
    }
    // Strict format: first NAME_WIDTH characters are the name.
    if line.len() > NAME_WIDTH {
        let (name, rest) = line.split_at(NAME_WIDTH);
        (name.trim().to_string(), rest)
    } else {
        (line.trim().to_string(), "")
    }
}

fn append_bases(text: &str, line_no: usize, bases: &mut Vec<Nucleotide>) -> Result<(), PhyloError> {
    for c in text.chars().filter(|c| !c.is_whitespace()) {
        let base = Nucleotide::from_char(c).ok_or(PhyloError::Parse {
            line: line_no + 1,
            message: format!("invalid nucleotide character {c:?}"),
        })?;
        bases.push(base);
    }
    Ok(())
}

/// Render an alignment in PHYLIP sequential format with the classical
/// 10-character name field.
pub fn write_phylip(alignment: &Alignment) -> String {
    let mut out = String::new();
    out.push_str(&format!(" {} {}\n", alignment.n_sequences(), alignment.n_sites()));
    for seq in alignment.sequences() {
        let mut name = seq.name().to_string();
        name.truncate(NAME_WIDTH);
        out.push_str(&format!("{name:<NAME_WIDTH$}{}\n", seq.to_letters()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
 3 12
seq_one   ACGTACGTACGT
seq_two   ACGTACGAACGT
seq_three ACGTTCGTACGA
";

    #[test]
    fn parses_relaxed_format() {
        let a = parse_phylip(SAMPLE).unwrap();
        assert_eq!(a.n_sequences(), 3);
        assert_eq!(a.n_sites(), 12);
        assert_eq!(a.sequence(0).name(), "seq_one");
        assert_eq!(a.sequence(2).to_letters(), "ACGTTCGTACGA");
    }

    #[test]
    fn parses_strict_fixed_width_names() {
        let strict = " 2 8\nsample0001ACGTACGT\nsample0002ACGTACGA\n";
        let a = parse_phylip(strict).unwrap();
        assert_eq!(a.sequence(0).name(), "sample0001");
        assert_eq!(a.sequence(0).to_letters(), "ACGTACGT");
        assert_eq!(a.sequence(1).name(), "sample0002");
    }

    #[test]
    fn parses_wrapped_sequences() {
        let wrapped = " 2 12\ns1  ACGTAC\nGTACGT\ns2  ACGTAC\nGAACGT\n";
        let a = parse_phylip(wrapped).unwrap();
        assert_eq!(a.n_sites(), 12);
        assert_eq!(a.sequence(0).to_letters(), "ACGTACGTACGT");
        assert_eq!(a.sequence(1).to_letters(), "ACGTACGAACGT");
    }

    #[test]
    fn round_trip_through_writer() {
        let a = parse_phylip(SAMPLE).unwrap();
        let text = write_phylip(&a);
        let b = parse_phylip(&text).unwrap();
        assert_eq!(a, b);
        assert!(text.starts_with(" 3 12\n"));
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(parse_phylip("").is_err());
        assert!(parse_phylip("nonsense\n").is_err());
        assert!(parse_phylip("3\nseq ACGT\n").is_err());
        assert!(parse_phylip(" 0 10\n").is_err());
    }

    #[test]
    fn rejects_inconsistent_bodies() {
        // Too few sequences.
        assert!(parse_phylip(" 3 4\ns1 ACGT\ns2 ACGT\n").is_err());
        // Wrong length.
        assert!(parse_phylip(" 2 5\ns1 ACGT\ns2 ACGTA\n").is_err());
        // Invalid character.
        let err = parse_phylip(" 1 4\ns1 ACGX\n").unwrap_err();
        assert!(matches!(err, PhyloError::Parse { .. }));
    }

    #[test]
    fn long_names_are_truncated_on_write() {
        let a = Alignment::from_letters(&[("a_very_long_sequence_name", "ACGT")]).unwrap();
        let text = write_phylip(&a);
        let b = parse_phylip(&text).unwrap();
        assert_eq!(b.sequence(0).name(), "a_very_lon");
        assert_eq!(b.sequence(0).to_letters(), "ACGT");
    }
}
