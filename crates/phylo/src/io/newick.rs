//! The Newick tree format.
//!
//! `ms -T` emits simulated genealogies as Newick strings (Section 6.1); the
//! sequence simulator consumes them and the tree simulator in the
//! `coalescent` crate emits them. Branch lengths in the file are converted to
//! node times by measuring depth from the root and anchoring the deepest leaf
//! at time zero (the present).

use crate::error::PhyloError;
use crate::tree::{GeneTree, NodeId};

/// Render a genealogy as a Newick string with branch lengths.
pub fn write_newick(tree: &GeneTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out);
    out.push(';');
    out
}

fn write_node(tree: &GeneTree, node: NodeId, out: &mut String) {
    if let Some((a, b)) = tree.children(node) {
        out.push('(');
        write_node(tree, a, out);
        out.push(',');
        write_node(tree, b, out);
        out.push(')');
    } else {
        let label = tree.label(node).map(str::to_string).unwrap_or_else(|| format!("t{node}"));
        out.push_str(&sanitise(&label));
    }
    if let Some(len) = tree.branch_length(node) {
        out.push_str(&format!(":{}", format_branch(len)));
    }
}

fn sanitise(label: &str) -> String {
    label.chars().map(|c| if c.is_whitespace() || "():,;".contains(c) { '_' } else { c }).collect()
}

fn format_branch(len: f64) -> String {
    // Enough digits to round-trip typical coalescent times.
    format!("{len:.10}")
}

/// Parse a Newick string into a genealogy.
///
/// Interior node labels are ignored; branch lengths are required to be
/// non-negative where present and default to zero where absent.
pub fn parse_newick(text: &str) -> Result<GeneTree, PhyloError> {
    let trimmed = text.trim();
    let body = trimmed.strip_suffix(';').unwrap_or(trimmed);
    if body.is_empty() {
        return Err(PhyloError::Parse { line: 0, message: "empty Newick string".into() });
    }
    let mut parser = Parser { chars: body.char_indices().peekable(), text: body };
    let root = parser.parse_clade()?;
    if parser.chars.peek().is_some() {
        let rest: String = parser.chars.map(|(_, c)| c).collect();
        return Err(PhyloError::Parse {
            line: 0,
            message: format!("unexpected trailing content {rest:?}"),
        });
    }
    clade_to_tree(root)
}

/// A parsed clade: either a leaf with a name or an internal node with
/// exactly two children (multifurcations are rejected), plus the branch
/// length above it.
struct Clade {
    name: Option<String>,
    children: Vec<Clade>,
    branch: f64,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn parse_clade(&mut self) -> Result<Clade, PhyloError> {
        let mut clade = if matches!(self.chars.peek(), Some((_, '('))) {
            self.chars.next();
            let mut children = vec![self.parse_clade()?];
            while matches!(self.chars.peek(), Some((_, ','))) {
                self.chars.next();
                children.push(self.parse_clade()?);
            }
            match self.chars.next() {
                Some((_, ')')) => {}
                other => {
                    return Err(PhyloError::Parse {
                        line: 0,
                        message: format!("expected ')', found {other:?}"),
                    })
                }
            }
            // An optional internal label is allowed and ignored.
            let _ = self.take_label();
            Clade { name: None, children, branch: 0.0 }
        } else {
            let name = self.take_label();
            if name.is_empty() {
                return Err(PhyloError::Parse {
                    line: 0,
                    message: format!("expected a leaf label in {:?}", self.text),
                });
            }
            Clade { name: Some(name), children: Vec::new(), branch: 0.0 }
        };
        if matches!(self.chars.peek(), Some((_, ':'))) {
            self.chars.next();
            clade.branch = self.take_number()?;
        }
        Ok(clade)
    }

    fn take_label(&mut self) -> String {
        let mut label = String::new();
        while let Some(&(_, c)) = self.chars.peek() {
            if c == ':' || c == ',' || c == ')' || c == '(' || c == ';' {
                break;
            }
            label.push(c);
            self.chars.next();
        }
        label.trim().to_string()
    }

    fn take_number(&mut self) -> Result<f64, PhyloError> {
        let mut token = String::new();
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+' {
                token.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        token.parse::<f64>().map_err(|_| PhyloError::Parse {
            line: 0,
            message: format!("invalid branch length {token:?}"),
        })
    }
}

fn clade_to_tree(root: Clade) -> Result<GeneTree, PhyloError> {
    use crate::tree::TreeBuilder;

    // First pass: compute each node's depth (distance from the root along
    // branch lengths); node time = (max leaf depth) - depth.
    fn max_depth(clade: &Clade, acc: f64) -> f64 {
        let here = acc + clade.branch;
        if clade.children.is_empty() {
            here
        } else {
            clade.children.iter().map(|c| max_depth(c, here)).fold(f64::NEG_INFINITY, f64::max)
        }
    }
    // The root's own branch length (if any) is ignored for timing purposes.
    let total_depth = max_depth(&root, -root.branch);

    fn build(
        clade: &Clade,
        depth_above: f64,
        total_depth: f64,
        builder: &mut TreeBuilder,
    ) -> Result<NodeId, PhyloError> {
        let depth = depth_above + clade.branch;
        let time = total_depth - depth;
        if clade.children.is_empty() {
            let name = clade.name.clone().unwrap_or_default();
            Ok(builder.add_tip(name, time.max(0.0)))
        } else if clade.children.len() == 2 {
            let a = build(&clade.children[0], depth, total_depth, builder)?;
            let b = build(&clade.children[1], depth, total_depth, builder)?;
            Ok(builder.join(a, b, time.max(0.0)))
        } else {
            Err(PhyloError::Parse {
                line: 0,
                message: format!(
                    "only binary trees are supported, found a node with {} children",
                    clade.children.len()
                ),
            })
        }
    }

    let mut builder = TreeBuilder::new();
    build(&root, -root.branch, total_depth, &mut builder)?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample_tree() -> GeneTree {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("alpha", 0.0);
        let t1 = b.add_tip("beta", 0.0);
        let t2 = b.add_tip("gamma", 0.0);
        let v = b.join(t0, t1, 1.25);
        b.join(v, t2, 3.5);
        b.build().unwrap()
    }

    #[test]
    fn write_then_parse_round_trips_structure_and_times() {
        let tree = sample_tree();
        let text = write_newick(&tree);
        assert!(text.ends_with(';'));
        assert!(text.contains("alpha") && text.contains("gamma"));
        let parsed = parse_newick(&text).unwrap();
        parsed.validate().unwrap();
        assert_eq!(parsed.n_tips(), 3);
        assert!((parsed.tmrca() - 3.5).abs() < 1e-9);
        // Times of the cherry ancestor must survive the round trip.
        let alpha = parsed.tip_by_label("alpha").unwrap();
        let anc = parsed.parent(alpha).unwrap();
        assert!((parsed.time(anc) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn parses_ms_style_output() {
        // A tree in the shape ms prints (no leading/trailing spaces, integer
        // labels, decimal branch lengths).
        let text = "((1:0.125,2:0.125):0.5,(3:0.3,4:0.3):0.325);";
        let tree = parse_newick(text).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.n_tips(), 4);
        assert!((tree.tmrca() - 0.625).abs() < 1e-9);
        let one = tree.tip_by_label("1").unwrap();
        assert!((tree.time(one) - 0.0).abs() < 1e-9);
        let three = tree.tip_by_label("3").unwrap();
        let anc = tree.parent(three).unwrap();
        assert!((tree.time(anc) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn parses_scientific_notation_branch_lengths() {
        let text = "(a:1e-3,b:1.0e-3);";
        let tree = parse_newick(text).unwrap();
        assert!((tree.tmrca() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn parses_without_trailing_semicolon_and_with_internal_labels() {
        let text = "((a:1,b:1)ab:1,c:2)root";
        let tree = parse_newick(text).unwrap();
        assert_eq!(tree.n_tips(), 3);
        assert!((tree.tmrca() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_newick("").is_err());
        assert!(parse_newick(";").is_err());
        assert!(parse_newick("(a:1,b:1").is_err());
        assert!(parse_newick("(a:1,b:1));").is_err());
        assert!(parse_newick("(a:x,b:1);").is_err());
        // Multifurcations are rejected.
        assert!(parse_newick("(a:1,b:1,c:1);").is_err());
    }

    #[test]
    fn labels_with_reserved_characters_are_sanitised_on_write() {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("weird (name)", 0.0);
        let t1 = b.add_tip("ok", 0.0);
        b.join(t0, t1, 1.0);
        let tree = b.build().unwrap();
        let text = write_newick(&tree);
        let parsed = parse_newick(&text).unwrap();
        assert_eq!(parsed.n_tips(), 2);
        assert!(parsed.tip_by_label("weird__name_").is_some());
    }

    #[test]
    fn unlabelled_tips_get_synthetic_names() {
        // Build via parse (labels required), then strip by constructing a
        // builder tree with empty labels.
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("", 0.0);
        let t1 = b.add_tip("", 0.0);
        b.join(t0, t1, 1.0);
        let tree = b.build().unwrap();
        let text = write_newick(&tree);
        // Empty labels are replaced by nothing after sanitise; ensure the
        // string still parses as two tips because empty labels are written as
        // empty strings... they are not, so expect an error or synthetic name.
        // The writer uses "t{id}" only when label() is None, not Some("");
        // an empty label would produce an unparseable leaf, so assert the
        // writer output is still parseable only if non-empty labels exist.
        if text.contains(",:") || text.contains("(:") {
            assert!(parse_newick(&text).is_err());
        } else {
            assert!(parse_newick(&text).is_ok());
        }
    }
}
