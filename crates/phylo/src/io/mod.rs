//! File-format readers and writers.
//!
//! * [`phylip`] — the PHYLIP sequential alignment format the original
//!   program accepts as input (Section 5.1.1) and `seq-gen` writes.
//! * [`newick`] — the Newick tree format `ms` emits and the thesis uses to
//!   pass simulated genealogies to `seq-gen` (Section 6.1).

pub mod newick;
pub mod phylip;

pub use newick::{parse_newick, write_newick};
pub use phylip::{parse_phylip, write_phylip};
