//! Named DNA sequences and their 2-bit packed representation.

use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;

/// A named DNA sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    name: String,
    bases: Vec<Nucleotide>,
}

impl Sequence {
    /// Create a sequence from a name and bases.
    pub fn new(name: impl Into<String>, bases: Vec<Nucleotide>) -> Self {
        Sequence { name: name.into(), bases }
    }

    /// Parse a sequence from a string of `ACGT` characters (case
    /// insensitive, whitespace ignored).
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, PhyloError> {
        let mut bases = Vec::with_capacity(text.len());
        for (i, c) in text.chars().filter(|c| !c.is_whitespace()).enumerate() {
            bases.push(Nucleotide::try_from_char(c, i)?);
        }
        Ok(Sequence { name: name.into(), bases })
    }

    /// The sequence name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bases.
    pub fn bases(&self) -> &[Nucleotide] {
        &self.bases
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence has no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The base at `position`.
    ///
    /// # Panics
    /// Panics if `position` is out of range.
    pub fn base(&self, position: usize) -> Nucleotide {
        self.bases[position]
    }

    /// Render the bases as an `ACGT` string.
    pub fn to_letters(&self) -> String {
        self.bases.iter().map(|b| b.to_char()).collect()
    }

    /// Number of positions at which `self` and `other` differ, compared over
    /// the shorter of the two lengths.
    pub fn hamming_distance(&self, other: &Sequence) -> usize {
        self.bases.iter().zip(other.bases.iter()).filter(|(a, b)| a != b).count()
    }

    /// Pack into a compact 2-bit-per-base representation.
    pub fn packed(&self) -> PackedSequence {
        PackedSequence::from_bases(&self.bases)
    }
}

/// A DNA sequence packed two bits per base into 64-bit words.
///
/// Thirty-two bases fit in each word, mirroring the constant-memory layout of
/// Section 5.1.3 where "an entire warp can be populated out of 64 bits of
/// data".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSequence {
    words: Vec<u64>,
    len: usize,
}

impl PackedSequence {
    /// Bases stored per 64-bit word.
    pub const BASES_PER_WORD: usize = 32;

    /// Pack a slice of bases.
    pub fn from_bases(bases: &[Nucleotide]) -> Self {
        let mut words = vec![0u64; bases.len().div_ceil(Self::BASES_PER_WORD)];
        for (i, base) in bases.iter().enumerate() {
            let word = i / Self::BASES_PER_WORD;
            let shift = 2 * (i % Self::BASES_PER_WORD);
            words[word] |= (base.to_bits() as u64) << shift;
        }
        PackedSequence { words, len: bases.len() }
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base at `position`.
    ///
    /// # Panics
    /// Panics if `position >= len()`.
    #[inline]
    pub fn base(&self, position: usize) -> Nucleotide {
        assert!(position < self.len, "position {position} out of range for length {}", self.len);
        let word = self.words[position / Self::BASES_PER_WORD];
        let shift = 2 * (position % Self::BASES_PER_WORD);
        Nucleotide::from_bits(((word >> shift) & 0b11) as u8)
    }

    /// Unpack into a vector of bases.
    pub fn unpack(&self) -> Vec<Nucleotide> {
        (0..self.len).map(|i| self.base(i)).collect()
    }

    /// The underlying packed words (the last word's unused high bits are
    /// zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bytes of storage used by the packed representation.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_round_trip() {
        let s = Sequence::parse("s1", "ACG TTa cg").unwrap();
        assert_eq!(s.name(), "s1");
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.to_letters(), "ACGTTACG");
        assert_eq!(s.base(0), Nucleotide::A);
        assert_eq!(s.base(7), Nucleotide::G);
    }

    #[test]
    fn parse_rejects_invalid_characters() {
        let err = Sequence::parse("bad", "ACGX").unwrap_err();
        assert!(matches!(err, PhyloError::InvalidNucleotide { character: 'X', .. }));
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::new("e", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.to_letters(), "");
        let p = s.packed();
        assert!(p.is_empty());
        assert_eq!(p.unpack(), Vec::<Nucleotide>::new());
        assert_eq!(p.storage_bytes(), 0);
    }

    #[test]
    fn hamming_distance_counts_mismatches() {
        let a = Sequence::parse("a", "AAAA").unwrap();
        let b = Sequence::parse("b", "AATT").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
        // Shorter-of-the-two comparison.
        let c = Sequence::parse("c", "AA").unwrap();
        assert_eq!(a.hamming_distance(&c), 0);
    }

    #[test]
    fn packing_round_trips_for_awkward_lengths() {
        for len in [1usize, 31, 32, 33, 63, 64, 65, 100] {
            let bases: Vec<Nucleotide> = (0..len).map(|i| Nucleotide::from_index(i % 4)).collect();
            let packed = PackedSequence::from_bases(&bases);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.unpack(), bases);
            assert_eq!(packed.words().len(), len.div_ceil(32));
        }
    }

    #[test]
    fn packed_storage_is_compact() {
        let bases: Vec<Nucleotide> = (0..640).map(|i| Nucleotide::from_index(i % 4)).collect();
        let packed = PackedSequence::from_bases(&bases);
        // 640 bases -> 20 words -> 160 bytes, versus 640 bytes unpacked.
        assert_eq!(packed.storage_bytes(), 160);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_base_out_of_range_panics() {
        let packed = PackedSequence::from_bases(&[Nucleotide::A]);
        let _ = packed.base(1);
    }

    #[test]
    fn packed_from_sequence_matches_manual_packing() {
        let s = Sequence::parse("s", "ACGTACGT").unwrap();
        assert_eq!(s.packed(), PackedSequence::from_bases(s.bases()));
    }
}
