//! The data likelihood `P(D|G)` by Felsenstein pruning (Eq. 19–23).
//!
//! For each site the likelihood of the genealogy is computed by a post-order
//! traversal: every node carries a conditional likelihood vector over the
//! four nucleotides, tips are indicators of their observed base, and interior
//! vectors combine the children's vectors through the substitution model's
//! transition probabilities (Eq. 19). The per-site likelihoods multiply
//! (Eq. 22 — stored as a sum of logs per Section 5.3).
//!
//! Two evaluation paths are provided:
//!
//! * The **reference path** ([`FelsensteinPruner::pattern_log_likelihoods`])
//!   prunes pattern-by-pattern exactly as the textbook recursion is written.
//!   It is kept as the oracle the fast path is verified against, and it can
//!   run its per-pattern loop serially or data-parallel over rayon worker
//!   threads ([`ExecutionMode`]), mirroring the paper's one-device-thread-
//!   per-site data-likelihood kernel (Section 5.2.2).
//! * The **batched engine** ([`LikelihoodEngine::log_likelihood_batch`])
//!   scores a whole proposal set against one generator genealogy, the shape
//!   of the multi-proposal sampler's inner loop (Section 4.3). Partial
//!   likelihoods live in a reusable [`LikelihoodWorkspace`] — structure-of-
//!   arrays buffers of `[node × pattern × 4]`, split into pattern chunks,
//!   with a node-outer/pattern-inner loop order so the 4×4 products
//!   vectorise and nothing is allocated per pattern. Because every proposal
//!   differs from the generator only inside the φ-neighborhood, the engine
//!   recomputes only the edited nodes and the path from them to the root
//!   (*dirty-path caching*), reusing the generator's cached partials for
//!   every other subtree. The generator workspace itself is memoised inside
//!   the engine, so consecutive evaluations against an unchanged generator
//!   (rejected moves, repeated index draws) skip the full prune entirely.
//!
//! The innermost arithmetic of both paths — combining two children's
//! partial rows through their branch transition matrices — sits behind the
//! [`Kernel`] seam: [`Kernel::Scalar`] is the portable reference loop and
//! [`Kernel::Simd`] (the `simd` cargo feature) an explicit four-lane
//! `f64x4` kernel, selected per engine with
//! [`FelsensteinPruner::with_kernel`] and agreeing with the scalar kernel to
//! ≤1e-12 relative tolerance.
//!
//! Multi-locus datasets are scored by a [`MultiLocusEngine`]: one cached
//! workspace per locus, every batch flattened over the (locus × proposal)
//! grid in a single backend dispatch, and per-locus log likelihoods summed
//! (unlinked loci are independent given the genealogy):
//!
//! ```
//! use phylo::likelihood::{LikelihoodEngine, MultiLocusEngine};
//! use phylo::model::Jc69;
//! use phylo::tree::TreeBuilder;
//! use phylo::{Alignment, Dataset, Locus};
//!
//! let l0 = Alignment::from_letters(&[("a", "ACGTACGT"), ("b", "ACGAACGA")]).unwrap();
//! let l1 = Alignment::from_letters(&[("a", "GGTTA"), ("b", "GGTAA")]).unwrap();
//! let dataset = Dataset::new(vec![Locus::new("l0", l0), Locus::new("l1", l1)]).unwrap();
//! let engine = MultiLocusEngine::new(&dataset, |_| Jc69::new());
//!
//! let mut builder = TreeBuilder::new();
//! let a = builder.add_tip("a", 0.0);
//! let b = builder.add_tip("b", 0.0);
//! builder.join(a, b, 0.3);
//! let tree = builder.build().unwrap();
//!
//! // The engine's total is exactly the sum of the per-locus terms.
//! let total = engine.log_likelihood(&tree).unwrap();
//! let per_locus = engine.log_likelihood_per_locus(&tree).unwrap();
//! assert_eq!(per_locus.len(), 2);
//! assert!((total - per_locus.iter().sum::<f64>()).abs() < 1e-12);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

use exec::Backend;
use rayon::prelude::*;

use crate::alignment::Alignment;
use crate::dataset::Dataset;
use crate::error::PhyloError;
use crate::model::SubstitutionModel;
use crate::nucleotide::Nucleotide;
use crate::patterns::SitePatterns;
use crate::tree::{GeneTree, NodeId};

/// Number of site patterns per workspace chunk. Chunks are the unit of
/// pattern-level parallelism and bound the working set of the inner loops to
/// roughly `chunk × nodes × 5` doubles.
const PATTERN_CHUNK: usize = 256;

/// A proposal to be scored against a generator genealogy: the proposed tree
/// plus the set of nodes whose times or wiring differ from the generator
/// (the φ-neighborhood of Section 4.3). Nodes *above* the edited set are
/// discovered by the engine; only the directly edited nodes need listing.
#[derive(Debug, Clone, Copy)]
pub struct TreeProposal<'a> {
    /// The proposed genealogy. Must share the arena layout (node ids, tips,
    /// labels) of the generator it is scored against.
    pub tree: &'a GeneTree,
    /// The directly edited nodes. An empty slice means "identical to the
    /// generator".
    pub edited: &'a [NodeId],
}

/// The outcome of one batched likelihood evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEvaluation {
    /// `ln P(D|G)` of the generator genealogy.
    pub generator_log_likelihood: f64,
    /// `ln P(D|G̃_i)` for every proposal, in input order.
    pub log_likelihoods: Vec<f64>,
    /// Interior nodes whose partials were recomputed across all proposals
    /// (the dirty paths). The paper's incremental-LAMARC baseline performs
    /// the same O(path-to-root) work per transition (Section 5.2.2).
    pub nodes_repruned: usize,
    /// Interior nodes recomputed to (re)build the generator workspace: the
    /// full interior count on a cache miss, zero on a hit.
    pub nodes_full_pruned: usize,
    /// Whether the generator workspace was reused from the engine's cache.
    pub generator_cache_hit: bool,
    /// Edge transition matrices served from the [`EdgeMatrixCache`] instead
    /// of being recomputed, across the workspace (re)build and every
    /// dirty-path rescore of this batch.
    pub matrix_cache_hits: usize,
    /// Edge transition matrices that had to be recomputed because their
    /// effective branch length changed (or the cache was cold).
    pub matrix_cache_misses: usize,
}

impl BatchEvaluation {
    /// Interior-node recomputations a naive engine would have performed for
    /// the same batch (every node of every proposal plus the generator).
    pub fn naive_node_cost(n_internal: usize, n_proposals: usize) -> usize {
        n_internal * (n_proposals + 1)
    }
}

/// Anything that can score a genealogy against fixed data.
pub trait LikelihoodEngine: Send + Sync {
    /// `ln P(D|G)`.
    fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError>;

    /// Score a whole proposal set against a generator genealogy.
    ///
    /// `backend` chooses where the proposal-parallel outer loop runs. The
    /// default implementation scores every tree independently with
    /// [`LikelihoodEngine::log_likelihood`] (no caching); engines that can
    /// exploit the φ-neighborhood structure override it.
    fn log_likelihood_batch(
        &self,
        backend: Backend,
        generator: &GeneTree,
        proposals: &[TreeProposal<'_>],
    ) -> Result<BatchEvaluation, PhyloError> {
        let generator_log_likelihood = self.log_likelihood(generator)?;
        let results = backend.map_slice(proposals, |proposal| self.log_likelihood(proposal.tree));
        let mut log_likelihoods = Vec::with_capacity(proposals.len());
        let mut nodes_repruned = 0;
        for (result, proposal) in results.into_iter().zip(proposals) {
            log_likelihoods.push(result?);
            nodes_repruned += proposal.tree.n_internal();
        }
        Ok(BatchEvaluation {
            generator_log_likelihood,
            log_likelihoods,
            nodes_repruned,
            nodes_full_pruned: generator.n_internal(),
            generator_cache_hit: false,
            matrix_cache_hits: 0,
            matrix_cache_misses: 0,
        })
    }

    /// Promote an accepted proposal into the engine's cached generator state
    /// (*commit-on-accept*): after a sampler accepts `accepted` (derived from
    /// `generator` by editing the nodes in `edited`), the engine may update
    /// its memoised workspace along the dirty path instead of letting the
    /// next batch evaluation rebuild it with a full prune.
    ///
    /// Returns `Ok(Some(n))` — `n` interior nodes recomputed — when the
    /// engine's cache now reflects `accepted`, and `Ok(None)` when the engine
    /// has no cache to promote (the next batch pays a full prune, exactly the
    /// pre-commit behaviour). Engines without caching keep the default no-op.
    fn commit_accepted(
        &self,
        _generator: &GeneTree,
        _accepted: &GeneTree,
        _edited: &[NodeId],
    ) -> Result<Option<usize>, PhyloError> {
        Ok(None)
    }

    /// The genealogy the engine's memoised generator workspace is currently
    /// keyed to, if any. This is checkpoint state: after a replica-exchange
    /// swap it is the *pre-swap* tree (the cache goes stale rather than
    /// being invalidated), so a resumed run must restore exactly this tree —
    /// not the chain's current tree — to reproduce the original run's cache
    /// hit/miss trajectory. Engines without a cache return `None`.
    fn cached_generator(&self) -> Option<GeneTree> {
        None
    }

    /// Restore the engine's memoised state to what it would be with its
    /// cache keyed to `tree` (`None` clears the cache). Because the
    /// incrementally maintained workspace for a tree is bit-identical to a
    /// fresh full build of the same tree (the commit-on-accept invariant),
    /// rebuilding from the checkpointed [`LikelihoodEngine::cached_generator`]
    /// reproduces the warm state exactly — no partials or matrices need
    /// serialising. Engines without a cache accept any argument as a no-op.
    fn prime_cache(&self, _tree: Option<&GeneTree>) -> Result<(), PhyloError> {
        Ok(())
    }
}

/// How the per-site work of the reference path is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One thread, pattern-compressed.
    #[default]
    Serial,
    /// Rayon data parallelism over patterns (the host-side analogue of the
    /// CUDA data-likelihood kernel).
    Parallel,
}

/// Which arithmetic kernel combines children's partial-likelihood rows (the
/// innermost loop of every evaluation). Selected at engine construction
/// ([`FelsensteinPruner::with_kernel`] / [`MultiLocusEngine::with_kernel`])
/// and surfaced to users as `SessionBuilder::kernel(..)` and the CLI's
/// `--kernel {scalar,simd,auto}` flag.
///
/// Every request is always *selectable*: when the crate was built without
/// the `simd` cargo feature, [`Kernel::Simd`] and [`Kernel::Auto`] degrade
/// to the scalar kernel at runtime ([`Kernel::effective`]), so configuration
/// written against a SIMD-enabled build keeps working — just slower —
/// everywhere else. [`Kernel::Auto`] (the default) additionally probes the
/// CPU at startup and, on an AVX2+FMA host, routes the combine loop through
/// a variant compiled specifically for those features — recovering the
/// throughput a `RUSTFLAGS="-C target-feature=+avx2,+fma"` build gets
/// statically (see [`Kernel::variant`]). All kernels implement identical
/// per-pattern rescaling; they agree to ≤1e-12 relative tolerance (the
/// difference is floating-point reassociation and FMA contraction in the
/// two 4×4 matrix–vector products).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The portable node-outer/pattern-inner loop, autovectorised by the
    /// compiler where possible.
    Scalar,
    /// The explicit four-lane kernel over `phylo::simd::F64x4`: broadcast
    /// multiply–adds over column-major transition matrices, compiled at the
    /// crate's baseline feature level. Requires the `simd` cargo feature;
    /// falls back to [`Kernel::Scalar`] otherwise.
    Simd,
    /// Probe the CPU at runtime and pick the fastest compiled-in kernel:
    /// the AVX2+FMA-multiversioned four-lane kernel when the host supports
    /// it, the baseline four-lane kernel otherwise, and the scalar kernel
    /// when the `simd` feature is absent.
    #[default]
    Auto,
}

/// The concrete combine-loop implementation a [`Kernel`] request resolves to
/// on this binary and this CPU ([`Kernel::variant`]). This is what perf
/// reports record: `Kernel::Auto` says what was *asked*, `KernelVariant`
/// says what *ran*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// The portable scalar loop.
    Scalar,
    /// The four-lane `F64x4` loop at the crate's baseline codegen features.
    Simd,
    /// The four-lane loop compiled for AVX2+FMA, selected after a runtime
    /// CPUID probe (only reachable from [`Kernel::Auto`] on a supporting
    /// x86-64 host).
    SimdFma,
}

impl fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Simd => "simd",
            KernelVariant::SimdFma => "simd+avx2+fma",
        })
    }
}

impl KernelVariant {
    /// Run this variant's combine loop. Same contract as
    /// [`Kernel::combine_rows`], but with the dispatch already resolved —
    /// engines resolve once at construction and call this in the hot loop.
    /// In a build without the `simd` feature the SIMD variants (which
    /// [`Kernel::variant`] never produces there) degrade to the scalar loop.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn combine_rows(
        self,
        scale_threshold: f64,
        ma: &[[f64; 4]; 4],
        mb: &[[f64; 4]; 4],
        pa: &[f64],
        pb: &[f64],
        sa: &[f64],
        sb: &[f64],
        out_partials: &mut [f64],
        out_scales: &mut [f64],
    ) {
        match self {
            KernelVariant::Scalar => combine_children_rows_scalar(
                scale_threshold,
                ma,
                mb,
                pa,
                pb,
                sa,
                sb,
                out_partials,
                out_scales,
            ),
            #[cfg(feature = "simd")]
            KernelVariant::Simd => crate::simd::combine_rows_f64x4::<false>(
                scale_threshold,
                ma,
                mb,
                pa,
                pb,
                sa,
                sb,
                out_partials,
                out_scales,
            ),
            #[cfg(feature = "simd")]
            KernelVariant::SimdFma => crate::simd::dispatch::combine_rows_avx2_fma(
                scale_threshold,
                ma,
                mb,
                pa,
                pb,
                sa,
                sb,
                out_partials,
                out_scales,
            ),
            #[cfg(not(feature = "simd"))]
            KernelVariant::Simd | KernelVariant::SimdFma => combine_children_rows_scalar(
                scale_threshold,
                ma,
                mb,
                pa,
                pb,
                sa,
                sb,
                out_partials,
                out_scales,
            ),
        }
    }
}

impl Kernel {
    /// Whether the explicit SIMD kernel was compiled into this binary (the
    /// `simd` cargo feature).
    pub fn simd_compiled() -> bool {
        cfg!(feature = "simd")
    }

    /// The kernel that will actually run: [`Kernel::Simd`] and
    /// [`Kernel::Auto`] degrade to [`Kernel::Scalar`] when the `simd`
    /// feature is not compiled in. See [`Kernel::variant`] for the further
    /// runtime resolution of [`Kernel::Auto`].
    pub fn effective(self) -> Kernel {
        if Kernel::simd_compiled() {
            self
        } else {
            Kernel::Scalar
        }
    }

    /// Resolve this request to the concrete combine-loop implementation for
    /// this binary and this CPU. [`Kernel::Auto`] probes
    /// `is_x86_feature_detected!("avx2")`/`("fma")` (cached by `std`, so the
    /// resolution is cheap enough to repeat) and selects the
    /// AVX2+FMA-multiversioned loop when both are present.
    pub fn variant(self) -> KernelVariant {
        match self.effective() {
            Kernel::Scalar => KernelVariant::Scalar,
            #[cfg(feature = "simd")]
            Kernel::Simd => KernelVariant::Simd,
            #[cfg(feature = "simd")]
            Kernel::Auto => {
                if crate::simd::dispatch::avx2_fma_supported() {
                    KernelVariant::SimdFma
                } else {
                    KernelVariant::Simd
                }
            }
            #[cfg(not(feature = "simd"))]
            _ => KernelVariant::Scalar,
        }
    }

    /// Run this kernel's combine loop directly: merge two children's
    /// partial-likelihood rows (`pa`, `pb`, with cumulative log scales `sa`,
    /// `sb`) into the parent's row through the children's branch transition
    /// matrices, renormalising any pattern whose magnitude falls below
    /// `scale_threshold`.
    ///
    /// This is the low-level kernel seam: the engine dispatches every
    /// workspace build, dirty-path rescore and commit through it, the
    /// `crates/bench` kernel benchmark measures it in isolation, and an
    /// accelerator backend would replace exactly this contract. Rows are laid
    /// out `[pattern × 4]` with one scale per pattern: for `n` patterns
    /// (`n = out_scales.len()`), `pa`/`pb`/`out_partials` must hold at least
    /// `4 n` elements and `sa`/`sb` at least `n`. The kernel resolves
    /// [`Kernel::variant`] itself, so calling [`Kernel::Simd`] without the
    /// `simd` feature runs the scalar loop and [`Kernel::Auto`] runs the
    /// fastest loop this host supports.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn combine_rows(
        self,
        scale_threshold: f64,
        ma: &[[f64; 4]; 4],
        mb: &[[f64; 4]; 4],
        pa: &[f64],
        pb: &[f64],
        sa: &[f64],
        sb: &[f64],
        out_partials: &mut [f64],
        out_scales: &mut [f64],
    ) {
        self.variant().combine_rows(
            scale_threshold,
            ma,
            mb,
            pa,
            pb,
            sa,
            sb,
            out_partials,
            out_scales,
        )
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
            Kernel::Auto => "auto",
        })
    }
}

impl FromStr for Kernel {
    type Err = String;

    /// Parse a CLI-style kernel name (`scalar`, `simd` or `auto`, case
    /// insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(Kernel::Scalar),
            "simd" => Ok(Kernel::Simd),
            "auto" => Ok(Kernel::Auto),
            other => {
                Err(format!("unknown kernel {other:?} (expected \"scalar\", \"simd\" or \"auto\")"))
            }
        }
    }
}

/// The SIMD-relevant CPU features detected on this host at runtime, for perf
/// reports and the CLI's startup banner. Empty off x86/x86-64. The probe is
/// the safe `is_x86_feature_detected!` macro, independent of what the binary
/// was *compiled* for — compare with [`Kernel::simd_compiled`] and
/// `cfg!(target_feature = ...)` to see the compile-time side.
pub fn host_cpu_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        for (name, detected) in [
            ("sse2", std::arch::is_x86_feature_detected!("sse2")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if detected {
                features.push(name);
            }
        }
    }
    features
}

/// The effective branch length entering the substitution model: the raw
/// branch length scaled by the engine's relative mutation rate, clamped to
/// zero (coalescent time arithmetic can produce `-0.0` or tiny negative
/// differences). Every transition matrix in the crate — full prune,
/// dirty-path scratch fill, commit promotion, and the sequence simulator —
/// is keyed on this exact value, and the [`EdgeMatrixCache`] memoises on its
/// bit pattern, so the computation must not drift between call sites.
#[inline]
pub fn effective_branch_length(branch_length: f64, rate: f64) -> f64 {
    (branch_length * rate).max(0.0)
}

/// One pattern chunk of a [`LikelihoodWorkspace`]: structure-of-arrays
/// conditional-likelihood storage for every node over a contiguous range of
/// site patterns.
#[derive(Debug, Clone)]
struct PatternChunk {
    /// First pattern index covered by this chunk.
    start: usize,
    /// Number of patterns in this chunk.
    len: usize,
    /// Partial likelihoods, laid out `[node][pattern][4]` (node-major so the
    /// node-outer/pattern-inner loops stream contiguously).
    partials: Vec<f64>,
    /// Cumulative log scaling factored out of the subtree below each node,
    /// laid out `[node][pattern]` (Section 5.3 underflow protection).
    scales: Vec<f64>,
    /// Weighted `ln P(D|G)` contribution of this chunk's patterns.
    log_likelihood: f64,
}

impl PatternChunk {
    #[inline]
    fn partial_offset(&self, node: NodeId) -> usize {
        node * self.len * 4
    }

    #[inline]
    fn scale_offset(&self, node: NodeId) -> usize {
        node * self.len
    }
}

/// Per-workspace memo of branch transition matrices, keyed on the bit
/// pattern of each node's *effective branch length*
/// ([`effective_branch_length`]). A coalescent proposal retimes a handful of
/// nodes, so the overwhelming majority of edges keep their exact branch
/// length across evaluations — their matrices (a `transition_prob` call per
/// entry: `exp`, divisions, model-specific branching) need never be
/// recomputed. The cache is correct by construction: a transition matrix is
/// a pure function of the effective branch length, so a key match implies
/// value equality regardless of how the topology around the edge changed.
///
/// Lifecycle: built alongside the workspace (seeding from the previous
/// workspace's cache when the engine rebuilds after a generator swap),
/// consulted read-only by every dirty-path scratch fill (rescores of
/// different proposals run concurrently over one workspace), and promoted on
/// [`FelsensteinPruner::commit_to_cache`] alongside the partials — the
/// accepted proposal's recomputed edges overwrite their slots, every other
/// entry stays valid because its branch length did not change.
#[derive(Debug, Clone)]
pub struct EdgeMatrixCache {
    /// `effective_branch_length.to_bits()` per node; [`Self::NO_EDGE`] marks
    /// an empty slot. The sentinel is a NaN bit pattern, and
    /// [`effective_branch_length`] never returns NaN (`f64::max` discards a
    /// NaN operand), so no real key collides with it.
    keys: Vec<u64>,
    /// The memoised matrix per node, valid where `keys` is not the sentinel.
    matrices: Vec<[[f64; 4]; 4]>,
}

impl EdgeMatrixCache {
    const NO_EDGE: u64 = u64::MAX;

    /// An empty cache covering `n_nodes` tree nodes.
    pub fn with_nodes(n_nodes: usize) -> Self {
        EdgeMatrixCache {
            keys: vec![Self::NO_EDGE; n_nodes],
            matrices: vec![[[0.0; 4]; 4]; n_nodes],
        }
    }

    /// Number of tree nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.keys.len()
    }

    /// Number of populated entries.
    pub fn n_entries(&self) -> usize {
        self.keys.iter().filter(|&&k| k != Self::NO_EDGE).count()
    }

    /// The memoised matrix for `node` if its effective branch length still
    /// has the bit pattern `key`.
    #[inline]
    fn lookup(&self, node: NodeId, key: u64) -> Option<&[[f64; 4]; 4]> {
        (self.keys[node] == key).then(|| &self.matrices[node])
    }

    /// Memoise `matrix` as `node`'s transition matrix for the effective
    /// branch length with bit pattern `key`.
    #[inline]
    fn store(&mut self, node: NodeId, key: u64, matrix: [[f64; 4]; 4]) {
        self.keys[node] = key;
        self.matrices[node] = matrix;
    }
}

/// Reusable pattern-major partial-likelihood storage for one genealogy: the
/// cached state the batched engine's dirty-path evaluations read from.
#[derive(Debug, Clone)]
pub struct LikelihoodWorkspace {
    n_nodes: usize,
    n_patterns: usize,
    chunks: Vec<PatternChunk>,
    /// Weighted total `ln P(D|G)` over all patterns.
    log_likelihood: f64,
    /// Memoised per-edge transition matrices for the genealogy this
    /// workspace was built from (see [`EdgeMatrixCache`]).
    edge_matrices: EdgeMatrixCache,
}

impl LikelihoodWorkspace {
    /// Number of tree nodes the workspace stores partials for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of compressed site patterns covered.
    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Number of pattern chunks (the unit of pattern-level parallelism).
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The `ln P(D|G)` of the genealogy this workspace was built from.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// The per-edge transition-matrix memo attached to this workspace.
    pub fn edge_matrices(&self) -> &EdgeMatrixCache {
        &self.edge_matrices
    }
}

/// The cached generator state the engine keeps between batch evaluations.
#[derive(Debug)]
struct GeneratorCache {
    tree: GeneTree,
    workspace: LikelihoodWorkspace,
}

/// Per-thread scratch for dirty-path evaluations, pooled so the hot loop
/// performs zero heap allocations per rescore once warm. The marker vectors
/// (`dirty_mark`, `dirty_index`, `matrices`) are kept in their neutral state
/// between calls by targeted cleanup over the (small) dirty set, so reuse
/// costs O(path), not O(nodes).
#[derive(Debug, Default)]
struct RescoreScratch {
    /// `true` for nodes in the current dirty set, indexed by node id.
    dirty_mark: Vec<bool>,
    /// Slot of each dirty node in the overlay buffers (`usize::MAX` = clean).
    dirty_index: Vec<usize>,
    /// The dirty set as `(depth-from-root, node)`, sorted children-first.
    dirty: Vec<(usize, NodeId)>,
    /// Transition matrices for the children of dirty nodes.
    matrices: Vec<Option<[[f64; 4]; 4]>>,
    /// Overlay partial likelihoods, `[dirty-slot × PATTERN_CHUNK × 4]`.
    overlay_partials: Vec<f64>,
    /// Overlay log scales, `[dirty-slot × PATTERN_CHUNK]`.
    overlay_scales: Vec<f64>,
    /// One node's worth of partials, the combine kernel's output row.
    partial_row: Vec<f64>,
    /// One node's worth of scales, the combine kernel's output row.
    scale_row: Vec<f64>,
}

impl RescoreScratch {
    /// Grow the node-indexed vectors to cover `n_nodes` and the overlay
    /// buffers to cover `n_dirty` slots. Growth never shrinks, so a warmed-up
    /// thread allocates nothing.
    fn reserve(&mut self, n_nodes: usize, n_dirty: usize) {
        if self.dirty_mark.len() < n_nodes {
            self.dirty_mark.resize(n_nodes, false);
            self.dirty_index.resize(n_nodes, usize::MAX);
            self.matrices.resize(n_nodes, None);
        }
        if self.overlay_partials.len() < n_dirty * PATTERN_CHUNK * 4 {
            self.overlay_partials.resize(n_dirty * PATTERN_CHUNK * 4, 0.0);
            self.overlay_scales.resize(n_dirty * PATTERN_CHUNK, 0.0);
        }
        if self.partial_row.len() < PATTERN_CHUNK * 4 {
            self.partial_row.resize(PATTERN_CHUNK * 4, 0.0);
            self.scale_row.resize(PATTERN_CHUNK, 0.0);
        }
    }
}

thread_local! {
    static RESCORE_SCRATCH: RefCell<RescoreScratch> = RefCell::new(RescoreScratch::default());
}

/// Number of edges between `node` and the root.
fn depth_from_root(tree: &GeneTree, node: NodeId) -> usize {
    let mut depth = 0;
    let mut cursor = node;
    while let Some(parent) = tree.parent(cursor) {
        depth += 1;
        cursor = parent;
    }
    depth
}

/// Mark the dirty region of `tree` for the given edit: every edited interior
/// node plus all of its ancestors (a changed node time also changes the
/// branch to its parent, so invalidation always propagates to the root).
/// Fills `dirty` with `(depth, node)` sorted children-before-parents,
/// `dirty_index` with each node's slot, and `matrices` with the transition
/// matrices of the children of dirty nodes — served from `edge_matrices`
/// where the child's effective branch length is unchanged, recomputed
/// otherwise. The cache is read-only here (rescores of different proposals
/// run concurrently over one workspace); only `commit_to_cache` promotes.
/// Returns `(cache hits, cache misses)` over those child matrices. The three
/// node-indexed vectors must be in their neutral state on entry;
/// `clear_dirty_marks` restores it.
fn mark_dirty_region<M: SubstitutionModel>(
    model: &M,
    rate: f64,
    tree: &GeneTree,
    edited: &[NodeId],
    edge_matrices: Option<&EdgeMatrixCache>,
    scratch: &mut RescoreScratch,
) -> (usize, usize) {
    scratch.dirty.clear();
    for &edit in edited {
        let mut cursor = Some(edit);
        while let Some(node) = cursor {
            if !tree.is_tip(node) {
                if scratch.dirty_mark[node] {
                    break;
                }
                scratch.dirty_mark[node] = true;
                // mpcgs-analyze: allow(r2, reason = "pooled scratch: the vec is cleared, never dropped, so capacity is retained across rescores and no realloc happens once warm")
                scratch.dirty.push((depth_from_root(tree, node), node));
            }
            cursor = tree.parent(node);
        }
    }
    // Children-before-parents: a parent is strictly closer to the root than
    // any of its descendants, so descending depth is a topological order.
    scratch.dirty.sort_unstable_by(|a, b| b.cmp(a));
    let mut hits = 0;
    let mut misses = 0;
    for (slot, &(_, node)) in scratch.dirty.iter().enumerate() {
        scratch.dirty_index[node] = slot;
        let (a, b) = tree.children(node).expect("dirty nodes are interior");
        for child in [a, b] {
            if scratch.matrices[child].is_none() {
                let t = tree.branch_length(child).expect("child of an interior node");
                let eff = effective_branch_length(t, rate);
                match edge_matrices.and_then(|cache| cache.lookup(child, eff.to_bits())) {
                    Some(matrix) => {
                        hits += 1;
                        scratch.matrices[child] = Some(*matrix);
                    }
                    None => {
                        misses += 1;
                        scratch.matrices[child] = Some(model.transition_matrix(eff));
                    }
                }
            }
        }
    }
    (hits, misses)
}

/// Undo `mark_dirty_region`'s writes so the scratch is neutral for the next
/// rescore on this thread. O(dirty set), not O(nodes).
fn clear_dirty_marks(tree: &GeneTree, scratch: &mut RescoreScratch) {
    for i in 0..scratch.dirty.len() {
        let node = scratch.dirty[i].1;
        scratch.dirty_mark[node] = false;
        scratch.dirty_index[node] = usize::MAX;
        let (a, b) = tree.children(node).expect("dirty nodes are interior");
        scratch.matrices[a] = None;
        scratch.matrices[b] = None;
    }
}

/// The outcome of scoring a single edited tree against a cached workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtyEvaluation {
    /// `ln P(D|G̃)` of the edited tree.
    pub log_likelihood: f64,
    /// Interior nodes recomputed (the edited nodes plus the path to the
    /// root); the rest were reused from the workspace.
    pub nodes_repruned: usize,
    /// Child transition matrices served from the workspace's
    /// [`EdgeMatrixCache`] (the edge's effective branch length matched).
    pub matrix_cache_hits: usize,
    /// Child transition matrices recomputed because the edit changed the
    /// edge's effective branch length (or the slot was empty).
    pub matrix_cache_misses: usize,
}

/// Felsenstein-pruning likelihood engine bound to one alignment and one
/// substitution model.
#[derive(Debug)]
pub struct FelsensteinPruner<M> {
    model: M,
    patterns: SitePatterns,
    /// Map from sequence name to row index in the patterns. Ordered so no
    /// iteration over it can ever depend on a per-process hash seed.
    name_to_row: std::collections::BTreeMap<String, usize>,
    mode: ExecutionMode,
    kernel: Kernel,
    /// The concrete combine loop `kernel` resolved to at construction
    /// ([`Kernel::variant`]), cached so the hot loops skip the CPU probe.
    variant: KernelVariant,
    /// Relative mutation rate: every branch length is multiplied by this
    /// before entering the substitution model, so a locus with rate `r` is
    /// scored against `θ·r` (LAMARC's per-locus driving value).
    rate: f64,
    /// Scaling threshold below which partial likelihoods are renormalised.
    scale_threshold: f64,
    /// Memoised generator workspace for the batched engine. Guarded by a
    /// mutex so the engine stays `Sync`; the workspace is taken out for the
    /// duration of an evaluation and put back afterwards.
    cache: Mutex<Option<GeneratorCache>>,
}

impl<M: Clone> Clone for FelsensteinPruner<M> {
    fn clone(&self) -> Self {
        FelsensteinPruner {
            model: self.model.clone(),
            patterns: self.patterns.clone(),
            name_to_row: self.name_to_row.clone(),
            mode: self.mode,
            kernel: self.kernel,
            variant: self.variant,
            rate: self.rate,
            scale_threshold: self.scale_threshold,
            // Caches are per-engine working state, not semantics: a clone
            // starts cold.
            cache: Mutex::new(None),
        }
    }
}

impl<M: SubstitutionModel> FelsensteinPruner<M> {
    /// Create an engine for the given alignment and model.
    pub fn new(alignment: &Alignment, model: M) -> Self {
        let patterns = SitePatterns::from_alignment(alignment);
        let name_to_row =
            alignment.names().iter().enumerate().map(|(i, name)| (name.to_string(), i)).collect();
        FelsensteinPruner {
            model,
            patterns,
            name_to_row,
            mode: ExecutionMode::Serial,
            kernel: Kernel::default(),
            variant: Kernel::default().variant(),
            rate: 1.0,
            scale_threshold: 1e-100,
            cache: Mutex::new(None),
        }
    }

    /// Select the relative mutation rate: every branch length is multiplied
    /// by `rate` before transition matrices are built, scoring this engine's
    /// locus against `θ·rate`. Rate 1.0 (the default) is bit-identical to an
    /// unscaled engine. Callers validate the rate
    /// ([`crate::Locus::with_rate`] enforces finite and > 0); the engine
    /// clears its cached workspace because cached partials embed the old
    /// rate.
    pub fn with_relative_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self.clear_cache();
        self
    }

    /// The relative mutation rate in use.
    pub fn relative_rate(&self) -> f64 {
        self.rate
    }

    /// Select the execution mode: [`ExecutionMode::Parallel`] runs the
    /// reference path pattern-parallel and upgrades the batched engine's
    /// backend to rayon whatever the caller passes.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The execution mode in use.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Select the combine kernel ([`Kernel::Simd`] requires the `simd` cargo
    /// feature and degrades to the scalar kernel without it;
    /// [`Kernel::Auto`], the default, additionally probes the CPU). The
    /// request is resolved to its concrete [`KernelVariant`] here, once.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self.variant = kernel.variant();
        self
    }

    /// The configured combine kernel (as requested; see
    /// [`FelsensteinPruner::kernel_variant`] for what actually runs).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The concrete combine loop the configured kernel resolved to on this
    /// binary and CPU.
    pub fn kernel_variant(&self) -> KernelVariant {
        self.variant
    }

    /// The substitution model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of compressed site patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.n_patterns()
    }

    /// Number of sites in the source alignment.
    pub fn n_sites(&self) -> usize {
        self.patterns.n_sites()
    }

    /// Number of sequences.
    pub fn n_sequences(&self) -> usize {
        self.patterns.n_sequences()
    }

    /// An estimate of the floating point work of one evaluation, used by the
    /// device cost model: per pattern, each interior node combines two
    /// children with a 4×4 matrix-vector product.
    pub fn work_per_evaluation(&self, tree: &GeneTree) -> u64 {
        let per_node = 2 * 4 * 4 * 2; // two children, 4x4 products, mul+add
        (self.patterns.n_patterns() as u64) * (tree.n_internal() as u64) * per_node as u64
    }

    /// Map the tree's tips to pattern rows, by tip label.
    fn tip_rows(&self, tree: &GeneTree) -> Result<Vec<Option<usize>>, PhyloError> {
        let mut rows = vec![None; tree.n_nodes()];
        for tip in tree.tips() {
            let label = tree.label(tip).unwrap_or_default();
            let row =
                self.name_to_row.get(label).copied().ok_or_else(|| PhyloError::InvalidNode {
                    node: tip,
                    message: format!("tip label {label:?} not present in the alignment"),
                })?;
            rows[tip] = Some(row);
        }
        Ok(rows)
    }

    fn check_tree(&self, tree: &GeneTree) -> Result<(), PhyloError> {
        if tree.n_tips() != self.n_sequences() {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "tree has {} tips but the alignment has {} sequences",
                    tree.n_tips(),
                    self.n_sequences()
                ),
            });
        }
        Ok(())
    }

    /// Per-branch transition matrices for every node of `tree`, with branch
    /// lengths scaled by the engine's relative rate. Fresh computation, no
    /// memo — this is the reference path's oracle, kept independent of the
    /// [`EdgeMatrixCache`] so equivalence tests compare against uncached
    /// arithmetic.
    fn transition_matrices(&self, tree: &GeneTree) -> Vec<Option<[[f64; 4]; 4]>> {
        (0..tree.n_nodes())
            .map(|node| {
                tree.branch_length(node)
                    .map(|t| self.model.transition_matrix(effective_branch_length(t, self.rate)))
            })
            .collect()
    }

    /// Per-branch transition matrices for every node of `tree`, served from
    /// `seed` (a previous workspace's [`EdgeMatrixCache`]) where the node's
    /// effective branch length is unchanged. Returns the matrices, the fresh
    /// cache describing exactly this tree, and the `(hits, misses)` counts.
    #[allow(clippy::type_complexity)]
    fn transition_matrices_cached(
        &self,
        tree: &GeneTree,
        seed: Option<&EdgeMatrixCache>,
    ) -> (Vec<Option<[[f64; 4]; 4]>>, EdgeMatrixCache, usize, usize) {
        let n_nodes = tree.n_nodes();
        let mut cache = EdgeMatrixCache::with_nodes(n_nodes);
        let seed = seed.filter(|seed| seed.n_nodes() == n_nodes);
        let mut hits = 0;
        let mut misses = 0;
        let matrices = (0..n_nodes)
            .map(|node| {
                tree.branch_length(node).map(|t| {
                    let eff = effective_branch_length(t, self.rate);
                    let key = eff.to_bits();
                    let matrix = match seed.and_then(|seed| seed.lookup(node, key)) {
                        Some(matrix) => {
                            hits += 1;
                            *matrix
                        }
                        None => {
                            misses += 1;
                            self.model.transition_matrix(eff)
                        }
                    };
                    cache.store(node, key, matrix);
                    matrix
                })
            })
            .collect();
        (matrices, cache, hits, misses)
    }

    // ------------------------------------------------------------------
    // Reference path: pattern-outer pruning, the oracle for the fast path.
    // ------------------------------------------------------------------

    /// Per-pattern log likelihoods (ordered as the patterns are), computed by
    /// the reference pattern-outer recursion.
    pub fn pattern_log_likelihoods(&self, tree: &GeneTree) -> Result<Vec<f64>, PhyloError> {
        self.check_tree(tree)?;
        let tip_rows = self.tip_rows(tree)?;
        let order = tree.post_order();
        // Precompute per-branch transition matrices (shared across patterns).
        let matrices = self.transition_matrices(tree);

        let compute_pattern = |pattern: &[Nucleotide]| -> f64 {
            self.prune_one_pattern(tree, &order, &matrices, &tip_rows, pattern)
        };

        let result: Vec<f64> = match self.mode {
            ExecutionMode::Serial => (0..self.patterns.n_patterns())
                .map(|i| compute_pattern(self.patterns.pattern(i)))
                .collect(),
            ExecutionMode::Parallel => (0..self.patterns.n_patterns())
                .into_par_iter()
                .map(|i| compute_pattern(self.patterns.pattern(i)))
                .collect(),
        };
        Ok(result)
    }

    fn prune_one_pattern(
        &self,
        tree: &GeneTree,
        order: &[NodeId],
        matrices: &[Option<[[f64; 4]; 4]>],
        tip_rows: &[Option<usize>],
        pattern: &[Nucleotide],
    ) -> f64 {
        let n = tree.n_nodes();
        let mut partial = vec![[0.0f64; 4]; n];
        let mut log_scale = 0.0f64;
        for &node in order {
            if let Some(row) = tip_rows[node] {
                let observed = pattern[row];
                let mut vec = [0.0; 4];
                vec[observed.index()] = 1.0;
                partial[node] = vec;
            } else {
                let (a, b) = tree.children(node).expect("interior node");
                let ma = matrices[a].expect("non-root child has a branch");
                let mb = matrices[b].expect("non-root child has a branch");
                let pa = partial[a];
                let pb = partial[b];
                let mut vec = [0.0; 4];
                let mut max = 0.0f64;
                for x in 0..4 {
                    let mut sum_a = 0.0;
                    let mut sum_b = 0.0;
                    for y in 0..4 {
                        sum_a += ma[x][y] * pa[y];
                        sum_b += mb[x][y] * pb[y];
                    }
                    let v = sum_a * sum_b;
                    vec[x] = v;
                    if v > max {
                        max = v;
                    }
                }
                // Rescale to avoid underflow on deep trees (Section 5.3).
                if max > 0.0 && max < self.scale_threshold {
                    for v in &mut vec {
                        *v /= max;
                    }
                    log_scale += max.ln();
                }
                partial[node] = vec;
            }
        }
        let root = tree.root();
        let freqs = self.model.base_frequencies();
        let site_likelihood: f64 =
            Nucleotide::ALL.iter().map(|&x| freqs.freq(x) * partial[root][x.index()]).sum();
        if site_likelihood <= 0.0 {
            f64::NEG_INFINITY
        } else {
            site_likelihood.ln() + log_scale
        }
    }

    /// `ln P(D|G)` by the reference path (per-site likelihoods expanded back
    /// to alignment order are not needed by the samplers; this returns the
    /// weighted total directly).
    pub fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        let per_pattern = self.pattern_log_likelihoods(tree)?;
        Ok(per_pattern.iter().zip(self.patterns.weights()).map(|(lnl, &w)| lnl * w as f64).sum())
    }

    // ------------------------------------------------------------------
    // Batched engine: workspace build + dirty-path rescoring.
    // ------------------------------------------------------------------

    /// Build a full [`LikelihoodWorkspace`] for `tree`, with the pattern
    /// chunks evaluated on `backend`.
    pub fn build_workspace(
        &self,
        backend: Backend,
        tree: &GeneTree,
    ) -> Result<LikelihoodWorkspace, PhyloError> {
        self.build_workspace_seeded(backend, tree, None).map(|(workspace, _, _)| workspace)
    }

    /// [`FelsensteinPruner::build_workspace`], seeding the transition
    /// matrices from a previous workspace's [`EdgeMatrixCache`]. Returns the
    /// workspace plus the matrix-cache `(hits, misses)` of the build: after
    /// a generator swap most branch lengths usually differ, so a genuinely
    /// new tree scores ~zero hits, while a rebuild of a lightly edited tree
    /// reuses almost everything.
    fn build_workspace_seeded(
        &self,
        backend: Backend,
        tree: &GeneTree,
        seed: Option<&EdgeMatrixCache>,
    ) -> Result<(LikelihoodWorkspace, usize, usize), PhyloError> {
        self.check_tree(tree)?;
        let tip_rows = self.tip_rows(tree)?;
        let order = tree.post_order();
        let (matrices, edge_matrices, hits, misses) = self.transition_matrices_cached(tree, seed);

        let n_patterns = self.patterns.n_patterns();
        let n_chunks = n_patterns.div_ceil(PATTERN_CHUNK).max(1);
        let chunks: Vec<PatternChunk> = backend.map_indexed(n_chunks, |c| {
            let start = c * PATTERN_CHUNK;
            let len = PATTERN_CHUNK.min(n_patterns - start);
            self.build_chunk(tree, &order, &matrices, &tip_rows, start, len)
        });
        let log_likelihood = chunks.iter().map(|chunk| chunk.log_likelihood).sum();
        Ok((
            LikelihoodWorkspace {
                n_nodes: tree.n_nodes(),
                n_patterns,
                chunks,
                log_likelihood,
                edge_matrices,
            },
            hits,
            misses,
        ))
    }

    /// Fill one pattern chunk by a node-outer/pattern-inner full prune.
    fn build_chunk(
        &self,
        tree: &GeneTree,
        order: &[NodeId],
        matrices: &[Option<[[f64; 4]; 4]>],
        tip_rows: &[Option<usize>],
        start: usize,
        len: usize,
    ) -> PatternChunk {
        let n_nodes = tree.n_nodes();
        let mut chunk = PatternChunk {
            start,
            len,
            partials: vec![0.0; n_nodes * len * 4],
            scales: vec![0.0; n_nodes * len],
            log_likelihood: 0.0,
        };
        // Scratch rows reused for every interior node: zero per-pattern and
        // zero per-node allocation.
        let mut partial_row = vec![0.0f64; len * 4];
        let mut scale_row = vec![0.0f64; len];
        for &node in order {
            if let Some(row) = tip_rows[node] {
                let offset = chunk.partial_offset(node);
                for p in 0..len {
                    let observed = self.patterns.pattern(start + p)[row];
                    chunk.partials[offset + p * 4 + observed.index()] = 1.0;
                }
                // Tip scales stay zero.
            } else {
                let (a, b) = tree.children(node).expect("interior node");
                let ma = matrices[a].expect("non-root child has a branch");
                let mb = matrices[b].expect("non-root child has a branch");
                self.combine_children_rows(
                    &ma,
                    &mb,
                    &chunk.partials[chunk.partial_offset(a)..chunk.partial_offset(a) + len * 4],
                    &chunk.partials[chunk.partial_offset(b)..chunk.partial_offset(b) + len * 4],
                    &chunk.scales[chunk.scale_offset(a)..chunk.scale_offset(a) + len],
                    &chunk.scales[chunk.scale_offset(b)..chunk.scale_offset(b) + len],
                    &mut partial_row,
                    &mut scale_row,
                );
                let offset = chunk.partial_offset(node);
                chunk.partials[offset..offset + len * 4].copy_from_slice(&partial_row);
                let soffset = chunk.scale_offset(node);
                chunk.scales[soffset..soffset + len].copy_from_slice(&scale_row);
            }
        }
        chunk.log_likelihood = self.chunk_root_log_likelihood(
            &chunk.partials[chunk.partial_offset(tree.root())..],
            &chunk.scales[chunk.scale_offset(tree.root())..],
            start,
            len,
        );
        chunk
    }

    /// The node-outer/pattern-inner kernel: combine two children's partial
    /// rows into the parent's row through the branch transition matrices,
    /// rescaling per pattern where the magnitude drops below the threshold.
    /// Dispatches through the [`KernelVariant`] resolved at construction.
    #[allow(clippy::too_many_arguments)]
    fn combine_children_rows(
        &self,
        ma: &[[f64; 4]; 4],
        mb: &[[f64; 4]; 4],
        pa: &[f64],
        pb: &[f64],
        sa: &[f64],
        sb: &[f64],
        out_partials: &mut [f64],
        out_scales: &mut [f64],
    ) {
        self.variant.combine_rows(
            self.scale_threshold,
            ma,
            mb,
            pa,
            pb,
            sa,
            sb,
            out_partials,
            out_scales,
        );
    }

    /// Weighted `ln P(D|G)` contribution of one chunk given the root's
    /// partial and scale rows.
    fn chunk_root_log_likelihood(
        &self,
        root_partials: &[f64],
        root_scales: &[f64],
        start: usize,
        len: usize,
    ) -> f64 {
        let freqs = self.model.base_frequencies();
        let weights = self.patterns.weights();
        let mut total = 0.0;
        for p in 0..len {
            let row = &root_partials[p * 4..p * 4 + 4];
            let site_likelihood: f64 =
                Nucleotide::ALL.iter().map(|&x| freqs.freq(x) * row[x.index()]).sum();
            let lnl = if site_likelihood <= 0.0 {
                f64::NEG_INFINITY
            } else {
                site_likelihood.ln() + root_scales[p]
            };
            total += lnl * weights[start + p] as f64;
        }
        total
    }

    /// Score an edited tree against a cached generator workspace, recomputing
    /// only the edited nodes and the path from them to the root.
    pub fn rescore_with_workspace(
        &self,
        workspace: &LikelihoodWorkspace,
        proposal: &GeneTree,
        edited: &[NodeId],
    ) -> Result<DirtyEvaluation, PhyloError> {
        if proposal.n_nodes() != workspace.n_nodes() {
            return Err(PhyloError::InvalidTree {
                // mpcgs-analyze: allow(r2, reason = "cold validation-failure arm: allocates only when the rescore is already aborting with an error")
                message: format!(
                    "proposal has {} nodes but the cached workspace covers {}",
                    proposal.n_nodes(),
                    workspace.n_nodes()
                ),
            });
        }
        if edited.is_empty() {
            return Ok(DirtyEvaluation {
                log_likelihood: workspace.log_likelihood,
                nodes_repruned: 0,
                matrix_cache_hits: 0,
                matrix_cache_misses: 0,
            });
        }

        let n_nodes = proposal.n_nodes();
        RESCORE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.reserve(n_nodes, 0);
            let (matrix_cache_hits, matrix_cache_misses) = mark_dirty_region(
                &self.model,
                self.rate,
                proposal,
                edited,
                Some(&workspace.edge_matrices),
                scratch,
            );
            let n_dirty = scratch.dirty.len();
            scratch.reserve(n_nodes, n_dirty);

            let root = proposal.root();
            debug_assert!(scratch.dirty_mark[root], "the dirty path always reaches the root");
            let mut total = 0.0;
            {
                // Split the scratch into its independent buffers so the
                // overlay can be read (children) and written (parent) without
                // aliasing the output rows.
                let RescoreScratch {
                    dirty,
                    dirty_index,
                    matrices,
                    overlay_partials,
                    overlay_scales,
                    partial_row,
                    scale_row,
                    ..
                } = scratch;
                for chunk in &workspace.chunks {
                    let len = chunk.len;
                    for (di, &(_, node)) in dirty.iter().enumerate() {
                        let (a, b) = proposal.children(node).expect("dirty nodes are interior");
                        let ma = matrices[a].expect("children of dirty nodes have matrices");
                        let mb = matrices[b].expect("children of dirty nodes have matrices");
                        let (pa, sa) =
                            read_rows(chunk, overlay_partials, overlay_scales, dirty_index, a, len);
                        let (pb, sb) =
                            read_rows(chunk, overlay_partials, overlay_scales, dirty_index, b, len);
                        self.combine_children_rows(
                            &ma,
                            &mb,
                            pa,
                            pb,
                            sa,
                            sb,
                            &mut partial_row[..len * 4],
                            &mut scale_row[..len],
                        );
                        overlay_partials[di * PATTERN_CHUNK * 4..di * PATTERN_CHUNK * 4 + len * 4]
                            .copy_from_slice(&partial_row[..len * 4]);
                        overlay_scales[di * PATTERN_CHUNK..di * PATTERN_CHUNK + len]
                            .copy_from_slice(&scale_row[..len]);
                    }
                    let root_slot = dirty_index[root];
                    total += self.chunk_root_log_likelihood(
                        &overlay_partials[root_slot * PATTERN_CHUNK * 4..],
                        &overlay_scales[root_slot * PATTERN_CHUNK..],
                        chunk.start,
                        len,
                    );
                }
            }
            clear_dirty_marks(proposal, scratch);
            Ok(DirtyEvaluation {
                log_likelihood: total,
                nodes_repruned: n_dirty,
                matrix_cache_hits,
                matrix_cache_misses,
            })
        })
    }

    /// Promote an accepted proposal into the memoised generator workspace:
    /// recompute the dirty-path partials *in place* in the cached chunks
    /// (children before parents, exactly the arithmetic a full prune performs
    /// on those nodes, so the committed workspace is bit-identical to a fresh
    /// build of `accepted`) and re-key the cache to the accepted tree.
    ///
    /// Returns the number of interior nodes recomputed, or `None` when there
    /// is no cached workspace keyed to `generator` (the next batch evaluation
    /// rebuilds from scratch, the pre-commit behaviour).
    pub fn commit_to_cache(
        &self,
        generator: &GeneTree,
        accepted: &GeneTree,
        edited: &[NodeId],
    ) -> Result<Option<usize>, PhyloError> {
        let mut slot = self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let cache = match slot.as_mut() {
            Some(cache) if cache.tree == *generator => cache,
            _ => return Ok(None),
        };
        if accepted.n_nodes() != cache.workspace.n_nodes() {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "accepted tree has {} nodes but the cached workspace covers {}",
                    accepted.n_nodes(),
                    cache.workspace.n_nodes()
                ),
            });
        }
        if edited.is_empty() {
            cache.tree = accepted.clone();
            return Ok(Some(0));
        }

        let n_nodes = accepted.n_nodes();
        let n_dirty = RESCORE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.reserve(n_nodes, 0);
            mark_dirty_region(
                &self.model,
                self.rate,
                accepted,
                edited,
                Some(&cache.workspace.edge_matrices),
                scratch,
            );
            let RescoreScratch { dirty, matrices, partial_row, scale_row, .. } = &mut *scratch;
            for chunk in &mut cache.workspace.chunks {
                let len = chunk.len;
                for &(_, node) in dirty.iter() {
                    let (a, b) = accepted.children(node).expect("dirty nodes are interior");
                    let ma = matrices[a].expect("children of dirty nodes have matrices");
                    let mb = matrices[b].expect("children of dirty nodes have matrices");
                    self.combine_children_rows(
                        &ma,
                        &mb,
                        &chunk.partials[chunk.partial_offset(a)..chunk.partial_offset(a) + len * 4],
                        &chunk.partials[chunk.partial_offset(b)..chunk.partial_offset(b) + len * 4],
                        &chunk.scales[chunk.scale_offset(a)..chunk.scale_offset(a) + len],
                        &chunk.scales[chunk.scale_offset(b)..chunk.scale_offset(b) + len],
                        &mut partial_row[..len * 4],
                        &mut scale_row[..len],
                    );
                    let offset = chunk.partial_offset(node);
                    chunk.partials[offset..offset + len * 4]
                        .copy_from_slice(&partial_row[..len * 4]);
                    let soffset = chunk.scale_offset(node);
                    chunk.scales[soffset..soffset + len].copy_from_slice(&scale_row[..len]);
                }
                chunk.log_likelihood = self.chunk_root_log_likelihood(
                    &chunk.partials[chunk.partial_offset(accepted.root())..],
                    &chunk.scales[chunk.scale_offset(accepted.root())..],
                    chunk.start,
                    len,
                );
            }
            // Promote alongside the partials: re-key every child edge of the
            // dirty path in the workspace's matrix memo. These are exactly
            // the edges whose branch lengths the edit can have changed (a
            // retimed node moves its own branch and its children's branches,
            // and both endpoints of such an edge are on the dirty path), so
            // after this loop every memo entry again matches its node's
            // effective branch length in `accepted`.
            for &(_, node) in dirty.iter() {
                let (a, b) = accepted.children(node).expect("dirty nodes are interior");
                for child in [a, b] {
                    let t = accepted.branch_length(child).expect("child of an interior node");
                    let key = effective_branch_length(t, self.rate).to_bits();
                    let matrix = matrices[child].expect("children of dirty nodes have matrices");
                    cache.workspace.edge_matrices.store(child, key, matrix);
                }
            }
            let n_dirty = dirty.len();
            clear_dirty_marks(accepted, scratch);
            n_dirty
        });
        cache.workspace.log_likelihood =
            cache.workspace.chunks.iter().map(|chunk| chunk.log_likelihood).sum();
        cache.tree = accepted.clone();
        Ok(Some(n_dirty))
    }

    /// Drop the memoised generator workspace (mainly useful for measuring
    /// cold-path behaviour).
    pub fn clear_cache(&self) {
        *self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// The portable scalar combine kernel: per pattern, two 4×4 matrix–vector
/// products, a Hadamard product, and the underflow rescale.
#[inline]
#[allow(clippy::too_many_arguments)]
fn combine_children_rows_scalar(
    scale_threshold: f64,
    ma: &[[f64; 4]; 4],
    mb: &[[f64; 4]; 4],
    pa: &[f64],
    pb: &[f64],
    sa: &[f64],
    sb: &[f64],
    out_partials: &mut [f64],
    out_scales: &mut [f64],
) {
    let len = out_scales.len();
    for p in 0..len {
        let pa4 = &pa[p * 4..p * 4 + 4];
        let pb4 = &pb[p * 4..p * 4 + 4];
        let mut vec = [0.0f64; 4];
        let mut max = 0.0f64;
        for x in 0..4 {
            let mut sum_a = 0.0;
            let mut sum_b = 0.0;
            for y in 0..4 {
                sum_a += ma[x][y] * pa4[y];
                sum_b += mb[x][y] * pb4[y];
            }
            let v = sum_a * sum_b;
            vec[x] = v;
            if v > max {
                max = v;
            }
        }
        let mut scale = sa[p] + sb[p];
        if max > 0.0 && max < scale_threshold {
            for v in &mut vec {
                *v /= max;
            }
            scale += max.ln();
        }
        out_partials[p * 4..p * 4 + 4].copy_from_slice(&vec);
        out_scales[p] = scale;
    }
}

/// Borrow node `node`'s partial and scale rows for `len` patterns, from the
/// overlay when the node is dirty and from the cached chunk otherwise.
fn read_rows<'a>(
    chunk: &'a PatternChunk,
    overlay_partials: &'a [f64],
    overlay_scales: &'a [f64],
    dirty_index: &[usize],
    node: NodeId,
    len: usize,
) -> (&'a [f64], &'a [f64]) {
    let di = dirty_index[node];
    if di == usize::MAX {
        let po = chunk.partial_offset(node);
        let so = chunk.scale_offset(node);
        (&chunk.partials[po..po + len * 4], &chunk.scales[so..so + len])
    } else {
        (
            &overlay_partials[di * PATTERN_CHUNK * 4..di * PATTERN_CHUNK * 4 + len * 4],
            &overlay_scales[di * PATTERN_CHUNK..di * PATTERN_CHUNK + len],
        )
    }
}

impl<M: SubstitutionModel> LikelihoodEngine for FelsensteinPruner<M> {
    fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        FelsensteinPruner::log_likelihood(self, tree)
    }

    /// The batched, dirty-path-cached evaluation: the generator is pruned in
    /// full at most once (and reused from the memo when it is unchanged since
    /// the previous call), then every proposal recomputes only its edited
    /// nodes and the path from them to the root. The proposal-parallel outer
    /// loop runs on `backend`; inside, patterns are walked chunk by chunk.
    fn log_likelihood_batch(
        &self,
        backend: Backend,
        generator: &GeneTree,
        proposals: &[TreeProposal<'_>],
    ) -> Result<BatchEvaluation, PhyloError> {
        // `with_mode(Parallel)` asks for site-parallel evaluation regardless
        // of how the caller schedules the outer loop: upgrade the backend so
        // the knob keeps meaning what it meant on the reference path. The
        // device backend schedules (and accounts) its own queue, so it is
        // never silently replaced — device dispatch wins over the mode knob.
        let backend = match self.mode {
            ExecutionMode::Parallel if !backend.is_device() => Backend::Rayon,
            _ => backend,
        };
        // Reuse the memoised workspace when the generator is unchanged; on a
        // hit the cache entry (tree key included) is kept intact so nothing
        // is cloned on the hot path.
        let taken = { self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take() };
        let (cache, generator_cache_hit, mut matrix_cache_hits, mut matrix_cache_misses) =
            match taken {
                Some(cache) if cache.tree == *generator => (cache, true, 0, 0),
                stale => {
                    // A rebuild seeds its edge matrices from the stale
                    // workspace: after `replace_state` swapped in an
                    // unrelated tree nearly everything misses, but a
                    // rebuild of a near-identical generator reuses most
                    // edges.
                    let seed = stale.as_ref().map(|cache| &cache.workspace.edge_matrices);
                    let (workspace, hits, misses) =
                        self.build_workspace_seeded(backend, generator, seed)?;
                    (GeneratorCache { tree: generator.clone(), workspace }, false, hits, misses)
                }
            };
        let nodes_full_pruned = if generator_cache_hit { 0 } else { generator.n_internal() };

        // One logical device thread per (proposal, pattern) pair (see the
        // profiled grid dispatch in `MultiLocusEngine::log_likelihood_batch`;
        // this is the single-locus degenerate case of the same submission).
        let profile = exec::GridProfile::pruning(
            proposals.len() * self.n_patterns(),
            generator.n_internal(),
            generator.n_nodes(),
            generator.n_tips(),
        );
        let workspace_ref = &cache.workspace;
        let results = backend.map_grid_profiled(Some(&profile), 1, proposals.len(), |_, p| {
            let proposal = &proposals[p];
            self.rescore_with_workspace(workspace_ref, proposal.tree, proposal.edited)
        });

        let generator_log_likelihood = cache.workspace.log_likelihood;
        // Put the cache back for the next evaluation against the same
        // generator (e.g. rejected moves).
        {
            let mut slot = self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *slot = Some(cache);
        }

        let mut log_likelihoods = Vec::with_capacity(proposals.len());
        let mut nodes_repruned = 0;
        for result in results {
            let eval = result?;
            log_likelihoods.push(eval.log_likelihood);
            nodes_repruned += eval.nodes_repruned;
            matrix_cache_hits += eval.matrix_cache_hits;
            matrix_cache_misses += eval.matrix_cache_misses;
        }
        Ok(BatchEvaluation {
            generator_log_likelihood,
            log_likelihoods,
            nodes_repruned,
            nodes_full_pruned,
            generator_cache_hit,
            matrix_cache_hits,
            matrix_cache_misses,
        })
    }

    /// Commit-on-accept: promote the accepted proposal's dirty path into the
    /// memoised generator workspace (see
    /// [`FelsensteinPruner::commit_to_cache`]).
    fn commit_accepted(
        &self,
        generator: &GeneTree,
        accepted: &GeneTree,
        edited: &[NodeId],
    ) -> Result<Option<usize>, PhyloError> {
        self.commit_to_cache(generator, accepted, edited)
    }

    fn cached_generator(&self) -> Option<GeneTree> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|c| c.tree.clone())
    }

    /// Rebuild the memoised workspace for `tree` from scratch (serially, so
    /// the result is backend-independent) and install it. A full build of a
    /// tree bitwise-equals the incrementally maintained warm workspace for
    /// that tree — partials by the commit-on-accept invariant, edge-matrix
    /// keys because the memo is re-keyed to describe exactly the cached tree
    /// on every commit, and the matrices because they are pure functions of
    /// the key bits — so this restores checkpointed engine state exactly.
    fn prime_cache(&self, tree: Option<&GeneTree>) -> Result<(), PhyloError> {
        let cache = match tree {
            None => None,
            Some(tree) => {
                let workspace = self.build_workspace(Backend::Serial, tree)?;
                Some(GeneratorCache { tree: tree.clone(), workspace })
            }
        };
        *self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = cache;
        Ok(())
    }
}

/// A likelihood engine over a multi-locus [`Dataset`]: one pattern-compressed
/// [`FelsensteinPruner`] (and therefore one cached [`LikelihoodWorkspace`])
/// per locus, with every evaluation batched (locus × proposal) through the
/// same dirty-path machinery and the per-locus log likelihoods summed —
/// LAMARC's multi-locus θ estimation, where unlinked loci contribute
/// independent data likelihoods for the same driving parameter.
///
/// With a single locus the engine is numerically bit-identical to the bare
/// pruner: every result is a one-term sum. Clones start with cold caches
/// (see [`FelsensteinPruner`]'s `Clone`).
#[derive(Debug, Clone)]
pub struct MultiLocusEngine<M> {
    names: Vec<String>,
    engines: Vec<FelsensteinPruner<M>>,
}

impl<M: SubstitutionModel> MultiLocusEngine<M> {
    /// Build an engine for `dataset`, instantiating one substitution model
    /// per locus through `model_for` (so e.g. empirical base frequencies can
    /// be estimated per locus). Each per-locus pruner inherits its locus's
    /// relative mutation rate ([`crate::Locus::with_rate`]), so a locus with
    /// rate `r` is scored against `θ·r`.
    pub fn new(dataset: &Dataset, model_for: impl Fn(&Alignment) -> M) -> Self {
        let mut names = Vec::with_capacity(dataset.n_loci());
        let mut engines = Vec::with_capacity(dataset.n_loci());
        for locus in dataset.loci() {
            names.push(locus.name().to_string());
            engines.push(
                FelsensteinPruner::new(locus.alignment(), model_for(locus.alignment()))
                    .with_relative_rate(locus.relative_rate()),
            );
        }
        MultiLocusEngine { names, engines }
    }

    /// Select the execution mode of every per-locus pruner.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.engines = self.engines.into_iter().map(|e| e.with_mode(mode)).collect();
        self
    }

    /// Select the combine kernel of every per-locus pruner.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.engines = self.engines.into_iter().map(|e| e.with_kernel(kernel)).collect();
        self
    }

    /// Number of loci.
    pub fn n_loci(&self) -> usize {
        self.engines.len()
    }

    /// The locus names, in dataset order.
    pub fn locus_names(&self) -> &[String] {
        &self.names
    }

    /// The per-locus pruners, in dataset order.
    pub fn locus_engines(&self) -> &[FelsensteinPruner<M>] {
        &self.engines
    }

    /// `ln P(D_l|G)` for each locus separately (the terms
    /// [`LikelihoodEngine::log_likelihood`] sums).
    pub fn log_likelihood_per_locus(&self, tree: &GeneTree) -> Result<Vec<f64>, PhyloError> {
        self.engines.iter().map(|e| e.log_likelihood(tree)).collect()
    }

    /// Drop every locus's memoised generator workspace.
    pub fn clear_cache(&self) {
        for engine in &self.engines {
            engine.clear_cache();
        }
    }
}

impl<M: SubstitutionModel> LikelihoodEngine for MultiLocusEngine<M> {
    /// `ln P(D|G) = Σ_l ln P(D_l|G)` — unlinked loci are independent given
    /// the genealogy's driving parameter.
    fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        let mut total = 0.0;
        for engine in &self.engines {
            total += engine.log_likelihood(tree)?;
        }
        Ok(total)
    }

    /// Batch the whole (locus × proposal) grid through **one** flattened
    /// backend dispatch: every locus's generator workspace is first served
    /// from its memo or rebuilt (the per-locus workspace shard), then all
    /// `n_loci × n_proposals` dirty-path rescores are mapped in a single
    /// [`Backend::map_grid`] call and the per-locus log likelihoods summed
    /// element-wise. Compared with walking loci serially (each with its own
    /// proposal-parallel inner batch), the flat grid keeps every worker busy
    /// even when loci are short and proposals are few — many small loci
    /// saturate the backend exactly the way many proposals do.
    ///
    /// Work counters aggregate across loci; the generator counts as cached
    /// only when every locus's workspace was served from its memo.
    fn log_likelihood_batch(
        &self,
        backend: Backend,
        generator: &GeneTree,
        proposals: &[TreeProposal<'_>],
    ) -> Result<BatchEvaluation, PhyloError> {
        // `with_mode(Parallel)` upgrades the backend exactly as the per-locus
        // engines would (see `FelsensteinPruner::log_likelihood_batch`); the
        // device backend is never silently replaced.
        let backend = match self.engines.first().map(FelsensteinPruner::mode) {
            Some(ExecutionMode::Parallel) if !backend.is_device() => Backend::Rayon,
            _ => backend,
        };

        // Phase 1 — shard acquisition: take every locus's memoised generator
        // workspace, rebuilding the stale or missing ones. Rebuilds run their
        // pattern chunks on `backend`; the common sampler case (unchanged
        // generator) is a cheap memo hit for every locus.
        let mut shards = Vec::with_capacity(self.engines.len());
        let mut nodes_full_pruned = 0;
        let mut generator_cache_hit = true;
        let mut matrix_cache_hits = 0;
        let mut matrix_cache_misses = 0;
        for engine in &self.engines {
            let taken = { engine.cache.lock().expect("likelihood cache poisoned").take() };
            let cache = match taken {
                Some(cache) if cache.tree == *generator => cache,
                stale => {
                    nodes_full_pruned += generator.n_internal();
                    generator_cache_hit = false;
                    let seed = stale.as_ref().map(|cache| &cache.workspace.edge_matrices);
                    let (workspace, hits, misses) =
                        engine.build_workspace_seeded(backend, generator, seed)?;
                    matrix_cache_hits += hits;
                    matrix_cache_misses += misses;
                    GeneratorCache { tree: generator.clone(), workspace }
                }
            };
            shards.push(cache);
        }
        let generator_log_likelihood =
            shards.iter().map(|cache| cache.workspace.log_likelihood).sum();

        // Phase 2 — one flattened dispatch over the (locus × proposal) grid.
        // The submission is profiled as the kernel launch it stands for: one
        // logical device thread per (proposal, pattern) pair across every
        // locus — the paper's one-thread-per-(proposal, site) mapping on
        // pattern-compressed data — so the device backend's occupancy and
        // latency-hiding accounting sees the (locus × proposal ×
        // pattern-chunk) thread count, not the closure-grid size. Serial and
        // rayon ignore the profile entirely.
        let n_proposals = proposals.len();
        let total_patterns: usize = self.engines.iter().map(FelsensteinPruner::n_patterns).sum();
        let profile = exec::GridProfile::pruning(
            n_proposals * total_patterns,
            generator.n_internal(),
            generator.n_nodes(),
            generator.n_tips(),
        );
        let shards_ref = &shards;
        let results = backend.map_grid_profiled(
            Some(&profile),
            self.engines.len(),
            n_proposals,
            |locus, p| {
                let proposal = &proposals[p];
                self.engines[locus].rescore_with_workspace(
                    &shards_ref[locus].workspace,
                    proposal.tree,
                    proposal.edited,
                )
            },
        );

        // Phase 3 — return every shard to its engine's memo, then reduce the
        // grid to per-proposal sums (unlinked loci: log likelihoods add).
        for (engine, cache) in self.engines.iter().zip(shards) {
            let mut slot = engine.cache.lock().expect("likelihood cache poisoned");
            *slot = Some(cache);
        }
        let mut total = BatchEvaluation {
            generator_log_likelihood,
            log_likelihoods: vec![0.0; n_proposals],
            nodes_repruned: 0,
            nodes_full_pruned,
            generator_cache_hit,
            matrix_cache_hits,
            matrix_cache_misses,
        };
        for (cell, result) in results.into_iter().enumerate() {
            let eval = result?;
            total.log_likelihoods[cell % n_proposals.max(1)] += eval.log_likelihood;
            total.nodes_repruned += eval.nodes_repruned;
            total.matrix_cache_hits += eval.matrix_cache_hits;
            total.matrix_cache_misses += eval.matrix_cache_misses;
        }
        Ok(total)
    }

    /// Commit the accepted move into every locus's cached workspace. Returns
    /// the total interior nodes recomputed across loci, or `None` if any
    /// locus had no cache to promote (the loci that did commit stay
    /// committed; the others rebuild on the next batch).
    fn commit_accepted(
        &self,
        generator: &GeneTree,
        accepted: &GeneTree,
        edited: &[NodeId],
    ) -> Result<Option<usize>, PhyloError> {
        let mut total = 0usize;
        let mut all = true;
        for engine in &self.engines {
            match engine.commit_to_cache(generator, accepted, edited)? {
                Some(nodes) => total += nodes,
                None => all = false,
            }
        }
        Ok(if all { Some(total) } else { None })
    }

    /// The per-locus caches move in lockstep (every batch rebuilds or serves
    /// all of them against the same generator, and commits promote all or
    /// roll the stragglers forward on the next batch), so the first locus
    /// speaks for the ensemble.
    fn cached_generator(&self) -> Option<GeneTree> {
        self.engines.first().and_then(LikelihoodEngine::cached_generator)
    }

    fn prime_cache(&self, tree: Option<&GeneTree>) -> Result<(), PhyloError> {
        for engine in &self.engines {
            engine.prime_cache(tree)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseFrequencies, Jc69, F81};
    use crate::tree::TreeBuilder;

    fn two_tip_tree(t1: f64, t2: f64, height: f64) -> GeneTree {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", height - t1);
        let y = b.add_tip("y", height - t2);
        b.join(x, y, height);
        b.build().unwrap()
    }

    #[test]
    fn two_tip_likelihood_matches_analytic_formula() {
        // Alignment: x = A, y = G, one site. lnL = ln(sum_z pi_z P_zA(t1) P_zG(t2)).
        let alignment = Alignment::from_letters(&[("x", "A"), ("y", "G")]).unwrap();
        let model = Jc69::new();
        let (t1, t2) = (0.3, 0.5);
        let tree = two_tip_tree(t1, t2, 0.5);
        let pruner = FelsensteinPruner::new(&alignment, model);
        let lnl = pruner.log_likelihood(&tree).unwrap();

        let model = Jc69::new();
        let expected: f64 = Nucleotide::ALL
            .iter()
            .map(|&z| {
                0.25 * model.transition_prob(z, Nucleotide::A, t1)
                    * model.transition_prob(z, Nucleotide::G, t2)
            })
            .sum::<f64>()
            .ln();
        assert!((lnl - expected).abs() < 1e-12, "{lnl} vs {expected}");
    }

    #[test]
    fn multi_site_likelihood_is_sum_of_site_terms() {
        let alignment = Alignment::from_letters(&[("x", "AG"), ("y", "GG")]).unwrap();
        let tree = two_tip_tree(0.2, 0.2, 0.2);
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let total = pruner.log_likelihood(&tree).unwrap();

        let single_a = Alignment::from_letters(&[("x", "A"), ("y", "G")]).unwrap();
        let single_b = Alignment::from_letters(&[("x", "G"), ("y", "G")]).unwrap();
        let la = FelsensteinPruner::new(&single_a, Jc69::new()).log_likelihood(&tree).unwrap();
        let lb = FelsensteinPruner::new(&single_b, Jc69::new()).log_likelihood(&tree).unwrap();
        assert!((total - (la + lb)).abs() < 1e-12);
    }

    #[test]
    fn pattern_compression_matches_per_site_recomputation() {
        // Repeat the same columns many times: compressed and uncompressed
        // answers must agree exactly (weights multiply the log term).
        let alignment = Alignment::from_letters(&[
            ("x", "AAAAGGGGAAAA"),
            ("y", "AAAAGGGGAAAT"),
            ("z", "AAAAGGGAAAAT"),
        ])
        .unwrap();
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        let z = b.add_tip("z", 0.0);
        let v = b.join(x, y, 0.1);
        b.join(v, z, 0.4);
        let tree = b.build().unwrap();

        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        assert!(pruner.n_patterns() < alignment.n_sites());
        let compressed = pruner.log_likelihood(&tree).unwrap();

        // Manual per-site sum using single-column alignments.
        let mut manual = 0.0;
        for site in 0..alignment.n_sites() {
            let col: Vec<(usize, String)> = alignment
                .sequences()
                .iter()
                .map(|s| s.base(site).to_char().to_string())
                .enumerate()
                .collect();
            let single = Alignment::from_letters(
                &col.iter()
                    .map(|(i, c)| (alignment.sequence(*i).name(), c.as_str()))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            manual += FelsensteinPruner::new(&single, Jc69::new()).log_likelihood(&tree).unwrap();
        }
        assert!((compressed - manual).abs() < 1e-10, "{compressed} vs {manual}");
    }

    #[test]
    fn parallel_mode_matches_serial_mode() {
        let alignment = Alignment::from_letters(&[
            ("a", "ACGTACGTAACCGGTTACGT"),
            ("b", "ACGTACGAAACCGGTTACGA"),
            ("c", "ACGAACGTAACCGGTAACGT"),
            ("d", "TCGTACGTAACCGGTTACGT"),
        ])
        .unwrap();
        let mut builder = TreeBuilder::new();
        let a = builder.add_tip("a", 0.0);
        let b = builder.add_tip("b", 0.0);
        let c = builder.add_tip("c", 0.0);
        let d = builder.add_tip("d", 0.0);
        let ab = builder.join(a, b, 0.05);
        let cd = builder.join(c, d, 0.08);
        builder.join(ab, cd, 0.2);
        let tree = builder.build().unwrap();

        let serial =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let parallel = serial.clone().with_mode(ExecutionMode::Parallel);
        assert_eq!(parallel.mode(), ExecutionMode::Parallel);
        let l1 = serial.log_likelihood(&tree).unwrap();
        let l2 = parallel.log_likelihood(&tree).unwrap();
        assert!((l1 - l2).abs() < 1e-12);
        assert!(l1.is_finite() && l1 < 0.0);
    }

    #[test]
    fn identical_sequences_prefer_short_trees() {
        let alignment =
            Alignment::from_letters(&[("x", "ACGTACGTAC"), ("y", "ACGTACGTAC")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let short = pruner.log_likelihood(&two_tip_tree(0.01, 0.01, 0.01)).unwrap();
        let long = pruner.log_likelihood(&two_tip_tree(1.0, 1.0, 1.0)).unwrap();
        assert!(short > long, "identical sequences should favour shorter trees: {short} vs {long}");
    }

    #[test]
    fn divergent_sequences_prefer_longer_trees() {
        let alignment =
            Alignment::from_letters(&[("x", "ACGTACGTAC"), ("y", "GTACGTACGT")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let short = pruner.log_likelihood(&two_tip_tree(0.01, 0.01, 0.01)).unwrap();
        let long = pruner.log_likelihood(&two_tip_tree(1.0, 1.0, 1.0)).unwrap();
        assert!(long > short, "divergent sequences should favour longer trees");
    }

    #[test]
    fn base_frequency_informed_model_beats_mismatched_frequencies() {
        // AT-rich data: an F81 model with matching frequencies should assign
        // higher likelihood than one with complementary (GC-rich) frequencies.
        let alignment =
            Alignment::from_letters(&[("x", "AATTATAATT"), ("y", "AATTATATTT")]).unwrap();
        let tree = two_tip_tree(0.1, 0.1, 0.1);
        let matched =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()))
                .log_likelihood(&tree)
                .unwrap();
        let mismatched = FelsensteinPruner::new(
            &alignment,
            F81::normalized(BaseFrequencies::new(0.05, 0.45, 0.45, 0.05).unwrap()),
        )
        .log_likelihood(&tree)
        .unwrap();
        assert!(matched > mismatched);
    }

    #[test]
    fn errors_are_reported_for_mismatched_trees() {
        let alignment = Alignment::from_letters(&[("x", "ACGT"), ("y", "ACGA")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());

        // Tip label not in the alignment.
        let mut b = TreeBuilder::new();
        let p = b.add_tip("x", 0.0);
        let q = b.add_tip("unknown", 0.0);
        b.join(p, q, 1.0);
        let bad_labels = b.build().unwrap();
        assert!(pruner.log_likelihood(&bad_labels).is_err());
        assert!(pruner.build_workspace(Backend::Serial, &bad_labels).is_err());

        // Wrong number of tips.
        let mut b = TreeBuilder::new();
        let p = b.add_tip("x", 0.0);
        let q = b.add_tip("y", 0.0);
        let r = b.add_tip("z", 0.0);
        let pq = b.join(p, q, 1.0);
        b.join(pq, r, 2.0);
        let too_many = b.build().unwrap();
        assert!(pruner.log_likelihood(&too_many).is_err());
        assert!(pruner.build_workspace(Backend::Serial, &too_many).is_err());
    }

    #[test]
    fn deep_trees_do_not_underflow() {
        // 16 identical long sequences on a tall caterpillar tree: the naive
        // product of per-node terms would underflow; the log-domain result
        // must stay finite.
        let letters = "ACGT".repeat(50);
        let names: Vec<String> = (0..16).map(|i| format!("s{i}")).collect();
        let pairs: Vec<(&str, &str)> =
            names.iter().map(|n| (n.as_str(), letters.as_str())).collect();
        let alignment = Alignment::from_letters(&pairs).unwrap();

        let mut b = TreeBuilder::new();
        let tips: Vec<_> = names.iter().map(|n| b.add_tip(n.clone(), 0.0)).collect();
        let mut acc = tips[0];
        for (i, &tip) in tips.iter().enumerate().skip(1) {
            acc = b.join(acc, tip, 5.0 * i as f64);
        }
        let tree = b.build().unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let lnl = pruner.log_likelihood(&tree).unwrap();
        assert!(lnl.is_finite());
        assert!(lnl < 0.0);

        // The workspace path applies the same per-pattern rescaling and must
        // agree with the reference result.
        let ws = pruner.build_workspace(Backend::Serial, &tree).unwrap();
        assert!((ws.log_likelihood() - lnl).abs() < 1e-10, "{} vs {lnl}", ws.log_likelihood());
    }

    #[test]
    fn work_estimate_scales_with_patterns_and_nodes() {
        let alignment = Alignment::from_letters(&[("x", "ACGTACGT"), ("y", "ACGAACGA")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let tree = two_tip_tree(0.1, 0.1, 0.1);
        let w = pruner.work_per_evaluation(&tree);
        assert_eq!(w, (pruner.n_patterns() as u64) * 64);
        assert_eq!(pruner.n_sites(), 8);
        assert_eq!(pruner.n_sequences(), 2);
        assert_eq!(pruner.model().name(), "JC69");
    }

    // ------------------------------------------------------------------
    // Batched engine tests.
    // ------------------------------------------------------------------

    /// A deterministic five-tip alignment/tree fixture for batch tests.
    fn five_tip_fixture() -> (Alignment, GeneTree) {
        let alignment = Alignment::from_letters(&[
            ("t0", "ACGTACGTAACCGGTTACGTTGCA"),
            ("t1", "ACGTACGAAACCGGTTACGATGCA"),
            ("t2", "ACGAACGTAACCGGTAACGTTGCC"),
            ("t3", "TCGTACGTAACCGGTTACGTAGCA"),
            ("t4", "TCGTACGTTACCGGTTACGTAGGA"),
        ])
        .unwrap();
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let t4 = b.add_tip("t4", 0.0);
        let v = b.join(t0, t1, 0.15);
        let u = b.join(v, t2, 0.3);
        let w = b.join(t3, t4, 0.2);
        b.join(u, w, 0.5);
        (alignment, b.build().unwrap())
    }

    /// Perturb the neighborhood of `target` in place the way the proposal
    /// kernel does (retime the target and its parent), returning the edited
    /// node list.
    fn perturb(tree: &GeneTree, target: NodeId, delta: f64) -> (GeneTree, Vec<NodeId>) {
        let mut out = tree.clone();
        let parent = tree.parent(target).expect("non-root target");
        out.set_time(target, tree.time(target) + delta);
        out.set_time(parent, tree.time(parent) + delta);
        out.validate().unwrap();
        (out, vec![target, parent])
    }

    #[test]
    fn workspace_total_matches_reference_path() {
        let (alignment, tree) = five_tip_fixture();
        let pruner =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let reference = pruner.log_likelihood(&tree).unwrap();
        for backend in [Backend::Serial, Backend::Rayon] {
            let ws = pruner.build_workspace(backend, &tree).unwrap();
            assert!(
                (ws.log_likelihood() - reference).abs() < 1e-10,
                "{} vs {reference}",
                ws.log_likelihood()
            );
            assert_eq!(ws.n_nodes(), tree.n_nodes());
            assert_eq!(ws.n_patterns(), pruner.n_patterns());
            assert!(ws.n_chunks() >= 1);
        }
    }

    #[test]
    fn batch_matches_naive_per_proposal_scoring() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());

        // Three proposals editing different neighborhoods.
        let targets: Vec<NodeId> = tree.non_root_internal_nodes();
        let edits: Vec<(GeneTree, Vec<NodeId>)> = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| perturb(&tree, t, 0.01 * (i as f64 + 1.0)))
            .collect();
        let proposals: Vec<TreeProposal<'_>> =
            edits.iter().map(|(t, e)| TreeProposal { tree: t, edited: e }).collect();

        let eval = pruner.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert_eq!(eval.log_likelihoods.len(), proposals.len());
        assert!(
            (eval.generator_log_likelihood - pruner.log_likelihood(&tree).unwrap()).abs() < 1e-10
        );
        for ((proposal, _), &batched) in edits.iter().zip(&eval.log_likelihoods) {
            let naive = pruner.log_likelihood(proposal).unwrap();
            assert!((batched - naive).abs() < 1e-10, "batched {batched} vs naive {naive}");
        }
        // Every proposal reprunes strictly fewer nodes than a full prune.
        assert!(eval.nodes_repruned < tree.n_internal() * proposals.len() + 1);
        assert!(eval.nodes_repruned > 0);
    }

    #[test]
    fn dirty_path_reprunes_only_the_path_to_the_root() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let ws = pruner.build_workspace(Backend::Serial, &tree).unwrap();

        for &target in &tree.non_root_internal_nodes() {
            let (proposal, edited) = perturb(&tree, target, 0.005);
            let eval = pruner.rescore_with_workspace(&ws, &proposal, &edited).unwrap();
            // The dirty set is the two edited nodes plus the ancestors of the
            // parent: exactly the path to the root.
            let parent = tree.parent(target).unwrap();
            let mut expected = 2;
            let mut cursor = tree.parent(parent);
            while let Some(node) = cursor {
                expected += 1;
                cursor = tree.parent(node);
            }
            assert_eq!(eval.nodes_repruned, expected, "target {target}");
            let naive = pruner.log_likelihood(&proposal).unwrap();
            assert!((eval.log_likelihood - naive).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_edit_reuses_the_cached_total() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let ws = pruner.build_workspace(Backend::Serial, &tree).unwrap();
        let eval = pruner.rescore_with_workspace(&ws, &tree, &[]).unwrap();
        assert_eq!(eval.nodes_repruned, 0);
        assert_eq!(eval.log_likelihood, ws.log_likelihood());
    }

    #[test]
    fn generator_cache_hits_on_repeated_batches() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let target = tree.non_root_internal_nodes()[0];
        let (proposal, edited) = perturb(&tree, target, 0.01);
        let proposals = [TreeProposal { tree: &proposal, edited: &edited }];

        let first = pruner.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!(!first.generator_cache_hit);
        assert_eq!(first.nodes_full_pruned, tree.n_internal());

        let second = pruner.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!(second.generator_cache_hit);
        assert_eq!(second.nodes_full_pruned, 0);
        assert_eq!(first.log_likelihoods, second.log_likelihoods);
        assert_eq!(first.generator_log_likelihood, second.generator_log_likelihood);

        // A different generator invalidates the cache.
        let third = pruner.log_likelihood_batch(Backend::Serial, &proposal, &[]).unwrap();
        assert!(!third.generator_cache_hit);

        pruner.clear_cache();
        let fourth = pruner.log_likelihood_batch(Backend::Serial, &proposal, &[]).unwrap();
        assert!(!fourth.generator_cache_hit);
    }

    #[test]
    fn rayon_and_serial_batches_are_identical() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let edits: Vec<(GeneTree, Vec<NodeId>)> =
            tree.non_root_internal_nodes().iter().map(|&t| perturb(&tree, t, 0.02)).collect();
        let proposals: Vec<TreeProposal<'_>> =
            edits.iter().map(|(t, e)| TreeProposal { tree: t, edited: e }).collect();

        let serial_engine = pruner.clone();
        let serial =
            serial_engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        let rayon_engine = pruner.clone();
        let parallel =
            rayon_engine.log_likelihood_batch(Backend::Rayon, &tree, &proposals).unwrap();
        assert_eq!(serial.log_likelihoods, parallel.log_likelihoods);
        assert_eq!(serial.generator_log_likelihood, parallel.generator_log_likelihood);
        assert_eq!(serial.nodes_repruned, parallel.nodes_repruned);
    }

    #[test]
    fn batch_rejects_mismatched_arenas() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let ws = pruner.build_workspace(Backend::Serial, &tree).unwrap();
        let small = two_tip_tree(0.1, 0.1, 0.2);
        assert!(pruner.rescore_with_workspace(&ws, &small, &[0]).is_err());
    }

    #[test]
    fn naive_default_batch_agrees_with_the_engine_override() {
        /// A wrapper that only exposes the reference path, so the trait's
        /// default batch implementation is exercised.
        struct NaiveOnly(FelsensteinPruner<Jc69>);

        impl LikelihoodEngine for NaiveOnly {
            fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
                self.0.log_likelihood(tree)
            }
        }

        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let naive = NaiveOnly(FelsensteinPruner::new(&alignment, Jc69::new()));
        let target = tree.non_root_internal_nodes()[1];
        let (proposal, edited) = perturb(&tree, target, 0.03);
        let proposals = [TreeProposal { tree: &proposal, edited: &edited }];

        let fast = pruner.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        let slow = naive.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!((fast.generator_log_likelihood - slow.generator_log_likelihood).abs() < 1e-10);
        assert!((fast.log_likelihoods[0] - slow.log_likelihoods[0]).abs() < 1e-10);
        // The naive path reprunes everything; the engine override does not.
        assert_eq!(slow.nodes_repruned, tree.n_internal());
        assert!(fast.nodes_repruned < slow.nodes_repruned);
        assert_eq!(BatchEvaluation::naive_node_cost(tree.n_internal(), 1), 2 * tree.n_internal());
        // The default commit hook is a no-op.
        assert!(!slow.generator_cache_hit);
        assert_eq!(
            naive.commit_accepted(&tree, proposals[0].tree, proposals[0].edited).unwrap(),
            None
        );
    }

    // ------------------------------------------------------------------
    // Commit-on-accept.
    // ------------------------------------------------------------------

    #[test]
    fn commit_promotes_the_accepted_tree_into_the_cache() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let target = tree.non_root_internal_nodes()[0];
        let (accepted, edited) = perturb(&tree, target, 0.02);
        let proposals = [TreeProposal { tree: &accepted, edited: &edited }];

        // Warm the cache against the generator, then commit the accepted move.
        let first = pruner.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        let committed = pruner.commit_to_cache(&tree, &accepted, &edited).unwrap();
        assert!(committed.is_some_and(|n| n > 0 && n < tree.n_internal()));

        // The next batch against the accepted tree is served from the
        // promoted cache (no full prune) and is bit-identical to a cold
        // rebuild of the same tree.
        let promoted = pruner.log_likelihood_batch(Backend::Serial, &accepted, &[]).unwrap();
        assert!(promoted.generator_cache_hit);
        assert_eq!(promoted.nodes_full_pruned, 0);
        assert_eq!(promoted.generator_log_likelihood, first.log_likelihoods[0]);

        let cold = FelsensteinPruner::new(&alignment, Jc69::new());
        let rebuilt = cold.log_likelihood_batch(Backend::Serial, &accepted, &[]).unwrap();
        assert_eq!(promoted.generator_log_likelihood, rebuilt.generator_log_likelihood);
        // Committed partials must keep serving correct dirty-path rescoring.
        let next_target = accepted.non_root_internal_nodes()[1];
        let (next, next_edited) = perturb(&accepted, next_target, -0.004);
        let next_proposals = [TreeProposal { tree: &next, edited: &next_edited }];
        let via_cache =
            pruner.log_likelihood_batch(Backend::Serial, &accepted, &next_proposals).unwrap();
        let naive = cold.log_likelihood(&next).unwrap();
        assert!((via_cache.log_likelihoods[0] - naive).abs() < 1e-10);
    }

    #[test]
    fn commit_without_a_matching_cache_is_a_no_op() {
        let (alignment, tree) = five_tip_fixture();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let target = tree.non_root_internal_nodes()[0];
        let (accepted, edited) = perturb(&tree, target, 0.02);
        // Cold engine: nothing to promote.
        assert_eq!(pruner.commit_to_cache(&tree, &accepted, &edited).unwrap(), None);
        // Cache keyed to a different generator: nothing to promote.
        pruner.log_likelihood_batch(Backend::Serial, &accepted, &[]).unwrap();
        assert_eq!(pruner.commit_to_cache(&tree, &accepted, &edited).unwrap(), None);
        // Empty edit commits trivially (re-keys only).
        assert_eq!(pruner.commit_to_cache(&accepted, &accepted, &[]).unwrap(), Some(0));
        // Arena mismatch is an error.
        let small = two_tip_tree(0.1, 0.1, 0.2);
        assert!(pruner.commit_to_cache(&accepted, &small, &[0]).is_err());
    }

    #[test]
    fn prime_cache_reproduces_the_warm_state_exactly() {
        // The checkpoint/resume invariant: an engine primed with the tree
        // its cache was keyed to behaves bit-identically — results AND
        // cache counters — to the engine that reached that state by
        // batching and committing.
        let (alignment, tree) = five_tip_fixture();
        let warm = FelsensteinPruner::new(&alignment, Jc69::new());
        let target = tree.non_root_internal_nodes()[0];
        let (accepted, edited) = perturb(&tree, target, 0.02);
        let proposals = [TreeProposal { tree: &accepted, edited: &edited }];
        warm.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        warm.commit_to_cache(&tree, &accepted, &edited).unwrap();
        assert_eq!(warm.cached_generator().as_ref(), Some(&accepted));

        // "Resume": a cold engine primed with the checkpointed cached tree.
        let resumed = FelsensteinPruner::new(&alignment, Jc69::new());
        resumed.prime_cache(Some(&accepted)).unwrap();
        assert_eq!(resumed.cached_generator().as_ref(), Some(&accepted));

        // The next batch — same generator, new proposals — must agree on
        // every result and every counter (hits, misses, reprune counts).
        let next_target = accepted.non_root_internal_nodes()[1];
        let (next, next_edited) = perturb(&accepted, next_target, -0.004);
        let next_proposals = [TreeProposal { tree: &next, edited: &next_edited }];
        let from_warm =
            warm.log_likelihood_batch(Backend::Serial, &accepted, &next_proposals).unwrap();
        let from_resumed =
            resumed.log_likelihood_batch(Backend::Serial, &accepted, &next_proposals).unwrap();
        assert_eq!(from_warm, from_resumed);

        // A *stale* cache (keyed to the pre-swap tree, as after a replica
        // exchange) must also be reproducible: counters of the seeded
        // rebuild agree too.
        let stale_warm = FelsensteinPruner::new(&alignment, Jc69::new());
        stale_warm.log_likelihood_batch(Backend::Serial, &accepted, &[]).unwrap();
        let stale_resumed = FelsensteinPruner::new(&alignment, Jc69::new());
        stale_resumed.prime_cache(Some(&accepted)).unwrap();
        let w = stale_warm.log_likelihood_batch(Backend::Serial, &next, &[]).unwrap();
        let r = stale_resumed.log_likelihood_batch(Backend::Serial, &next, &[]).unwrap();
        assert_eq!(w, r);

        // Priming with None clears.
        resumed.prime_cache(None).unwrap();
        assert_eq!(resumed.cached_generator(), None);
    }

    // ------------------------------------------------------------------
    // Kernel selection (scalar versus explicit SIMD).
    // ------------------------------------------------------------------

    /// SplitMix64, hand-rolled so these tests need no RNG dependency.
    struct TestRng(u64);

    impl TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A random alignment and a random coalescent-shaped tree over it:
    /// random join order, strictly increasing node heights.
    fn random_fixture(seed: u64, n_tips: usize, n_sites: usize) -> (Alignment, GeneTree) {
        let mut rng = TestRng(seed);
        let names: Vec<String> = (0..n_tips).map(|i| format!("s{i}")).collect();
        let rows: Vec<String> = (0..n_tips)
            .map(|_| {
                (0..n_sites).map(|_| ['A', 'C', 'G', 'T'][(rng.next_u64() % 4) as usize]).collect()
            })
            .collect();
        let pairs: Vec<(&str, &str)> =
            names.iter().zip(&rows).map(|(n, r)| (n.as_str(), r.as_str())).collect();
        let alignment = Alignment::from_letters(&pairs).unwrap();

        let mut b = TreeBuilder::new();
        let mut active: Vec<NodeId> = names.iter().map(|n| b.add_tip(n.clone(), 0.0)).collect();
        let mut height = 0.0;
        while active.len() > 1 {
            let i = (rng.next_u64() as usize) % active.len();
            let x = active.swap_remove(i);
            let j = (rng.next_u64() as usize) % active.len();
            let y = active.swap_remove(j);
            height += 0.01 + 0.2 * rng.next_f64();
            active.push(b.join(x, y, height));
        }
        (alignment, b.build().unwrap())
    }

    /// `|a - b|` within `tol` relative to the larger magnitude.
    fn close_rel(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn kernel_names_round_trip_and_effective_fallback() {
        for kernel in [Kernel::Scalar, Kernel::Simd, Kernel::Auto] {
            assert_eq!(kernel.to_string().parse::<Kernel>().unwrap(), kernel);
        }
        assert_eq!("SIMD".parse::<Kernel>().unwrap(), Kernel::Simd);
        assert_eq!("Auto".parse::<Kernel>().unwrap(), Kernel::Auto);
        assert!("avx512".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Auto);
        assert_eq!(Kernel::Scalar.variant(), KernelVariant::Scalar);
        if Kernel::simd_compiled() {
            assert_eq!(Kernel::Scalar.effective(), Kernel::Scalar);
            assert_eq!(Kernel::Simd.effective(), Kernel::Simd);
            assert_eq!(Kernel::Auto.effective(), Kernel::Auto);
            assert_eq!(Kernel::Simd.variant(), KernelVariant::Simd);
            // Auto resolves by CPU probe: either four-lane variant is legal,
            // scalar is not (the feature is compiled in).
            assert_ne!(Kernel::Auto.variant(), KernelVariant::Scalar);
        } else {
            // Runtime fallback: every request degrades to the scalar kernel.
            for kernel in [Kernel::Scalar, Kernel::Simd, Kernel::Auto] {
                assert_eq!(kernel.effective(), Kernel::Scalar);
                assert_eq!(kernel.variant(), KernelVariant::Scalar);
            }
        }
        assert_eq!(Kernel::simd_compiled(), cfg!(feature = "simd"));
        assert_eq!(KernelVariant::SimdFma.to_string(), "simd+avx2+fma");
    }

    #[test]
    fn simd_kernel_matches_scalar_kernel_on_random_trees() {
        // Without the `simd` feature this degenerates to scalar-vs-scalar
        // (the runtime fallback), which must hold trivially; with the feature
        // it is the 1e-12 bit-tolerance contract of the explicit kernel.
        for seed in 1..=8u64 {
            let n_tips = 4 + (seed as usize % 9);
            let (alignment, tree) = random_fixture(seed, n_tips, 257);
            let scalar =
                FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
            let simd = scalar.clone().with_kernel(Kernel::Simd);
            assert_eq!(simd.kernel(), Kernel::Simd);

            // Full workspace builds (every interior node through the kernel).
            let ws_scalar = scalar.build_workspace(Backend::Serial, &tree).unwrap();
            let ws_simd = simd.build_workspace(Backend::Serial, &tree).unwrap();
            assert!(
                close_rel(ws_scalar.log_likelihood(), ws_simd.log_likelihood(), 1e-12),
                "seed {seed}: {} vs {}",
                ws_scalar.log_likelihood(),
                ws_simd.log_likelihood()
            );

            // Batched dirty-path rescoring of perturbed proposals.
            let edits: Vec<(GeneTree, Vec<NodeId>)> = tree
                .non_root_internal_nodes()
                .iter()
                .enumerate()
                .map(|(i, &t)| perturb(&tree, t, 0.002 * (i as f64 + 1.0)))
                .collect();
            let proposals: Vec<TreeProposal<'_>> =
                edits.iter().map(|(t, e)| TreeProposal { tree: t, edited: e }).collect();
            let eval_scalar =
                scalar.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
            let eval_simd = simd.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
            assert!(close_rel(
                eval_scalar.generator_log_likelihood,
                eval_simd.generator_log_likelihood,
                1e-12
            ));
            for (a, b) in eval_scalar.log_likelihoods.iter().zip(&eval_simd.log_likelihoods) {
                assert!(close_rel(*a, *b, 1e-12), "seed {seed}: {a} vs {b}");
            }
            // The kernels differ in arithmetic only; the caching behaviour
            // (what was repruned) is identical.
            assert_eq!(eval_scalar.nodes_repruned, eval_simd.nodes_repruned);
        }
    }

    #[test]
    fn simd_kernel_matches_scalar_through_the_rescale_path() {
        // A tall caterpillar over identical long sequences drives partials
        // below the rescale threshold, exercising the underflow branch of
        // both kernels.
        let letters = "ACGT".repeat(60);
        let names: Vec<String> = (0..14).map(|i| format!("s{i}")).collect();
        let pairs: Vec<(&str, &str)> =
            names.iter().map(|n| (n.as_str(), letters.as_str())).collect();
        let alignment = Alignment::from_letters(&pairs).unwrap();
        let mut b = TreeBuilder::new();
        let tips: Vec<_> = names.iter().map(|n| b.add_tip(n.clone(), 0.0)).collect();
        let mut acc = tips[0];
        for (i, &tip) in tips.iter().enumerate().skip(1) {
            acc = b.join(acc, tip, 6.0 * i as f64);
        }
        let tree = b.build().unwrap();

        let scalar = FelsensteinPruner::new(&alignment, Jc69::new());
        let simd = scalar.clone().with_kernel(Kernel::Simd);
        let l_scalar = scalar.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
        let l_simd = simd.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
        assert!(l_scalar.is_finite() && l_scalar < 0.0);
        assert!(close_rel(l_scalar, l_simd, 1e-12), "{l_scalar} vs {l_simd}");
    }

    #[test]
    fn commit_on_accept_preserves_kernel_consistency() {
        // Commit-on-accept recomputes dirty paths with the engine's own
        // kernel: a committed cache must keep matching a cold rebuild under
        // the same kernel selection.
        let (alignment, tree) = five_tip_fixture();
        let engine = FelsensteinPruner::new(&alignment, Jc69::new()).with_kernel(Kernel::Simd);
        let target = tree.non_root_internal_nodes()[0];
        let (accepted, edited) = perturb(&tree, target, 0.015);
        let proposals = [TreeProposal { tree: &accepted, edited: &edited }];
        engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        engine.commit_to_cache(&tree, &accepted, &edited).unwrap().unwrap();
        let promoted = engine.log_likelihood_batch(Backend::Serial, &accepted, &[]).unwrap();
        assert!(promoted.generator_cache_hit);

        let cold = FelsensteinPruner::new(&alignment, Jc69::new()).with_kernel(Kernel::Simd);
        let rebuilt = cold.log_likelihood_batch(Backend::Serial, &accepted, &[]).unwrap();
        assert_eq!(promoted.generator_log_likelihood, rebuilt.generator_log_likelihood);
    }

    #[test]
    fn auto_kernel_matches_scalar_kernel_on_random_trees() {
        // The runtime-dispatched kernel must stay within the same 1e-12
        // contract as the pinned SIMD kernel, whatever variant the CPU probe
        // selected (on a non-AVX2 host this exercises the four-lane
        // fallback; without the feature it is scalar-vs-scalar).
        for seed in 11..=16u64 {
            let n_tips = 5 + (seed as usize % 7);
            let (alignment, tree) = random_fixture(seed, n_tips, 301);
            let scalar =
                FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()))
                    .with_kernel(Kernel::Scalar);
            let auto = scalar.clone().with_kernel(Kernel::Auto);

            let l_scalar = scalar.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
            let l_auto = auto.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
            assert!(close_rel(l_scalar, l_auto, 1e-12), "seed {seed}: {l_scalar} vs {l_auto}");

            let edits: Vec<(GeneTree, Vec<NodeId>)> = tree
                .non_root_internal_nodes()
                .iter()
                .enumerate()
                .map(|(i, &t)| perturb(&tree, t, 0.003 * (i as f64 + 1.0)))
                .collect();
            let proposals: Vec<TreeProposal<'_>> =
                edits.iter().map(|(t, e)| TreeProposal { tree: t, edited: e }).collect();
            let eval_scalar =
                scalar.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
            let eval_auto = auto.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
            assert!(close_rel(
                eval_scalar.generator_log_likelihood,
                eval_auto.generator_log_likelihood,
                1e-12
            ));
            for (a, b) in eval_scalar.log_likelihoods.iter().zip(&eval_auto.log_likelihoods) {
                assert!(close_rel(*a, *b, 1e-12), "seed {seed}: {a} vs {b}");
            }
            assert_eq!(eval_scalar.nodes_repruned, eval_auto.nodes_repruned);
        }
    }

    #[test]
    fn auto_kernel_matches_scalar_through_the_rescale_path() {
        // Same underflow fixture as the pinned-SIMD rescale test: a tall
        // caterpillar drives partials through the rescale branch of whatever
        // variant the probe selected.
        let letters = "ACGT".repeat(60);
        let names: Vec<String> = (0..14).map(|i| format!("s{i}")).collect();
        let pairs: Vec<(&str, &str)> =
            names.iter().map(|n| (n.as_str(), letters.as_str())).collect();
        let alignment = Alignment::from_letters(&pairs).unwrap();
        let mut b = TreeBuilder::new();
        let tips: Vec<_> = names.iter().map(|n| b.add_tip(n.clone(), 0.0)).collect();
        let mut acc = tips[0];
        for (i, &tip) in tips.iter().enumerate().skip(1) {
            acc = b.join(acc, tip, 6.0 * i as f64);
        }
        let tree = b.build().unwrap();

        let scalar = FelsensteinPruner::new(&alignment, Jc69::new()).with_kernel(Kernel::Scalar);
        let auto = scalar.clone().with_kernel(Kernel::Auto);
        let l_scalar = scalar.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
        let l_auto = auto.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
        assert!(l_scalar.is_finite() && l_scalar < 0.0);
        assert!(close_rel(l_scalar, l_auto, 1e-12), "{l_scalar} vs {l_auto}");
    }

    // ------------------------------------------------------------------
    // Edge transition-matrix memoisation.
    // ------------------------------------------------------------------

    #[test]
    fn memoised_matrices_stay_bit_identical_over_accept_reject_cycles() {
        // Drive the engine the way a sampler does — propose, score, commit
        // on accept, discard on reject — at a non-unit relative rate, and
        // require the memoised generator likelihood to stay *bit-identical*
        // to a cold engine rebuilding the same tree from nothing. Any stale
        // or mis-keyed cached matrix breaks exact equality immediately.
        let (alignment, start) = random_fixture(97, 9, 222);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()))
                .with_relative_rate(1.7);
        let mut rng = TestRng(0xFEED);
        let mut tree = start;
        let mut total_hits = 0usize;
        for round in 0..24 {
            let targets = tree.non_root_internal_nodes();
            let target = targets[(rng.next_u64() as usize) % targets.len()];
            let delta = 0.004 + 0.01 * rng.next_f64();
            let (proposal, edited) = perturb(&tree, target, delta);
            let proposals = [TreeProposal { tree: &proposal, edited: &edited }];
            let eval = engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
            total_hits += eval.matrix_cache_hits;

            // Memoised generator score == cold full rebuild, bit for bit.
            let cold =
                FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()))
                    .with_relative_rate(1.7);
            let fresh = cold.build_workspace(Backend::Serial, &tree).unwrap().log_likelihood();
            assert_eq!(
                eval.generator_log_likelihood, fresh,
                "round {round}: memoised generator drifted from a fresh build"
            );
            // Proposal scores stay within the kernel contract of the naive
            // reference path (a different summation order, so not bitwise).
            let naive = cold.log_likelihood(&proposal).unwrap();
            assert!(close_rel(eval.log_likelihoods[0], naive, 1e-10), "round {round}");

            if rng.next_u64().is_multiple_of(2) {
                engine.commit_to_cache(&tree, &proposal, &edited).unwrap();
                tree = proposal;
            }
        }
        assert!(total_hits > 0, "accept/reject cycling never hit the edge-matrix cache");
    }

    #[test]
    fn matrix_cache_counters_track_hits_and_misses() {
        let (alignment, tree) = random_fixture(41, 8, 180);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let target = tree.non_root_internal_nodes()[0];
        let (proposal, edited) = perturb(&tree, target, 0.02);
        let proposals = [TreeProposal { tree: &proposal, edited: &edited }];
        let n_edges = tree.n_nodes() - 1;

        // Cold build: every edge matrix is a miss; the workspace cache ends
        // up holding one entry per non-root node.
        let first = engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!(first.matrix_cache_misses >= n_edges);

        // Steady state: the generator workspace is memoised, and dirty-path
        // rescoring serves the unchanged edges of the dirty path from the
        // cache — strictly positive hits.
        let second = engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!(second.generator_cache_hit);
        assert!(second.matrix_cache_hits > 0, "dirty-path rescore must hit the cache");
        // The retimed target's incident edges changed length: some misses.
        assert!(second.matrix_cache_misses > 0);

        // A structurally different generator (every branch length differs)
        // invalidates every key: the seeded rebuild scores zero hits and
        // recomputes all edges.
        let (_, other) = random_fixture(42, 8, 180);
        let replaced = engine.log_likelihood_batch(Backend::Serial, &other, &[]).unwrap();
        assert!(!replaced.generator_cache_hit);
        assert_eq!(replaced.matrix_cache_hits, 0, "no key can survive a full retiming");
        assert_eq!(replaced.matrix_cache_misses, n_edges);

        // Proposals against the replacement generator hit its fresh cache.
        let (next, next_edited) = perturb(&other, other.non_root_internal_nodes()[0], 0.02);
        let next_proposals = [TreeProposal { tree: &next, edited: &next_edited }];
        let warm = engine.log_likelihood_batch(Backend::Serial, &other, &next_proposals).unwrap();
        assert!(warm.generator_cache_hit);
        assert!(warm.matrix_cache_hits > 0);
    }

    #[test]
    fn workspace_edge_cache_is_populated_by_builds() {
        let (alignment, tree) = five_tip_fixture();
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let ws = engine.build_workspace(Backend::Serial, &tree).unwrap();
        assert_eq!(ws.edge_matrices().n_nodes(), tree.n_nodes());
        assert_eq!(ws.edge_matrices().n_entries(), tree.n_nodes() - 1);
        let empty = EdgeMatrixCache::with_nodes(4);
        assert_eq!(empty.n_entries(), 0);
        assert_eq!(empty.n_nodes(), 4);
    }

    // ------------------------------------------------------------------
    // Multi-locus engine.
    // ------------------------------------------------------------------

    use crate::dataset::{Dataset, Locus};

    fn three_locus_fixture() -> (Dataset, GeneTree) {
        let (first, tree) = five_tip_fixture();
        let second = Alignment::from_letters(&[
            ("t0", "GGTTAACCGGTTAACC"),
            ("t1", "GGTTAACCGGTAAACC"),
            ("t2", "GGTAAACCGGTTAACC"),
            ("t3", "GGTTAACCGGTTAACG"),
            ("t4", "CGTTAACCGGTTAACC"),
        ])
        .unwrap();
        let third = Alignment::from_letters(&[
            ("t0", "ATATATAT"),
            ("t1", "ATATATAA"),
            ("t2", "ATATATAT"),
            ("t3", "ATGTATAT"),
            ("t4", "ATATCTAT"),
        ])
        .unwrap();
        let dataset = Dataset::new(vec![
            Locus::new("l0", first),
            Locus::new("l1", second),
            Locus::new("l2", third),
        ])
        .unwrap();
        (dataset, tree)
    }

    #[test]
    fn multi_locus_log_likelihood_is_the_sum_of_per_locus_terms() {
        let (dataset, tree) = three_locus_fixture();
        let engine = MultiLocusEngine::new(&dataset, |a| F81::normalized(a.base_frequencies()));
        assert_eq!(engine.n_loci(), 3);
        assert_eq!(engine.locus_names(), &["l0", "l1", "l2"]);
        let total = engine.log_likelihood(&tree).unwrap();
        let per_locus = engine.log_likelihood_per_locus(&tree).unwrap();
        let manual: f64 = dataset
            .loci()
            .iter()
            .map(|locus| {
                FelsensteinPruner::new(
                    locus.alignment(),
                    F81::normalized(locus.alignment().base_frequencies()),
                )
                .log_likelihood(&tree)
                .unwrap()
            })
            .sum();
        assert!((total - manual).abs() < 1e-10, "{total} vs {manual}");
        assert!((total - per_locus.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn multi_locus_batch_sums_per_locus_batches_and_counters() {
        let (dataset, tree) = three_locus_fixture();
        let engine = MultiLocusEngine::new(&dataset, |_| Jc69::new());
        let edits: Vec<(GeneTree, Vec<NodeId>)> =
            tree.non_root_internal_nodes().iter().map(|&t| perturb(&tree, t, 0.015)).collect();
        let proposals: Vec<TreeProposal<'_>> =
            edits.iter().map(|(t, e)| TreeProposal { tree: t, edited: e }).collect();

        let eval = engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!(!eval.generator_cache_hit);
        assert_eq!(eval.nodes_full_pruned, 3 * tree.n_internal());
        for ((proposal, _), &batched) in edits.iter().zip(&eval.log_likelihoods) {
            let manual: f64 = dataset
                .loci()
                .iter()
                .map(|locus| {
                    FelsensteinPruner::new(locus.alignment(), Jc69::new())
                        .log_likelihood(proposal)
                        .unwrap()
                })
                .sum();
            assert!((batched - manual).abs() < 1e-10, "{batched} vs {manual}");
        }

        // Second round: every locus workspace is memoised.
        let again = engine.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert!(again.generator_cache_hit);
        assert_eq!(again.nodes_full_pruned, 0);
        assert_eq!(again.log_likelihoods, eval.log_likelihoods);

        // Commit an accepted proposal across all loci and score against it.
        let (accepted, edited) = (&edits[0].0, &edits[0].1);
        let committed = engine.commit_accepted(&tree, accepted, edited).unwrap();
        assert!(committed.is_some_and(|n| n > 0));
        let promoted = engine.log_likelihood_batch(Backend::Serial, accepted, &[]).unwrap();
        assert!(promoted.generator_cache_hit);
        assert_eq!(promoted.generator_log_likelihood, eval.log_likelihoods[0]);

        engine.clear_cache();
        let cold = engine.log_likelihood_batch(Backend::Serial, accepted, &[]).unwrap();
        assert!(!cold.generator_cache_hit);
        assert_eq!(cold.generator_log_likelihood, promoted.generator_log_likelihood);
    }

    #[test]
    fn relative_rate_one_is_bit_identical() {
        // The per-locus driving-value seam must be invisible at rate 1.0:
        // bit-identical full prunes, dirty-path rescores and commits.
        let (alignment, tree) = five_tip_fixture();
        let plain = FelsensteinPruner::new(&alignment, Jc69::new());
        let rated = FelsensteinPruner::new(&alignment, Jc69::new()).with_relative_rate(1.0);
        assert_eq!(rated.relative_rate(), 1.0);
        assert_eq!(plain.log_likelihood(&tree).unwrap(), rated.log_likelihood(&tree).unwrap());
        let target = tree.non_root_internal_nodes()[0];
        let (proposal, edited) = perturb(&tree, target, 0.015);
        let proposals = [TreeProposal { tree: &proposal, edited: &edited }];
        let a = plain.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        let b = rated.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        assert_eq!(a.generator_log_likelihood, b.generator_log_likelihood);
        assert_eq!(a.log_likelihoods, b.log_likelihoods);
        plain.commit_to_cache(&tree, &proposal, &edited).unwrap().unwrap();
        rated.commit_to_cache(&tree, &proposal, &edited).unwrap().unwrap();
        let a2 = plain.log_likelihood_batch(Backend::Serial, &proposal, &[]).unwrap();
        let b2 = rated.log_likelihood_batch(Backend::Serial, &proposal, &[]).unwrap();
        assert_eq!(a2.generator_log_likelihood, b2.generator_log_likelihood);
    }

    #[test]
    fn relative_rate_equals_scaling_branch_lengths() {
        // Scoring at rate r must equal scoring the tree with every time
        // multiplied by r (JC69 and F81 are time-reversible in t·rate), on
        // the reference path, the batched path, and after commits.
        let (alignment, tree) = five_tip_fixture();
        let rate = 1.75;
        let rated = FelsensteinPruner::new(&alignment, Jc69::new()).with_relative_rate(rate);
        let mut scaled_tree = tree.clone();
        scaled_tree.scale_times(rate);
        let reference = FelsensteinPruner::new(&alignment, Jc69::new());
        let direct = rated.log_likelihood(&tree).unwrap();
        let via_scaling = reference.log_likelihood(&scaled_tree).unwrap();
        assert!(
            (direct - via_scaling).abs() < 1e-10,
            "rate-scaled {direct} vs branch-scaled {via_scaling}"
        );

        // Dirty-path rescoring agrees too.
        let target = tree.non_root_internal_nodes()[0];
        let (proposal, edited) = perturb(&tree, target, 0.015);
        let proposals = [TreeProposal { tree: &proposal, edited: &edited }];
        let eval = rated.log_likelihood_batch(Backend::Serial, &tree, &proposals).unwrap();
        let mut scaled_proposal = proposal.clone();
        scaled_proposal.scale_times(rate);
        let manual = reference.log_likelihood(&scaled_proposal).unwrap();
        assert!((eval.log_likelihoods[0] - manual).abs() < 1e-10);
    }

    #[test]
    fn multi_locus_engine_scores_each_locus_at_its_own_rate() {
        let (dataset, tree) = three_locus_fixture();
        let rates = [1.0, 2.0, 0.5];
        let rated_loci: Vec<Locus> = dataset
            .loci()
            .iter()
            .zip(rates)
            .map(|(locus, rate)| {
                Locus::with_rate(locus.name(), locus.alignment().clone(), rate).unwrap()
            })
            .collect();
        let rated_dataset = Dataset::new(rated_loci).unwrap();
        let engine = MultiLocusEngine::new(&rated_dataset, |_| Jc69::new());
        let per_locus = engine.log_likelihood_per_locus(&tree).unwrap();
        for ((locus, rate), &got) in dataset.loci().iter().zip(rates).zip(&per_locus) {
            let mut scaled = tree.clone();
            scaled.scale_times(rate);
            let manual = FelsensteinPruner::new(locus.alignment(), Jc69::new())
                .log_likelihood(&scaled)
                .unwrap();
            assert!(
                (got - manual).abs() < 1e-10,
                "locus {} at rate {rate}: {got} vs {manual}",
                locus.name()
            );
        }
        // And the total is still the sum.
        let total = engine.log_likelihood(&tree).unwrap();
        assert!((total - per_locus.iter().sum::<f64>()).abs() < 1e-12);
        // A rate-2 locus with mutations is not scored like a rate-1 locus.
        let unrated = MultiLocusEngine::new(&dataset, |_| Jc69::new());
        assert!(
            (unrated.log_likelihood(&tree).unwrap() - total).abs() > 1e-9,
            "distinct rates must change the score"
        );
    }
}
