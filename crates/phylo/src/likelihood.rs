//! The data likelihood `P(D|G)` by Felsenstein pruning (Eq. 19–23).
//!
//! For each site the likelihood of the genealogy is computed by a post-order
//! traversal: every node carries a conditional likelihood vector over the
//! four nucleotides, tips are indicators of their observed base, and interior
//! vectors combine the children's vectors through the substitution model's
//! transition probabilities (Eq. 19). The per-site likelihoods multiply
//! (Eq. 22 — stored as a sum of logs per Section 5.3).
//!
//! Two execution strategies mirror the paper's "data likelihood kernel"
//! (Section 5.2.2), which assigns one device thread per base-pair position:
//! here the per-pattern loop can run serially or data-parallel over rayon
//! worker threads. Site-pattern compression is used by default; the
//! uncompressed path (what the CUDA kernel does, recomputing every site) is
//! also available so the trade-off can be benchmarked.

use rayon::prelude::*;

use crate::alignment::Alignment;
use crate::error::PhyloError;
use crate::model::SubstitutionModel;
use crate::nucleotide::Nucleotide;
use crate::patterns::SitePatterns;
use crate::tree::{GeneTree, NodeId};

/// Anything that can score a genealogy against fixed data.
pub trait LikelihoodEngine: Send + Sync {
    /// `ln P(D|G)`.
    fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError>;
}

/// How the per-site work is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One thread, pattern-compressed.
    #[default]
    Serial,
    /// Rayon data parallelism over patterns (the host-side analogue of the
    /// CUDA data-likelihood kernel).
    Parallel,
}

/// Felsenstein-pruning likelihood engine bound to one alignment and one
/// substitution model.
#[derive(Debug, Clone)]
pub struct FelsensteinPruner<M> {
    model: M,
    patterns: SitePatterns,
    /// Map from sequence name to row index in the patterns.
    name_to_row: std::collections::HashMap<String, usize>,
    mode: ExecutionMode,
    /// Scaling threshold below which partial likelihoods are renormalised.
    scale_threshold: f64,
}

impl<M: SubstitutionModel> FelsensteinPruner<M> {
    /// Create an engine for the given alignment and model.
    pub fn new(alignment: &Alignment, model: M) -> Self {
        let patterns = SitePatterns::from_alignment(alignment);
        let name_to_row = alignment
            .names()
            .iter()
            .enumerate()
            .map(|(i, name)| (name.to_string(), i))
            .collect();
        FelsensteinPruner {
            model,
            patterns,
            name_to_row,
            mode: ExecutionMode::Serial,
            scale_threshold: 1e-100,
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The execution mode in use.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The substitution model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of compressed site patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.n_patterns()
    }

    /// Number of sites in the source alignment.
    pub fn n_sites(&self) -> usize {
        self.patterns.n_sites()
    }

    /// Number of sequences.
    pub fn n_sequences(&self) -> usize {
        self.patterns.n_sequences()
    }

    /// An estimate of the floating point work of one evaluation, used by the
    /// device cost model: per pattern, each interior node combines two
    /// children with a 4×4 matrix-vector product.
    pub fn work_per_evaluation(&self, tree: &GeneTree) -> u64 {
        let per_node = 2 * 4 * 4 * 2; // two children, 4x4 products, mul+add
        (self.patterns.n_patterns() as u64) * (tree.n_internal() as u64) * per_node as u64
    }

    /// Map the tree's tips to pattern rows, by tip label.
    fn tip_rows(&self, tree: &GeneTree) -> Result<Vec<Option<usize>>, PhyloError> {
        let mut rows = vec![None; tree.n_nodes()];
        for tip in tree.tips() {
            let label = tree.label(tip).unwrap_or_default();
            let row = self.name_to_row.get(label).copied().ok_or_else(|| {
                PhyloError::InvalidNode {
                    node: tip,
                    message: format!("tip label {label:?} not present in the alignment"),
                }
            })?;
            rows[tip] = Some(row);
        }
        Ok(rows)
    }

    /// Per-pattern log likelihoods (ordered as the patterns are).
    pub fn pattern_log_likelihoods(&self, tree: &GeneTree) -> Result<Vec<f64>, PhyloError> {
        if tree.n_tips() != self.n_sequences() {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "tree has {} tips but the alignment has {} sequences",
                    tree.n_tips(),
                    self.n_sequences()
                ),
            });
        }
        let tip_rows = self.tip_rows(tree)?;
        let order = tree.post_order();
        // Precompute per-branch transition matrices (shared across patterns).
        let matrices: Vec<Option<[[f64; 4]; 4]>> = (0..tree.n_nodes())
            .map(|node| tree.branch_length(node).map(|t| self.model.transition_matrix(t.max(0.0))))
            .collect();

        let compute_pattern = |pattern: &[Nucleotide]| -> f64 {
            self.prune_one_pattern(tree, &order, &matrices, &tip_rows, pattern)
        };

        let result: Vec<f64> = match self.mode {
            ExecutionMode::Serial => (0..self.patterns.n_patterns())
                .map(|i| compute_pattern(self.patterns.pattern(i)))
                .collect(),
            ExecutionMode::Parallel => (0..self.patterns.n_patterns())
                .into_par_iter()
                .map(|i| compute_pattern(self.patterns.pattern(i)))
                .collect(),
        };
        Ok(result)
    }

    fn prune_one_pattern(
        &self,
        tree: &GeneTree,
        order: &[NodeId],
        matrices: &[Option<[[f64; 4]; 4]>],
        tip_rows: &[Option<usize>],
        pattern: &[Nucleotide],
    ) -> f64 {
        let n = tree.n_nodes();
        let mut partial = vec![[0.0f64; 4]; n];
        let mut log_scale = 0.0f64;
        for &node in order {
            if let Some(row) = tip_rows[node] {
                let observed = pattern[row];
                let mut vec = [0.0; 4];
                vec[observed.index()] = 1.0;
                partial[node] = vec;
            } else {
                let (a, b) = tree.children(node).expect("interior node");
                let ma = matrices[a].expect("non-root child has a branch");
                let mb = matrices[b].expect("non-root child has a branch");
                let pa = partial[a];
                let pb = partial[b];
                let mut vec = [0.0; 4];
                let mut max = 0.0f64;
                for x in 0..4 {
                    let mut sum_a = 0.0;
                    let mut sum_b = 0.0;
                    for y in 0..4 {
                        sum_a += ma[x][y] * pa[y];
                        sum_b += mb[x][y] * pb[y];
                    }
                    let v = sum_a * sum_b;
                    vec[x] = v;
                    if v > max {
                        max = v;
                    }
                }
                // Rescale to avoid underflow on deep trees (Section 5.3).
                if max > 0.0 && max < self.scale_threshold {
                    for v in &mut vec {
                        *v /= max;
                    }
                    log_scale += max.ln();
                }
                partial[node] = vec;
            }
        }
        let root = tree.root();
        let freqs = self.model.base_frequencies();
        let site_likelihood: f64 = Nucleotide::ALL
            .iter()
            .map(|&x| freqs.freq(x) * partial[root][x.index()])
            .sum();
        if site_likelihood <= 0.0 {
            f64::NEG_INFINITY
        } else {
            site_likelihood.ln() + log_scale
        }
    }

    /// Per-site log likelihoods expanded back to alignment order is not
    /// needed by the samplers; this returns the weighted total directly.
    pub fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        let per_pattern = self.pattern_log_likelihoods(tree)?;
        Ok(per_pattern
            .iter()
            .zip(self.patterns.weights())
            .map(|(lnl, &w)| lnl * w as f64)
            .sum())
    }
}

impl<M: SubstitutionModel> LikelihoodEngine for FelsensteinPruner<M> {
    fn log_likelihood(&self, tree: &GeneTree) -> Result<f64, PhyloError> {
        FelsensteinPruner::log_likelihood(self, tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseFrequencies, Jc69, F81};
    use crate::tree::TreeBuilder;

    fn two_tip_tree(t1: f64, t2: f64, height: f64) -> GeneTree {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", height - t1);
        let y = b.add_tip("y", height - t2);
        b.join(x, y, height);
        b.build().unwrap()
    }

    #[test]
    fn two_tip_likelihood_matches_analytic_formula() {
        // Alignment: x = A, y = G, one site. lnL = ln(sum_z pi_z P_zA(t1) P_zG(t2)).
        let alignment = Alignment::from_letters(&[("x", "A"), ("y", "G")]).unwrap();
        let model = Jc69::new();
        let (t1, t2) = (0.3, 0.5);
        let tree = two_tip_tree(t1, t2, 0.5);
        let pruner = FelsensteinPruner::new(&alignment, model);
        let lnl = pruner.log_likelihood(&tree).unwrap();

        let model = Jc69::new();
        let expected: f64 = Nucleotide::ALL
            .iter()
            .map(|&z| {
                0.25 * model.transition_prob(z, Nucleotide::A, t1)
                    * model.transition_prob(z, Nucleotide::G, t2)
            })
            .sum::<f64>()
            .ln();
        assert!((lnl - expected).abs() < 1e-12, "{lnl} vs {expected}");
    }

    #[test]
    fn multi_site_likelihood_is_sum_of_site_terms() {
        let alignment = Alignment::from_letters(&[("x", "AG"), ("y", "GG")]).unwrap();
        let tree = two_tip_tree(0.2, 0.2, 0.2);
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let total = pruner.log_likelihood(&tree).unwrap();

        let single_a = Alignment::from_letters(&[("x", "A"), ("y", "G")]).unwrap();
        let single_b = Alignment::from_letters(&[("x", "G"), ("y", "G")]).unwrap();
        let la = FelsensteinPruner::new(&single_a, Jc69::new()).log_likelihood(&tree).unwrap();
        let lb = FelsensteinPruner::new(&single_b, Jc69::new()).log_likelihood(&tree).unwrap();
        assert!((total - (la + lb)).abs() < 1e-12);
    }

    #[test]
    fn pattern_compression_matches_per_site_recomputation() {
        // Repeat the same columns many times: compressed and uncompressed
        // answers must agree exactly (weights multiply the log term).
        let alignment = Alignment::from_letters(&[
            ("x", "AAAAGGGGAAAA"),
            ("y", "AAAAGGGGAAAT"),
            ("z", "AAAAGGGAAAAT"),
        ])
        .unwrap();
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        let z = b.add_tip("z", 0.0);
        let v = b.join(x, y, 0.1);
        b.join(v, z, 0.4);
        let tree = b.build().unwrap();

        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        assert!(pruner.n_patterns() < alignment.n_sites());
        let compressed = pruner.log_likelihood(&tree).unwrap();

        // Manual per-site sum using single-column alignments.
        let mut manual = 0.0;
        for site in 0..alignment.n_sites() {
            let col: Vec<(usize, String)> = alignment
                .sequences()
                .iter()
                .map(|s| s.base(site).to_char().to_string())
                .enumerate()
                .collect();
            let single = Alignment::from_letters(
                &col.iter()
                    .map(|(i, c)| (alignment.sequence(*i).name(), c.as_str()))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            manual += FelsensteinPruner::new(&single, Jc69::new())
                .log_likelihood(&tree)
                .unwrap();
        }
        assert!((compressed - manual).abs() < 1e-10, "{compressed} vs {manual}");
    }

    #[test]
    fn parallel_mode_matches_serial_mode() {
        let alignment = Alignment::from_letters(&[
            ("a", "ACGTACGTAACCGGTTACGT"),
            ("b", "ACGTACGAAACCGGTTACGA"),
            ("c", "ACGAACGTAACCGGTAACGT"),
            ("d", "TCGTACGTAACCGGTTACGT"),
        ])
        .unwrap();
        let mut builder = TreeBuilder::new();
        let a = builder.add_tip("a", 0.0);
        let b = builder.add_tip("b", 0.0);
        let c = builder.add_tip("c", 0.0);
        let d = builder.add_tip("d", 0.0);
        let ab = builder.join(a, b, 0.05);
        let cd = builder.join(c, d, 0.08);
        builder.join(ab, cd, 0.2);
        let tree = builder.build().unwrap();

        let serial = FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let parallel = serial.clone().with_mode(ExecutionMode::Parallel);
        assert_eq!(parallel.mode(), ExecutionMode::Parallel);
        let l1 = serial.log_likelihood(&tree).unwrap();
        let l2 = parallel.log_likelihood(&tree).unwrap();
        assert!((l1 - l2).abs() < 1e-12);
        assert!(l1.is_finite() && l1 < 0.0);
    }

    #[test]
    fn identical_sequences_prefer_short_trees() {
        let alignment =
            Alignment::from_letters(&[("x", "ACGTACGTAC"), ("y", "ACGTACGTAC")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let short = pruner.log_likelihood(&two_tip_tree(0.01, 0.01, 0.01)).unwrap();
        let long = pruner.log_likelihood(&two_tip_tree(1.0, 1.0, 1.0)).unwrap();
        assert!(
            short > long,
            "identical sequences should favour shorter trees: {short} vs {long}"
        );
    }

    #[test]
    fn divergent_sequences_prefer_longer_trees() {
        let alignment =
            Alignment::from_letters(&[("x", "ACGTACGTAC"), ("y", "GTACGTACGT")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let short = pruner.log_likelihood(&two_tip_tree(0.01, 0.01, 0.01)).unwrap();
        let long = pruner.log_likelihood(&two_tip_tree(1.0, 1.0, 1.0)).unwrap();
        assert!(long > short, "divergent sequences should favour longer trees");
    }

    #[test]
    fn base_frequency_informed_model_beats_mismatched_frequencies() {
        // AT-rich data: an F81 model with matching frequencies should assign
        // higher likelihood than one with complementary (GC-rich) frequencies.
        let alignment =
            Alignment::from_letters(&[("x", "AATTATAATT"), ("y", "AATTATATTT")]).unwrap();
        let tree = two_tip_tree(0.1, 0.1, 0.1);
        let matched = FelsensteinPruner::new(
            &alignment,
            F81::normalized(alignment.base_frequencies()),
        )
        .log_likelihood(&tree)
        .unwrap();
        let mismatched = FelsensteinPruner::new(
            &alignment,
            F81::normalized(BaseFrequencies::new(0.05, 0.45, 0.45, 0.05).unwrap()),
        )
        .log_likelihood(&tree)
        .unwrap();
        assert!(matched > mismatched);
    }

    #[test]
    fn errors_are_reported_for_mismatched_trees() {
        let alignment = Alignment::from_letters(&[("x", "ACGT"), ("y", "ACGA")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());

        // Tip label not in the alignment.
        let mut b = TreeBuilder::new();
        let p = b.add_tip("x", 0.0);
        let q = b.add_tip("unknown", 0.0);
        b.join(p, q, 1.0);
        let bad_labels = b.build().unwrap();
        assert!(pruner.log_likelihood(&bad_labels).is_err());

        // Wrong number of tips.
        let mut b = TreeBuilder::new();
        let p = b.add_tip("x", 0.0);
        let q = b.add_tip("y", 0.0);
        let r = b.add_tip("z", 0.0);
        let pq = b.join(p, q, 1.0);
        b.join(pq, r, 2.0);
        let too_many = b.build().unwrap();
        assert!(pruner.log_likelihood(&too_many).is_err());
    }

    #[test]
    fn deep_trees_do_not_underflow() {
        // 16 identical long sequences on a tall caterpillar tree: the naive
        // product of per-node terms would underflow; the log-domain result
        // must stay finite.
        let letters = "ACGT".repeat(50);
        let names: Vec<String> = (0..16).map(|i| format!("s{i}")).collect();
        let pairs: Vec<(&str, &str)> =
            names.iter().map(|n| (n.as_str(), letters.as_str())).collect();
        let alignment = Alignment::from_letters(&pairs).unwrap();

        let mut b = TreeBuilder::new();
        let tips: Vec<_> = names.iter().map(|n| b.add_tip(n.clone(), 0.0)).collect();
        let mut acc = tips[0];
        for (i, &tip) in tips.iter().enumerate().skip(1) {
            acc = b.join(acc, tip, 5.0 * i as f64);
        }
        let tree = b.build().unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let lnl = pruner.log_likelihood(&tree).unwrap();
        assert!(lnl.is_finite());
        assert!(lnl < 0.0);
    }

    #[test]
    fn work_estimate_scales_with_patterns_and_nodes() {
        let alignment = Alignment::from_letters(&[("x", "ACGTACGT"), ("y", "ACGAACGA")]).unwrap();
        let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
        let tree = two_tip_tree(0.1, 0.1, 0.1);
        let w = pruner.work_per_evaluation(&tree);
        assert_eq!(w, (pruner.n_patterns() as u64) * 1 * 64);
        assert_eq!(pruner.n_sites(), 8);
        assert_eq!(pruner.n_sequences(), 2);
        assert_eq!(pruner.model().name(), "JC69");
    }
}
