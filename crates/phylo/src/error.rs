//! Error types for the phylogenetic substrate.

use std::fmt;

/// Errors produced while constructing or manipulating phylogenetic data.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyloError {
    /// A character in a sequence was not one of `A`, `C`, `G`, `T` (case
    /// insensitive).
    InvalidNucleotide {
        /// The offending character.
        character: char,
        /// Position within the sequence (0-based).
        position: usize,
    },
    /// Sequences in an alignment have differing lengths.
    UnequalSequenceLengths {
        /// Length of the first sequence.
        expected: usize,
        /// Length of the offending sequence.
        found: usize,
        /// Name of the offending sequence.
        name: String,
    },
    /// An alignment or tree was empty where data was required.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// A parse error with a location and description.
    Parse {
        /// Line number (1-based) where the error occurred, 0 if unknown.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A tree operation referenced a node that does not exist or has the
    /// wrong kind (e.g. asking for the children of a tip).
    InvalidNode {
        /// The node index.
        node: usize,
        /// Description of the violated expectation.
        message: String,
    },
    /// A tree failed a structural validity check.
    InvalidTree {
        /// Description of the structural problem.
        message: String,
    },
    /// A numeric parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// An API was driven through an invalid state sequence (e.g. stepping a
    /// sampler whose chain was never begun).
    InvalidState {
        /// Description of the misuse.
        message: String,
    },
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::InvalidNucleotide { character, position } => {
                write!(f, "invalid nucleotide character {character:?} at position {position}")
            }
            PhyloError::UnequalSequenceLengths { expected, found, name } => write!(
                f,
                "sequence {name:?} has length {found} but the alignment expects {expected}"
            ),
            PhyloError::Empty { what } => write!(f, "{what} is empty"),
            PhyloError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error on line {line}: {message}")
                }
            }
            PhyloError::InvalidNode { node, message } => {
                write!(f, "invalid node {node}: {message}")
            }
            PhyloError::InvalidTree { message } => write!(f, "invalid tree: {message}"),
            PhyloError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name}={value}: must satisfy {constraint}")
            }
            PhyloError::InvalidState { message } => write!(f, "invalid state: {message}"),
        }
    }
}

impl std::error::Error for PhyloError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_details() {
        let e = PhyloError::InvalidNucleotide { character: 'X', position: 5 };
        assert!(e.to_string().contains('X') && e.to_string().contains('5'));

        let e = PhyloError::UnequalSequenceLengths { expected: 10, found: 8, name: "seq1".into() };
        assert!(e.to_string().contains("seq1"));

        let e = PhyloError::Empty { what: "alignment" };
        assert!(e.to_string().contains("alignment"));

        let e = PhyloError::Parse { line: 3, message: "bad header".into() };
        assert!(e.to_string().contains("line 3"));
        let e = PhyloError::Parse { line: 0, message: "bad header".into() };
        assert!(!e.to_string().contains("line"));

        let e = PhyloError::InvalidNode { node: 7, message: "tip has no children".into() };
        assert!(e.to_string().contains('7'));

        let e = PhyloError::InvalidTree { message: "cycle detected".into() };
        assert!(e.to_string().contains("cycle"));

        let e =
            PhyloError::InvalidParameter { name: "theta", value: -2.0, constraint: "theta > 0" };
        assert!(e.to_string().contains("theta"));

        let e = PhyloError::InvalidState { message: "no active chain".into() };
        assert!(e.to_string().contains("no active chain"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: std::error::Error>(_: &E) {}
        takes_error(&PhyloError::Empty { what: "tree" });
    }
}
