//! A hand-rolled four-lane `f64` vector for the explicit-SIMD likelihood
//! kernel (enabled by the `simd` cargo feature).
//!
//! The build environment is offline and the workspace compiles on stable
//! Rust, so neither `std::simd` (nightly) nor an external SIMD crate is
//! available. [`F64x4`] is the portable substitute: a `#[repr(transparent)]`
//! wrapper over `[f64; 4]` whose lane-wise operations are written as fixed
//! four-iteration loops that LLVM lowers to vector instructions for whatever
//! width the target offers (two 128-bit ops under baseline SSE2, one 256-bit
//! op under AVX). No `unsafe`, no intrinsics, no platform gates — the same
//! source is correct everywhere and fast wherever the backend can vectorise.
//!
//! The only operation with a semantic choice is [`F64x4::mul_add`]: when the
//! target guarantees hardware FMA (`target_feature = "fma"`) it contracts to
//! a fused multiply–add per lane; otherwise it is a plain multiply-then-add,
//! because `f64::mul_add` without hardware support falls back to a libm call
//! per lane and would be dramatically *slower* than the scalar kernel.
//!
//! Four lanes is exactly one conditional-likelihood vector (one probability
//! per nucleotide), which is why the structure-of-arrays
//! `[node × pattern × 4]` layout of
//! [`LikelihoodWorkspace`](crate::likelihood::LikelihoodWorkspace) makes the
//! SIMD kernel a local change: each pattern's four lanes are already
//! contiguous in memory.

use std::ops::{Add, Div, Mul};

/// Four `f64` lanes, operated on element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `value`.
    #[inline(always)]
    pub fn splat(value: f64) -> Self {
        F64x4([value; 4])
    }

    /// Load four lanes from the first four elements of `slice`.
    #[inline(always)]
    pub fn from_slice(slice: &[f64]) -> Self {
        F64x4([slice[0], slice[1], slice[2], slice[3]])
    }

    /// Store the four lanes into the first four elements of `out`.
    #[inline(always)]
    pub fn write_to(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// `self * b + c`, lane-wise. Contracts to hardware FMA when the target
    /// guarantees it; otherwise an unfused multiply-then-add (see the module
    /// docs for why the libm `f64::mul_add` fallback is avoided).
    #[inline(always)]
    pub fn mul_add(self, b: F64x4, c: F64x4) -> F64x4 {
        #[cfg(target_feature = "fma")]
        {
            F64x4([
                self.0[0].mul_add(b.0[0], c.0[0]),
                self.0[1].mul_add(b.0[1], c.0[1]),
                self.0[2].mul_add(b.0[2], c.0[2]),
                self.0[3].mul_add(b.0[3], c.0[3]),
            ])
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self * b + c
        }
    }

    /// The largest lane (the per-pattern magnitude the rescaling check
    /// inspects).
    #[inline(always)]
    pub fn max_element(self) -> f64 {
        let m01 = self.0[0].max(self.0[1]);
        let m23 = self.0[2].max(self.0[3]);
        m01.max(m23)
    }

    /// The four columns of a row-major 4×4 matrix, as one vector per column.
    /// This is the layout the matrix–vector product wants: the product
    /// `M·p` becomes `Σ_y column_y(M) * splat(p[y])`, four broadcast
    /// multiply–adds with no horizontal reduction.
    #[inline(always)]
    pub fn columns(matrix: &[[f64; 4]; 4]) -> [F64x4; 4] {
        let mut cols = [F64x4::splat(0.0); 4];
        for (y, col) in cols.iter_mut().enumerate() {
            *col = F64x4([matrix[0][y], matrix[1][y], matrix[2][y], matrix[3][y]]);
        }
        cols
    }

    /// `M·p` for a row-major matrix already split into [`F64x4::columns`]:
    /// four broadcast multiply–adds, accumulated in the same `y = 0..4` order
    /// as the scalar kernel's inner loop.
    #[inline(always)]
    pub fn mat_vec(cols: &[F64x4; 4], p: &[f64]) -> F64x4 {
        let mut acc = cols[0] * F64x4::splat(p[0]);
        acc = cols[1].mul_add(F64x4::splat(p[1]), acc);
        acc = cols[2].mul_add(F64x4::splat(p[2]), acc);
        cols[3].mul_add(F64x4::splat(p[3]), acc)
    }
}

impl Add for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn add(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Mul for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn mul(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl Div for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn div(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] / rhs.0[0],
            self.0[1] / rhs.0[1],
            self.0[2] / rhs.0[2],
            self.0[3] / rhs.0[3],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_matches_scalar() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([0.5, 0.25, 2.0, -1.0]);
        assert_eq!((a + b).0, [1.5, 2.25, 5.0, 3.0]);
        assert_eq!((a * b).0, [0.5, 0.5, 6.0, -4.0]);
        assert_eq!((a / b).0, [2.0, 8.0, 1.5, -4.0]);
        let c = F64x4::splat(1.0);
        let fma = a.mul_add(b, c);
        for i in 0..4 {
            assert!((fma.0[i] - (a.0[i] * b.0[i] + c.0[i])).abs() < 1e-15);
        }
    }

    #[test]
    fn loads_stores_and_max() {
        let data = [0.1, 0.9, 0.4, 0.2, 99.0];
        let v = F64x4::from_slice(&data);
        assert_eq!(v.0, [0.1, 0.9, 0.4, 0.2]);
        assert_eq!(v.max_element(), 0.9);
        let mut out = [0.0; 5];
        v.write_to(&mut out);
        assert_eq!(out, [0.1, 0.9, 0.4, 0.2, 0.0]);
        assert_eq!(F64x4::splat(7.0).0, [7.0; 4]);
        assert_eq!(F64x4::default().0, [0.0; 4]);
    }

    #[test]
    fn mat_vec_matches_the_scalar_product() {
        let m = [
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.2, 0.1, 0.6, 0.1],
            [0.1, 0.2, 0.1, 0.6],
        ];
        let p = [0.3, 0.1, 0.5, 0.1];
        let cols = F64x4::columns(&m);
        let fast = F64x4::mat_vec(&cols, &p);
        for (row, &lane) in m.iter().zip(&fast.0) {
            let scalar: f64 = row.iter().zip(&p).map(|(&m, &p)| m * p).sum();
            assert!((lane - scalar).abs() < 1e-15, "{lane} vs {scalar}");
        }
    }
}
