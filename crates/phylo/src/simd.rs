//! A hand-rolled four-lane `f64` vector for the explicit-SIMD likelihood
//! kernel (enabled by the `simd` cargo feature).
//!
//! The build environment is offline and the workspace compiles on stable
//! Rust, so neither `std::simd` (nightly) nor an external SIMD crate is
//! available. [`F64x4`] is the portable substitute: a `#[repr(transparent)]`
//! wrapper over `[f64; 4]` whose lane-wise operations are written as fixed
//! four-iteration loops that LLVM lowers to vector instructions for whatever
//! width the target offers (two 128-bit ops under baseline SSE2, one 256-bit
//! op under AVX). No `unsafe`, no intrinsics, no platform gates — the same
//! source is correct everywhere and fast wherever the backend can vectorise.
//!
//! The only operation with a semantic choice is [`F64x4::mul_add`]: when the
//! target guarantees hardware FMA (`target_feature = "fma"`) it contracts to
//! a fused multiply–add per lane; otherwise it is a plain multiply-then-add,
//! because `f64::mul_add` without hardware support falls back to a libm call
//! per lane and would be dramatically *slower* than the scalar kernel.
//!
//! The `dispatch` module closes the gap between that compile-time choice
//! and the hardware the binary actually lands on: the combine loop is
//! compiled a second time inside a `#[target_feature(enable = "avx2,fma")]`
//! function (with the fused multiply–add forced on), and
//! [`likelihood::Kernel::Auto`](crate::likelihood::Kernel::Auto) routes to it
//! after probing the CPU at runtime — so a default build reaches the same
//! 256-bit FMA code path a `RUSTFLAGS="-C target-feature=+avx2,+fma"` build
//! gets statically. That module is the one place in the crate allowed to use
//! `unsafe` (calling a `#[target_feature]` function), guarded by the runtime
//! probe.
//!
//! Four lanes is exactly one conditional-likelihood vector (one probability
//! per nucleotide), which is why the structure-of-arrays
//! `[node × pattern × 4]` layout of
//! [`LikelihoodWorkspace`](crate::likelihood::LikelihoodWorkspace) makes the
//! SIMD kernel a local change: each pattern's four lanes are already
//! contiguous in memory.

use std::ops::{Add, Div, Mul};

/// Four `f64` lanes, operated on element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `value`.
    #[inline(always)]
    pub fn splat(value: f64) -> Self {
        F64x4([value; 4])
    }

    /// Load four lanes from the first four elements of `slice`.
    #[inline(always)]
    pub fn from_slice(slice: &[f64]) -> Self {
        F64x4([slice[0], slice[1], slice[2], slice[3]])
    }

    /// Store the four lanes into the first four elements of `out`.
    #[inline(always)]
    pub fn write_to(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// `self * b + c`, lane-wise. Contracts to hardware FMA when the target
    /// guarantees it; otherwise an unfused multiply-then-add (see the module
    /// docs for why the libm `f64::mul_add` fallback is avoided).
    #[inline(always)]
    pub fn mul_add(self, b: F64x4, c: F64x4) -> F64x4 {
        #[cfg(target_feature = "fma")]
        {
            F64x4([
                self.0[0].mul_add(b.0[0], c.0[0]),
                self.0[1].mul_add(b.0[1], c.0[1]),
                self.0[2].mul_add(b.0[2], c.0[2]),
                self.0[3].mul_add(b.0[3], c.0[3]),
            ])
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self * b + c
        }
    }

    /// `self * b + c`, lane-wise, *always* fused. Only reachable from code
    /// compiled with hardware FMA in scope (the `dispatch` module's
    /// `#[target_feature]` variant of the combine loop), where `f64::mul_add`
    /// lowers to one `vfmadd` instruction rather than a libm call. The
    /// `cfg(target_feature)` test used by [`F64x4::mul_add`] reflects the
    /// *crate-wide* codegen options, not the enclosing function's
    /// `#[target_feature]` attributes, which is why this explicit variant
    /// exists.
    #[inline(always)]
    pub fn fused_mul_add(self, b: F64x4, c: F64x4) -> F64x4 {
        F64x4([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// The largest lane (the per-pattern magnitude the rescaling check
    /// inspects).
    #[inline(always)]
    pub fn max_element(self) -> f64 {
        let m01 = self.0[0].max(self.0[1]);
        let m23 = self.0[2].max(self.0[3]);
        m01.max(m23)
    }

    /// The four columns of a row-major 4×4 matrix, as one vector per column.
    /// This is the layout the matrix–vector product wants: the product
    /// `M·p` becomes `Σ_y column_y(M) * splat(p[y])`, four broadcast
    /// multiply–adds with no horizontal reduction.
    #[inline(always)]
    pub fn columns(matrix: &[[f64; 4]; 4]) -> [F64x4; 4] {
        let mut cols = [F64x4::splat(0.0); 4];
        for (y, col) in cols.iter_mut().enumerate() {
            *col = F64x4([matrix[0][y], matrix[1][y], matrix[2][y], matrix[3][y]]);
        }
        cols
    }

    /// `M·p` for a row-major matrix already split into [`F64x4::columns`]:
    /// four broadcast multiply–adds, accumulated in the same `y = 0..4` order
    /// as the scalar kernel's inner loop.
    #[inline(always)]
    pub fn mat_vec(cols: &[F64x4; 4], p: &[f64]) -> F64x4 {
        let mut acc = cols[0] * F64x4::splat(p[0]);
        acc = cols[1].mul_add(F64x4::splat(p[1]), acc);
        acc = cols[2].mul_add(F64x4::splat(p[2]), acc);
        cols[3].mul_add(F64x4::splat(p[3]), acc)
    }

    /// [`F64x4::mat_vec`] with the accumulation forced through
    /// [`F64x4::fused_mul_add`]; same `y = 0..4` order. For use inside the
    /// `dispatch` module's `#[target_feature]` combine loop only.
    #[inline(always)]
    pub fn mat_vec_fma(cols: &[F64x4; 4], p: &[f64]) -> F64x4 {
        let mut acc = cols[0] * F64x4::splat(p[0]);
        acc = cols[1].fused_mul_add(F64x4::splat(p[1]), acc);
        acc = cols[2].fused_mul_add(F64x4::splat(p[2]), acc);
        cols[3].fused_mul_add(F64x4::splat(p[3]), acc)
    }
}

/// The explicit four-lane combine loop shared by `Kernel::Simd` and the
/// runtime-dispatched AVX2+FMA variant: the transition matrices are
/// transposed to column-major once per node, turning each matrix–vector
/// product into four broadcast multiply–adds with no horizontal reduction.
/// The underflow rescale is *hoisted out of the hot loop*: the main pass is
/// branch-free (it only records whether any pattern's magnitude fell below
/// the threshold), and the rare rescaling pass re-reads the stored rows and
/// applies exactly the scalar kernel's per-pattern renormalisation — so the
/// two-pass structure changes no values, only control flow. Numerically the
/// kernel reassociates the matrix–vector products (and contracts them to
/// fused multiply–adds when `FUSED`, or when the whole crate is compiled
/// with `target_feature = "fma"`), so results match the scalar kernel to
/// ≤1e-12 relative tolerance rather than bit-exactly.
///
/// `FUSED` selects [`F64x4::mat_vec_fma`] over [`F64x4::mat_vec`]; it is
/// only set by the `dispatch` module, whose `#[target_feature]` context
/// makes the fused form a hardware instruction.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn combine_rows_f64x4<const FUSED: bool>(
    scale_threshold: f64,
    ma: &[[f64; 4]; 4],
    mb: &[[f64; 4]; 4],
    pa: &[f64],
    pb: &[f64],
    sa: &[f64],
    sb: &[f64],
    out_partials: &mut [f64],
    out_scales: &mut [f64],
) {
    let ca = F64x4::columns(ma);
    let cb = F64x4::columns(mb);
    let len = out_scales.len();
    let mut needs_rescale = false;
    for p in 0..len {
        let (va, vb) = if FUSED {
            (
                F64x4::mat_vec_fma(&ca, &pa[p * 4..p * 4 + 4]),
                F64x4::mat_vec_fma(&cb, &pb[p * 4..p * 4 + 4]),
            )
        } else {
            (F64x4::mat_vec(&ca, &pa[p * 4..p * 4 + 4]), F64x4::mat_vec(&cb, &pb[p * 4..p * 4 + 4]))
        };
        let v = va * vb;
        let max = v.max_element();
        needs_rescale |= max > 0.0 && max < scale_threshold;
        v.write_to(&mut out_partials[p * 4..p * 4 + 4]);
        out_scales[p] = sa[p] + sb[p];
    }
    if needs_rescale {
        for p in 0..len {
            let v = F64x4::from_slice(&out_partials[p * 4..p * 4 + 4]);
            let max = v.max_element();
            if max > 0.0 && max < scale_threshold {
                (v / F64x4::splat(max)).write_to(&mut out_partials[p * 4..p * 4 + 4]);
                out_scales[p] += max.ln();
            }
        }
    }
}

/// Runtime CPU dispatch for the combine loop: the one place in the crate
/// where `unsafe` is permitted, because calling a `#[target_feature]`
/// function requires an unsafe block whose soundness obligation — "the
/// features the callee was compiled for are present on this CPU" — is
/// discharged by the [`avx2_fma_supported`] probe.
///
/// [`avx2_fma_supported`]: dispatch::avx2_fma_supported
#[allow(unsafe_code)]
pub(crate) mod dispatch {
    /// Whether this CPU supports both AVX2 and FMA (always `false` off
    /// x86/x86-64). `std` caches the CPUID probe, so calling this per
    /// kernel invocation costs one relaxed atomic load.
    #[inline]
    pub fn avx2_fma_supported() -> bool {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        {
            false
        }
    }

    /// The combine loop compiled for AVX2+FMA: every `F64x4` op becomes one
    /// 256-bit instruction and every multiply–add one `vfmadd`, regardless
    /// of the crate-wide codegen baseline.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn combine_rows_avx2_fma_impl(
        scale_threshold: f64,
        ma: &[[f64; 4]; 4],
        mb: &[[f64; 4]; 4],
        pa: &[f64],
        pb: &[f64],
        sa: &[f64],
        sb: &[f64],
        out_partials: &mut [f64],
        out_scales: &mut [f64],
    ) {
        super::combine_rows_f64x4::<true>(
            scale_threshold,
            ma,
            mb,
            pa,
            pb,
            sa,
            sb,
            out_partials,
            out_scales,
        );
    }

    /// Safe entry point for the AVX2+FMA combine loop. Re-checks the CPU
    /// probe so the function is sound for *any* caller — on a host without
    /// the features (or off x86 entirely) it degrades to the baseline
    /// four-lane loop instead of executing unsupported instructions.
    /// `Kernel::Auto` only selects this path after the probe succeeded, so
    /// the hot path never takes the fallback branch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn combine_rows_avx2_fma(
        scale_threshold: f64,
        ma: &[[f64; 4]; 4],
        mb: &[[f64; 4]; 4],
        pa: &[f64],
        pb: &[f64],
        sa: &[f64],
        sb: &[f64],
        out_partials: &mut [f64],
        out_scales: &mut [f64],
    ) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        if avx2_fma_supported() {
            // SAFETY: `avx2_fma_supported()` just confirmed via CPUID that
            // this CPU executes AVX2 and FMA instructions, which are exactly
            // the features `combine_rows_avx2_fma_impl` is compiled for.
            unsafe {
                combine_rows_avx2_fma_impl(
                    scale_threshold,
                    ma,
                    mb,
                    pa,
                    pb,
                    sa,
                    sb,
                    out_partials,
                    out_scales,
                );
            }
            return;
        }
        super::combine_rows_f64x4::<false>(
            scale_threshold,
            ma,
            mb,
            pa,
            pb,
            sa,
            sb,
            out_partials,
            out_scales,
        );
    }
}

impl Add for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn add(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Mul for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn mul(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl Div for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn div(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] / rhs.0[0],
            self.0[1] / rhs.0[1],
            self.0[2] / rhs.0[2],
            self.0[3] / rhs.0[3],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_matches_scalar() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([0.5, 0.25, 2.0, -1.0]);
        assert_eq!((a + b).0, [1.5, 2.25, 5.0, 3.0]);
        assert_eq!((a * b).0, [0.5, 0.5, 6.0, -4.0]);
        assert_eq!((a / b).0, [2.0, 8.0, 1.5, -4.0]);
        let c = F64x4::splat(1.0);
        let fma = a.mul_add(b, c);
        for i in 0..4 {
            assert!((fma.0[i] - (a.0[i] * b.0[i] + c.0[i])).abs() < 1e-15);
        }
    }

    #[test]
    fn loads_stores_and_max() {
        let data = [0.1, 0.9, 0.4, 0.2, 99.0];
        let v = F64x4::from_slice(&data);
        assert_eq!(v.0, [0.1, 0.9, 0.4, 0.2]);
        assert_eq!(v.max_element(), 0.9);
        let mut out = [0.0; 5];
        v.write_to(&mut out);
        assert_eq!(out, [0.1, 0.9, 0.4, 0.2, 0.0]);
        assert_eq!(F64x4::splat(7.0).0, [7.0; 4]);
        assert_eq!(F64x4::default().0, [0.0; 4]);
    }

    #[test]
    fn fused_and_unfused_combine_loops_agree() {
        // The dispatched AVX2+FMA loop reassociates nothing beyond what the
        // baseline four-lane loop already does; fusing only removes one
        // rounding per multiply–add, so the two variants agree to ~1e-15.
        let ma = [
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.2, 0.1, 0.6, 0.1],
            [0.1, 0.2, 0.1, 0.6],
        ];
        let mb = [
            [0.6, 0.2, 0.1, 0.1],
            [0.1, 0.6, 0.2, 0.1],
            [0.1, 0.1, 0.7, 0.1],
            [0.2, 0.1, 0.1, 0.6],
        ];
        let len = 37;
        let pa: Vec<f64> = (0..len * 4).map(|i| 1e-150 + ((i * 37) % 100) as f64 / 150.0).collect();
        let pb: Vec<f64> = (0..len * 4).map(|i| 1e-150 + ((i * 53) % 100) as f64 / 150.0).collect();
        let sa = vec![0.0; len];
        let sb = vec![0.0; len];
        let mut base_p = vec![0.0; len * 4];
        let mut base_s = vec![0.0; len];
        combine_rows_f64x4::<false>(1e-100, &ma, &mb, &pa, &pb, &sa, &sb, &mut base_p, &mut base_s);
        let mut disp_p = vec![0.0; len * 4];
        let mut disp_s = vec![0.0; len];
        dispatch::combine_rows_avx2_fma(
            1e-100,
            &ma,
            &mb,
            &pa,
            &pb,
            &sa,
            &sb,
            &mut disp_p,
            &mut disp_s,
        );
        for (b, d) in base_p.iter().zip(&disp_p) {
            assert!((b - d).abs() <= 1e-12 * b.abs().max(1.0), "{b} vs {d}");
        }
        for (b, d) in base_s.iter().zip(&disp_s) {
            assert!((b - d).abs() <= 1e-12 * b.abs().max(1.0), "{b} vs {d}");
        }
    }

    #[test]
    fn mat_vec_matches_the_scalar_product() {
        let m = [
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.2, 0.1, 0.6, 0.1],
            [0.1, 0.2, 0.1, 0.6],
        ];
        let p = [0.3, 0.1, 0.5, 0.1];
        let cols = F64x4::columns(&m);
        let fast = F64x4::mat_vec(&cols, &p);
        for (row, &lane) in m.iter().zip(&fast.0) {
            let scalar: f64 = row.iter().zip(&p).map(|(&m, &p)| m * p).sum();
            assert!((lane - scalar).abs() < 1e-15, "{lane} vs {scalar}");
        }
    }
}
