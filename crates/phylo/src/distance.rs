//! Pairwise sequence distances.
//!
//! The UPGMA starting tree of Section 5.1.3 is built from "the distance
//! between sequences in D", where "the distance between individual sequences
//! is taken to be the number of base pair positions that are different
//! between the two sequences". This module provides that raw Hamming
//! distance, the proportion form (p-distance), and the Jukes–Cantor corrected
//! distance as a matrix over an alignment.

use crate::alignment::Alignment;
use crate::error::PhyloError;
use crate::model::Jc69;

/// How pairwise distances are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMetric {
    /// Raw count of differing positions (the thesis's choice).
    Hamming,
    /// Proportion of differing positions.
    PDistance,
    /// Jukes–Cantor corrected expected substitutions per site; saturated
    /// pairs (p ≥ 3/4) are clamped to a large finite distance.
    JukesCantor,
}

/// A symmetric matrix of pairwise distances between the sequences of an
/// alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major storage of the full (symmetric) matrix.
    values: Vec<f64>,
    names: Vec<String>,
}

impl DistanceMatrix {
    /// Compute the matrix for an alignment under the given metric.
    pub fn from_alignment(
        alignment: &Alignment,
        metric: DistanceMetric,
    ) -> Result<Self, PhyloError> {
        let n = alignment.n_sequences();
        if n == 0 {
            return Err(PhyloError::Empty { what: "alignment" });
        }
        let sites = alignment.n_sites() as f64;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let hamming = alignment.sequence(i).hamming_distance(alignment.sequence(j)) as f64;
                let d = match metric {
                    DistanceMetric::Hamming => hamming,
                    DistanceMetric::PDistance => hamming / sites,
                    DistanceMetric::JukesCantor => {
                        let p = hamming / sites;
                        Jc69::distance_from_p(p).unwrap_or(10.0)
                    }
                };
                values[i * n + j] = d;
                values[j * n + i] = d;
            }
        }
        let names = alignment.names().iter().map(|s| s.to_string()).collect();
        Ok(DistanceMatrix { n, values, names })
    }

    /// Build directly from a full symmetric matrix (row-major).
    ///
    /// # Panics
    /// Panics if the value length is not `names.len()²`.
    pub fn from_values(names: Vec<String>, values: Vec<f64>) -> Self {
        let n = names.len();
        assert_eq!(values.len(), n * n, "distance matrix must be square");
        DistanceMatrix { n, values, names }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between sequences `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n + j]
    }

    /// Sequence names in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The largest off-diagonal distance.
    pub fn max_distance(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    max = max.max(self.get(i, j));
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Alignment {
        Alignment::from_letters(&[("s1", "AAAAAAAA"), ("s2", "AAAAAATT"), ("s3", "TTTTAAAA")])
            .unwrap()
    }

    #[test]
    fn hamming_counts_differences() {
        let m = DistanceMatrix::from_alignment(&toy(), DistanceMetric::Hamming).unwrap();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.get(1, 0), m.get(0, 1));
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.max_distance(), 6.0);
        assert_eq!(m.names(), &["s1".to_string(), "s2".into(), "s3".into()]);
    }

    #[test]
    fn p_distance_is_hamming_over_sites() {
        let m = DistanceMatrix::from_alignment(&toy(), DistanceMetric::PDistance).unwrap();
        assert!((m.get(0, 1) - 0.25).abs() < 1e-12);
        assert!((m.get(1, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn jukes_cantor_corrects_and_clamps_saturation() {
        let m = DistanceMatrix::from_alignment(&toy(), DistanceMetric::JukesCantor).unwrap();
        // p = 0.25 corrects upward.
        assert!(m.get(0, 1) > 0.25);
        // p = 0.75 is saturated and clamped.
        assert_eq!(m.get(1, 2), 10.0);
        // Identical sequences have zero distance.
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_values_round_trip() {
        let m = DistanceMatrix::from_values(vec!["a".into(), "b".into()], vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.max_distance(), 3.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_values_rejects_non_square() {
        DistanceMatrix::from_values(vec!["a".into()], vec![0.0, 1.0]);
    }
}
