//! The DNA alphabet.
//!
//! Each base is represented by a two-bit code (Section 5.1.3 of the paper
//! stores sequence data two bits per base so 32 positions fit in a 64-bit
//! word of constant memory). The ordering `A, C, G, T` is also the index
//! order used by base-frequency vectors and substitution-model matrices
//! throughout the workspace.

use crate::error::PhyloError;

/// One of the four DNA nucleotides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Nucleotide {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Nucleotide {
    /// All four nucleotides in index order.
    pub const ALL: [Nucleotide; 4] = [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::T];

    /// The dense index of this nucleotide (0..4), matching the order of
    /// [`Nucleotide::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The nucleotide with the given dense index.
    ///
    /// # Panics
    /// Panics if `index >= 4`.
    #[inline]
    pub fn from_index(index: usize) -> Nucleotide {
        Nucleotide::ALL[index]
    }

    /// Parse a single character (case insensitive).
    pub fn from_char(c: char) -> Option<Nucleotide> {
        match c.to_ascii_uppercase() {
            'A' => Some(Nucleotide::A),
            'C' => Some(Nucleotide::C),
            'G' => Some(Nucleotide::G),
            'T' | 'U' => Some(Nucleotide::T),
            _ => None,
        }
    }

    /// Parse a single character, reporting the position on failure.
    pub fn try_from_char(c: char, position: usize) -> Result<Nucleotide, PhyloError> {
        Nucleotide::from_char(c).ok_or(PhyloError::InvalidNucleotide { character: c, position })
    }

    /// The upper-case character for this nucleotide.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Nucleotide::A => 'A',
            Nucleotide::C => 'C',
            Nucleotide::G => 'G',
            Nucleotide::T => 'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Nucleotide {
        match self {
            Nucleotide::A => Nucleotide::T,
            Nucleotide::T => Nucleotide::A,
            Nucleotide::C => Nucleotide::G,
            Nucleotide::G => Nucleotide::C,
        }
    }

    /// Whether this base is a purine (A or G).
    #[inline]
    pub fn is_purine(self) -> bool {
        matches!(self, Nucleotide::A | Nucleotide::G)
    }

    /// Whether this base is a pyrimidine (C or T).
    #[inline]
    pub fn is_pyrimidine(self) -> bool {
        !self.is_purine()
    }

    /// Whether substituting `self` for `other` is a transition (purine↔purine
    /// or pyrimidine↔pyrimidine change). Identical bases are not transitions.
    #[inline]
    pub fn is_transition_with(self, other: Nucleotide) -> bool {
        self != other && self.is_purine() == other.is_purine()
    }

    /// Whether substituting `self` for `other` is a transversion.
    #[inline]
    pub fn is_transversion_with(self, other: Nucleotide) -> bool {
        self.is_purine() != other.is_purine()
    }

    /// The two-bit packing code (same as [`Nucleotide::index`] but typed `u8`).
    #[inline]
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// Reconstruct a nucleotide from its two-bit code (only the low two bits
    /// are considered).
    #[inline]
    pub fn from_bits(bits: u8) -> Nucleotide {
        Nucleotide::ALL[(bits & 0b11) as usize]
    }
}

impl std::fmt::Display for Nucleotide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, &n) in Nucleotide::ALL.iter().enumerate() {
            assert_eq!(n.index(), i);
            assert_eq!(Nucleotide::from_index(i), n);
            assert_eq!(Nucleotide::from_bits(n.to_bits()), n);
        }
    }

    #[test]
    fn char_round_trip_and_case_insensitivity() {
        for &n in &Nucleotide::ALL {
            assert_eq!(Nucleotide::from_char(n.to_char()), Some(n));
            assert_eq!(Nucleotide::from_char(n.to_char().to_ascii_lowercase()), Some(n));
        }
        assert_eq!(Nucleotide::from_char('U'), Some(Nucleotide::T));
        assert_eq!(Nucleotide::from_char('N'), None);
        assert_eq!(Nucleotide::from_char('-'), None);
    }

    #[test]
    fn try_from_char_reports_position() {
        let err = Nucleotide::try_from_char('x', 12).unwrap_err();
        assert_eq!(err, PhyloError::InvalidNucleotide { character: 'x', position: 12 });
        assert_eq!(Nucleotide::try_from_char('g', 0).unwrap(), Nucleotide::G);
    }

    #[test]
    fn complement_is_involution() {
        for &n in &Nucleotide::ALL {
            assert_eq!(n.complement().complement(), n);
            assert_ne!(n.complement(), n);
        }
        assert_eq!(Nucleotide::A.complement(), Nucleotide::T);
        assert_eq!(Nucleotide::G.complement(), Nucleotide::C);
    }

    #[test]
    fn purine_pyrimidine_classification() {
        assert!(Nucleotide::A.is_purine());
        assert!(Nucleotide::G.is_purine());
        assert!(Nucleotide::C.is_pyrimidine());
        assert!(Nucleotide::T.is_pyrimidine());
    }

    #[test]
    fn transition_transversion_classification() {
        assert!(Nucleotide::A.is_transition_with(Nucleotide::G));
        assert!(Nucleotide::C.is_transition_with(Nucleotide::T));
        assert!(!Nucleotide::A.is_transition_with(Nucleotide::A));
        assert!(Nucleotide::A.is_transversion_with(Nucleotide::C));
        assert!(Nucleotide::G.is_transversion_with(Nucleotide::T));
        assert!(!Nucleotide::A.is_transversion_with(Nucleotide::G));
    }

    #[test]
    fn from_bits_masks_high_bits() {
        assert_eq!(Nucleotide::from_bits(0b0100), Nucleotide::A);
        assert_eq!(Nucleotide::from_bits(0b0111), Nucleotide::T);
    }

    #[test]
    fn display_matches_to_char() {
        assert_eq!(format!("{}", Nucleotide::C), "C");
    }
}
