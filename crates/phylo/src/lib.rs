//! Phylogenetic substrate for the coalescent genealogy samplers.
//!
//! This crate provides everything the samplers need to represent and score
//! genealogies against sequence data (Sections 2.4, 4.2 and 5.2 of the
//! paper):
//!
//! * [`nucleotide`] — the four-letter DNA alphabet with 2-bit packing
//!   (Section 5.1.3 packs sequence data two bits per base so a warp can read
//!   one 64-bit word; the packed representation here serves the same role of
//!   a compact, cache-friendly encoding).
//! * [`sequence`] / [`alignment`] — named sequences and equal-length
//!   alignments, with empirical base-frequency estimation (the prior π of
//!   Eq. 20 is "approximated by the relative frequency of each nucleotide in
//!   all the sampling data").
//! * [`patterns`] — site-pattern compression: identical alignment columns are
//!   collapsed with multiplicities so the likelihood loop touches each
//!   distinct pattern once.
//! * [`dataset`] — the multi-locus data model: a [`dataset::Dataset`] of
//!   named [`dataset::Locus`] alignments over one shared individual set,
//!   scored by [`likelihood::MultiLocusEngine`] as a sum of per-locus data
//!   likelihoods (LAMARC's multi-locus θ estimation).
//! * [`io`] — PHYLIP alignment and Newick tree readers/writers (the input
//!   formats of the original program and of `ms`/`seq-gen`).
//! * [`tree`] — the genealogy tree view: binary coalescent trees with node
//!   times, traversals, neighborhood queries used by the proposal kernel, and
//!   coalescent-interval extraction. Since the columnar port it is a thin
//!   view over [`tables`], so cloning a tree is an O(1) snapshot; the old
//!   pointer arena survives as [`tree::legacy`], the differential-test
//!   oracle.
//! * [`tables`] — the columnar genealogy store: a tskit-style node table
//!   (parent/left-child/right-sib/time/label-id columns) over slab-backed,
//!   copy-on-write storage, plus the representation-independent
//!   [`tables::validate_genealogy_records`] /
//!   [`tables::assert_valid_genealogy`] structural checkers and the
//!   thread-local CoW instrumentation ([`tables::cow_stats`]) the O(1)
//!   snapshot contract is asserted with.
//! * [`distance`] / [`upgma`] — pairwise distances and UPGMA construction of
//!   the starting genealogy G₀ (Section 5.1.3).
//! * [`model`] — nucleotide substitution models (JC69, F81 — the model of
//!   Eq. 20 —, K80, F84, TN93/HKY85) behind one [`model::SubstitutionModel`]
//!   trait.
//! * [`likelihood`] — the Felsenstein-pruning data likelihood `P(D|G)`
//!   (Eq. 19–23): a pattern-outer reference path (serial and site-parallel,
//!   the "data likelihood kernel" of Section 5.2.2) and the batched engine
//!   with structure-of-arrays [`likelihood::LikelihoodWorkspace`] buffers and
//!   dirty-path caching for scoring whole proposal sets (Section 4.3). The
//!   innermost combine loop is selectable per engine through the
//!   [`likelihood::Kernel`] seam (scalar, explicit four-lane SIMD, or
//!   runtime-dispatched `auto`), and per-edge transition matrices are
//!   memoised in an [`likelihood::EdgeMatrixCache`] keyed on effective
//!   branch length.
//! * `simd` (behind the `simd` cargo feature) — the hand-rolled `F64x4`
//!   four-lane vector backing [`likelihood::Kernel::Simd`], plus the
//!   runtime AVX2+FMA dispatch behind [`likelihood::Kernel::Auto`].
//!
//! `unsafe` is denied crate-wide; the single, safety-documented exception is
//! the `simd::dispatch` module, which must call a `#[target_feature]`
//! function behind a runtime CPUID probe.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod dataset;
pub mod distance;
pub mod error;
pub mod io;
pub mod likelihood;
pub mod model;
pub mod nucleotide;
pub mod patterns;
pub mod sequence;
#[cfg(feature = "simd")]
pub mod simd;
pub mod tables;
pub mod tree;
pub mod upgma;

pub use alignment::Alignment;
pub use dataset::{Dataset, Locus};
pub use error::PhyloError;
pub use likelihood::{
    BatchEvaluation, DirtyEvaluation, EdgeMatrixCache, FelsensteinPruner, Kernel, KernelVariant,
    LikelihoodEngine, LikelihoodWorkspace, MultiLocusEngine, TreeProposal,
};
pub use model::{BaseFrequencies, SubstitutionModel};
pub use nucleotide::Nucleotide;
pub use patterns::SitePatterns;
pub use sequence::Sequence;
pub use tables::{assert_valid_genealogy, validate_genealogy_records, CowStats, TreeTables};
pub use tree::{CoalescentIntervals, GeneTree, NodeId, NodeRecord};
pub use upgma::upgma_tree;
