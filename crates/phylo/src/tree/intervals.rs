//! Coalescent intervals of a genealogy (Figure 3 of the paper).
//!
//! Viewed backwards in time, a genealogy is a sequence of intervals during
//! each of which a constant number of lineages `k` exists; each interval ends
//! either when two lineages coalesce (k decreases by one) or, for serially
//! sampled data, when a new tip enters (k increases by one). The coalescent
//! prior `P(G|θ)` of Eq. 18 depends on the genealogy only through these
//! intervals, which is why the sampler stores sampled genealogies as interval
//! summaries rather than full trees (Section 5.1.3: "nothing more than the
//! time intervals are stored for each sample").

use super::GeneTree;

/// One interval of constant lineage count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Time at which the interval starts (closer to the present).
    pub start: f64,
    /// Length of the interval (`t_i` of Figure 3).
    pub length: f64,
    /// Number of lineages present throughout the interval (`k`).
    pub lineages: usize,
    /// Whether the interval ends with a coalescence (as opposed to a new
    /// serially-sampled tip entering).
    pub ends_in_coalescence: bool,
}

/// The interval decomposition of a genealogy.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalescentIntervals {
    intervals: Vec<Interval>,
    n_coalescences: usize,
}

impl CoalescentIntervals {
    /// Extract intervals from a genealogy.
    pub fn from_tree(tree: &GeneTree) -> Self {
        #[derive(PartialEq)]
        enum Event {
            TipEnters,
            Coalescence,
        }
        let mut events: Vec<(f64, Event)> = Vec::with_capacity(tree.n_nodes());
        for node in 0..tree.n_nodes() {
            if tree.is_tip(node) {
                events.push((tree.time(node), Event::TipEnters));
            } else {
                events.push((tree.time(node), Event::Coalescence));
            }
        }
        // Sort by time; tips entering at a given time are processed before
        // coalescences at the same time so that lineage counts never go
        // negative for contemporaneous data.
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then_with(|| {
                match (&a.1, &b.1) {
                    (Event::TipEnters, Event::Coalescence) => std::cmp::Ordering::Less,
                    (Event::Coalescence, Event::TipEnters) => std::cmp::Ordering::Greater,
                    _ => std::cmp::Ordering::Equal,
                }
            })
        });

        let mut intervals = Vec::new();
        let mut n_coalescences = 0usize;
        let mut lineages = 0usize;
        let mut prev_time = events.first().map(|e| e.0).unwrap_or(0.0);
        for (time, event) in events {
            let length = time - prev_time;
            if length > 0.0 && lineages > 0 {
                intervals.push(Interval {
                    start: prev_time,
                    length,
                    lineages,
                    ends_in_coalescence: matches!(event, Event::Coalescence),
                });
            }
            match event {
                Event::TipEnters => lineages += 1,
                Event::Coalescence => {
                    lineages = lineages.saturating_sub(1);
                    n_coalescences += 1;
                }
            }
            prev_time = time;
        }
        CoalescentIntervals { intervals, n_coalescences }
    }

    /// Build directly from raw interval data (used by the samplers when they
    /// reduce genealogies to interval summaries).
    pub fn from_intervals(intervals: Vec<Interval>) -> Self {
        let n_coalescences = intervals.iter().filter(|i| i.ends_in_coalescence).count();
        CoalescentIntervals { intervals, n_coalescences }
    }

    /// The intervals, ordered from the present into the past.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of coalescent events in the genealogy (`n_tips − 1`).
    pub fn n_coalescences(&self) -> usize {
        self.n_coalescences
    }

    /// Total tree length implied by the intervals (Σ k·t over intervals).
    pub fn total_branch_length(&self) -> f64 {
        self.intervals.iter().map(|i| i.lineages as f64 * i.length).sum()
    }

    /// Time from the present to the last coalescence (the tree height for
    /// contemporaneous samples).
    pub fn depth(&self) -> f64 {
        self.intervals.last().map(|i| i.start + i.length).unwrap_or(0.0)
    }

    /// The Σ k(k−1)·t_k statistic appearing in the exponent of Eq. 18.
    pub fn waiting_statistic(&self) -> f64 {
        self.intervals.iter().map(|i| (i.lineages * (i.lineages - 1)) as f64 * i.length).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn four_tip_tree() -> GeneTree {
        // Coalescences at 1.0 (t0,t1), 2.5 ((t0,t1),t2), 4.0 (root with t3).
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let a = b.join(t0, t1, 1.0);
        let c = b.join(a, t2, 2.5);
        b.join(c, t3, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn contemporaneous_intervals_have_decreasing_lineage_counts() {
        let iv = four_tip_tree().intervals();
        let ks: Vec<usize> = iv.intervals().iter().map(|i| i.lineages).collect();
        assert_eq!(ks, vec![4, 3, 2]);
        let lens: Vec<f64> = iv.intervals().iter().map(|i| i.length).collect();
        assert!((lens[0] - 1.0).abs() < 1e-12);
        assert!((lens[1] - 1.5).abs() < 1e-12);
        assert!((lens[2] - 1.5).abs() < 1e-12);
        assert_eq!(iv.n_coalescences(), 3);
        assert!(iv.intervals().iter().all(|i| i.ends_in_coalescence));
        assert!((iv.depth() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn waiting_statistic_matches_hand_computation() {
        let iv = four_tip_tree().intervals();
        // 4*3*1.0 + 3*2*1.5 + 2*1*1.5 = 12 + 9 + 3 = 24.
        assert!((iv.waiting_statistic() - 24.0).abs() < 1e-12);
        // Total branch length: 4*1 + 3*1.5 + 2*1.5 = 11.5; matches the tree.
        assert!((iv.total_branch_length() - 11.5).abs() < 1e-12);
        assert!((four_tip_tree().total_branch_length() - 11.5).abs() < 1e-12);
    }

    #[test]
    fn serial_samples_increase_lineage_count_mid_history() {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let late = b.add_tip("late", 2.0); // sampled in the past
        let a = b.join(t0, t1, 1.0);
        b.join(a, late, 3.0);
        let iv = b.build().unwrap().intervals();
        let ks: Vec<usize> = iv.intervals().iter().map(|i| i.lineages).collect();
        // 2 lineages from 0..1, 1 lineage 1..2, 2 lineages 2..3.
        assert_eq!(ks, vec![2, 1, 2]);
        let coalescing: Vec<bool> = iv.intervals().iter().map(|i| i.ends_in_coalescence).collect();
        assert_eq!(coalescing, vec![true, false, true]);
        assert_eq!(iv.n_coalescences(), 2);
    }

    #[test]
    fn two_tip_tree_is_a_single_interval() {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        b.join(x, y, 0.7);
        let iv = b.build().unwrap().intervals();
        assert_eq!(iv.intervals().len(), 1);
        assert_eq!(iv.intervals()[0].lineages, 2);
        assert!((iv.intervals()[0].length - 0.7).abs() < 1e-12);
        assert!((iv.waiting_statistic() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn from_intervals_round_trip() {
        let iv = four_tip_tree().intervals();
        let rebuilt = CoalescentIntervals::from_intervals(iv.intervals().to_vec());
        assert_eq!(rebuilt, iv);
        assert_eq!(rebuilt.n_coalescences(), 3);
    }

    #[test]
    fn simultaneous_coalescences_are_handled() {
        // Two cherries at exactly the same time then a root: the zero-length
        // interval between the simultaneous events is skipped.
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let a = b.join(t0, t1, 1.0);
        let c = b.join(t2, t3, 1.0);
        b.join(a, c, 2.0);
        let iv = b.build().unwrap().intervals();
        let ks: Vec<usize> = iv.intervals().iter().map(|i| i.lineages).collect();
        assert_eq!(ks, vec![4, 2]);
        assert_eq!(iv.n_coalescences(), 3);
    }
}
