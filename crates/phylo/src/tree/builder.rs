//! Incremental construction of genealogies.

use super::{GeneTree, NodeId, NodeRecord};
use crate::error::PhyloError;

/// Builds a [`GeneTree`] by adding tips and joining nodes bottom-up.
///
/// The builder mirrors how a coalescent history is narrated: tips exist at
/// the present, and each `join` is one coalescent event at a given time. The
/// accumulated rows are handed to the columnar table constructor on
/// [`TreeBuilder::build`].
#[derive(Debug, Default, Clone)]
pub struct TreeBuilder {
    rows: Vec<NodeRecord>,
    n_tips: usize,
}

impl TreeBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        TreeBuilder { rows: Vec::new(), n_tips: 0 }
    }

    /// Add a labelled tip at the given time (0 for contemporary samples).
    pub fn add_tip(&mut self, label: impl Into<String>, time: f64) -> NodeId {
        let id = self.rows.len();
        self.rows.push(NodeRecord {
            parent: None,
            children: None,
            time,
            label: Some(label.into()),
        });
        self.n_tips += 1;
        id
    }

    /// Join two parentless nodes under a new interior node at `time`,
    /// returning the new node's id.
    ///
    /// # Panics
    /// Panics if either node already has a parent or if `a == b`.
    pub fn join(&mut self, a: NodeId, b: NodeId, time: f64) -> NodeId {
        assert_ne!(a, b, "cannot join a node with itself");
        assert!(self.rows[a].parent.is_none(), "node {a} already has a parent");
        assert!(self.rows[b].parent.is_none(), "node {b} already has a parent");
        let id = self.rows.len();
        self.rows.push(NodeRecord { parent: None, children: Some((a, b)), time, label: None });
        self.rows[a].parent = Some(id);
        self.rows[b].parent = Some(id);
        id
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.rows.len()
    }

    /// Number of tips added so far.
    pub fn n_tips(&self) -> usize {
        self.n_tips
    }

    /// Ids of the nodes that currently have no parent (the "active roots").
    pub fn orphans(&self) -> Vec<NodeId> {
        (0..self.rows.len()).filter(|&i| self.rows[i].parent.is_none()).collect()
    }

    /// The time of a node added so far.
    pub fn time(&self, node: NodeId) -> f64 {
        self.rows[node].time
    }

    /// Finish building. Fails unless exactly one parentless node remains
    /// (the root) and the tree passes [`GeneTree::validate`].
    pub fn build(self) -> Result<GeneTree, PhyloError> {
        if self.n_tips == 0 {
            return Err(PhyloError::Empty { what: "tree" });
        }
        let orphans = self.orphans();
        if orphans.len() != 1 {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "expected exactly one root, found {} parentless nodes",
                    orphans.len()
                ),
            });
        }
        GeneTree::from_node_records(self.rows, orphans[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_tree() {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        assert_eq!(b.n_tips(), 2);
        assert_eq!(b.orphans(), vec![x, y]);
        let r = b.join(x, y, 1.0);
        assert_eq!(b.n_nodes(), 3);
        assert_eq!(b.time(r), 1.0);
        let tree = b.build().unwrap();
        assert_eq!(tree.root(), r);
        assert_eq!(tree.n_tips(), 2);
        assert_eq!(tree.children(r), Some((x, y)));
    }

    #[test]
    fn rejects_empty_and_forest() {
        assert!(matches!(TreeBuilder::new().build(), Err(PhyloError::Empty { .. })));

        let mut b = TreeBuilder::new();
        b.add_tip("a", 0.0);
        b.add_tip("b", 0.0);
        // Two orphans, no join: not a tree.
        assert!(matches!(b.build(), Err(PhyloError::InvalidTree { .. })));
    }

    #[test]
    fn rejects_time_inversions_at_build() {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        let z = b.add_tip("z", 0.0);
        let inner = b.join(x, y, 2.0);
        // Root younger than its child: invalid.
        let _root = b.join(inner, z, 1.0);
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn join_rejects_reuse() {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.0);
        let z = b.add_tip("z", 0.0);
        b.join(x, y, 1.0);
        b.join(x, z, 2.0);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn join_rejects_self_join() {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        b.join(x, x, 1.0);
    }

    #[test]
    fn serially_sampled_tips_are_allowed() {
        let mut b = TreeBuilder::new();
        let x = b.add_tip("x", 0.0);
        let y = b.add_tip("y", 0.5);
        let r = b.join(x, y, 2.0);
        let tree = b.build().unwrap();
        assert_eq!(tree.time(y), 0.5);
        assert_eq!(tree.branch_length(y), Some(1.5));
        assert_eq!(tree.root(), r);
    }
}
