//! Genealogy trees.
//!
//! A [`GeneTree`] is a rooted, binary coalescent tree: tips carry the sampled
//! sequences (time 0 unless serially sampled) and each interior node is a
//! coalescent event with a time measured backwards from the present (larger =
//! older). This is the `G` of the paper. The structure supports the queries
//! the samplers need — parents, children, siblings, post-order traversal for
//! the pruning likelihood, the neighborhood queries of the proposal kernel
//! (Figures 7–10) — and the in-place surgery the proposal kernel performs
//! (retiming and re-wiring the target node and its parent).
//!
//! Since the columnar port, a `GeneTree` is a thin *view* over
//! [`TreeTables`] — node ids are unchanged (arena
//! indices), but the storage is five copy-on-write columns, so
//! [`GeneTree::clone`] is an O(1) snapshot instead of a deep copy. The
//! pointer-arena representation it replaced survives as
//! [`legacy::LegacyTree`], the oracle of the differential test harness.

mod builder;
mod intervals;
pub mod legacy;

pub use builder::TreeBuilder;
pub use intervals::{CoalescentIntervals, Interval};

use crate::error::PhyloError;
use crate::tables::TreeTables;

/// Index of a node within a [`GeneTree`] arena.
pub type NodeId = usize;

/// A rooted binary genealogy with node times, backed by columnar
/// copy-on-write [`TreeTables`].
///
/// Cloning takes an O(1) snapshot: the clone shares every column slab with
/// the original and either side materialises only the slabs it subsequently
/// mutates. Value semantics are fully preserved — a clone never observes the
/// original's later writes, and vice versa.
#[derive(Debug)]
pub struct GeneTree {
    tables: TreeTables,
}

impl Clone for GeneTree {
    fn clone(&self) -> Self {
        GeneTree { tables: self.tables.snapshot() }
    }
}

impl PartialEq for GeneTree {
    /// Semantic equality: same root, tip count, and per-node
    /// parent/children/time/label. Trees that still share all their storage
    /// (snapshot never diverged) short-circuit to `true` without touching
    /// node data — the likelihood engine's generator-memo check rides this
    /// fast path.
    fn eq(&self, other: &Self) -> bool {
        if self.tables.shares_storage_with(&other.tables) {
            return self.root() == other.root() && self.n_tips() == other.n_tips();
        }
        if self.root() != other.root()
            || self.n_tips() != other.n_tips()
            || self.n_nodes() != other.n_nodes()
        {
            return false;
        }
        (0..self.n_nodes()).all(|n| {
            self.tables.parent_of(n) == other.tables.parent_of(n)
                && self.tables.children_of(n) == other.tables.children_of(n)
                && self.tables.time_of(n) == other.tables.time_of(n)
                && self.tables.label_of(n) == other.tables.label_of(n)
        })
    }
}

/// A plain-data description of one [`GeneTree`] node, in arena order — the
/// serialisation surface of a genealogy. [`GeneTree::node_records`] and
/// [`GeneTree::from_node_records`] round-trip a tree through these records
/// preserving the exact arena layout (indices, times, labels), which is what
/// lets a resumed sampler replay bit-identically: node ids recorded in
/// traces and caches stay valid.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Parent node id, `None` for the root.
    pub parent: Option<NodeId>,
    /// The two children, `None` for a tip.
    pub children: Option<(NodeId, NodeId)>,
    /// Node time (0 = present, larger = older).
    pub time: f64,
    /// Tip label, `None` for interior nodes.
    pub label: Option<String>,
}

impl GeneTree {
    /// The columnar node table backing this tree (read-only). Mutation goes
    /// through the `GeneTree` surgery methods, which preserve copy-on-write
    /// value semantics.
    pub fn tables(&self) -> &TreeTables {
        &self.tables
    }

    /// Export the arena as plain records (see [`NodeRecord`]).
    pub fn node_records(&self) -> Vec<NodeRecord> {
        self.tables.to_records()
    }

    /// Rebuild a tree from records produced by [`GeneTree::node_records`],
    /// preserving the exact arena layout. The reconstructed tree is fully
    /// validated (pointer consistency, reachability, age ordering), so a
    /// corrupted or hand-edited serialisation is rejected rather than
    /// silently producing a broken genealogy.
    pub fn from_node_records(records: Vec<NodeRecord>, root: NodeId) -> Result<Self, PhyloError> {
        let n_tips = records.iter().filter(|r| r.children.is_none()).count();
        if n_tips == 0 {
            return Err(PhyloError::InvalidTree { message: "tree records contain no tips".into() });
        }
        let tree = GeneTree { tables: TreeTables::from_records(&records, root)? };
        tree.validate()?;
        Ok(tree)
    }

    /// Number of tips (sampled sequences).
    pub fn n_tips(&self) -> usize {
        self.tables.n_tips()
    }

    /// Total number of nodes (`2 · n_tips − 1` for a binary tree).
    pub fn n_nodes(&self) -> usize {
        self.tables.n_nodes()
    }

    /// Number of interior (coalescent) nodes.
    pub fn n_internal(&self) -> usize {
        self.n_nodes() - self.n_tips()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.tables.root()
    }

    /// Whether `node` is a tip.
    pub fn is_tip(&self, node: NodeId) -> bool {
        self.tables.left_child_of(node).is_none()
    }

    /// Whether `node` is the root.
    pub fn is_root(&self, node: NodeId) -> bool {
        node == self.root()
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.tables.parent_of(node)
    }

    /// The two children of an interior node, or `None` for a tip.
    pub fn children(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        self.tables.children_of(node)
    }

    /// The sibling of `node` (the other child of its parent), or `None` for
    /// the root.
    pub fn sibling(&self, node: NodeId) -> Option<NodeId> {
        let parent = self.parent(node)?;
        let (a, b) = self.children(parent).expect("parent must be interior");
        Some(if a == node { b } else { a })
    }

    /// The grandparent of `node`, if any.
    pub fn grandparent(&self, node: NodeId) -> Option<NodeId> {
        self.parent(self.parent(node)?)
    }

    /// The time of `node` (0 = present, larger = older).
    pub fn time(&self, node: NodeId) -> f64 {
        self.tables.time_of(node)
    }

    /// Set the time of `node`. The caller is responsible for keeping times
    /// consistent with the topology (checked by [`GeneTree::validate`]).
    pub fn set_time(&mut self, node: NodeId, time: f64) {
        self.tables.set_time_of(node, time);
    }

    /// The tip label, if this node is a labelled tip.
    pub fn label(&self, node: NodeId) -> Option<&str> {
        self.tables.label_of(node)
    }

    /// The branch length above `node` (to its parent), or `None` for the root.
    pub fn branch_length(&self, node: NodeId) -> Option<f64> {
        let parent = self.parent(node)?;
        Some(self.time(parent) - self.time(node))
    }

    /// All tip node ids, in arena order.
    pub fn tips(&self) -> Vec<NodeId> {
        (0..self.n_nodes()).filter(|&i| self.is_tip(i)).collect()
    }

    /// All interior node ids, in arena order.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        (0..self.n_nodes()).filter(|&i| !self.is_tip(i)).collect()
    }

    /// Interior nodes other than the root — the candidate targets of the
    /// proposal kernel's auxiliary variable φ (Section 4.3).
    pub fn non_root_internal_nodes(&self) -> Vec<NodeId> {
        (0..self.n_nodes()).filter(|&i| !self.is_tip(i) && !self.is_root(i)).collect()
    }

    /// Post-order traversal from the root (children before parents), the
    /// order required by the pruning likelihood (Section 2.4).
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n_nodes());
        let mut stack = vec![(self.root(), false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded || self.is_tip(node) {
                order.push(node);
            } else {
                stack.push((node, true));
                let (a, b) = self.children(node).expect("interior node");
                stack.push((b, false));
                stack.push((a, false));
            }
        }
        order
    }

    /// The time of the most recent common ancestor (the root time).
    pub fn tmrca(&self) -> f64 {
        self.time(self.root())
    }

    /// Sum of all branch lengths.
    pub fn total_branch_length(&self) -> f64 {
        (0..self.n_nodes()).filter_map(|i| self.branch_length(i)).sum()
    }

    /// Multiply every node time by `factor` (used when scaling the UPGMA
    /// starting tree by the driving θ, Section 5.1.3).
    pub fn scale_times(&mut self, factor: f64) {
        self.tables.scale_times(factor);
    }

    /// Re-wire `node` to have children `(a, b)`. The children's parent
    /// pointers are updated; the *previous* children of `node` keep their
    /// (now stale) parent pointers and must be re-wired by the caller —
    /// this is the primitive the proposal kernel uses when it reassembles the
    /// dissolved neighborhood, and a full [`GeneTree::validate`] in debug
    /// builds guards against leaving the tree inconsistent.
    pub fn set_children(&mut self, node: NodeId, a: NodeId, b: NodeId) {
        self.tables.set_children_of(node, a, b);
    }

    /// Replace `old_child` with `new_child` among the children of `parent`.
    ///
    /// # Panics
    /// Panics if `old_child` is not currently a child of `parent`.
    pub fn replace_child(&mut self, parent: NodeId, old_child: NodeId, new_child: NodeId) {
        self.tables.replace_child_of(parent, old_child, new_child);
    }

    /// Declare `node` to be the root (clearing its parent pointer).
    pub fn set_root(&mut self, node: NodeId) {
        self.tables.set_root_node(node);
    }

    /// All node times of interior nodes (the coalescent event times).
    pub fn coalescence_times(&self) -> Vec<f64> {
        self.internal_nodes().iter().map(|&n| self.time(n)).collect()
    }

    /// Extract the coalescent intervals of this genealogy (Figure 3).
    pub fn intervals(&self) -> CoalescentIntervals {
        CoalescentIntervals::from_tree(self)
    }

    /// Check structural invariants: parent/child links are mutually
    /// consistent, every non-root node is reachable from the root, node
    /// count is `2·n_tips − 1`, every parent is strictly older than its
    /// children, and the columnar sibling links carry no stale wiring
    /// ([`TreeTables::check_links`]).
    pub fn validate(&self) -> Result<(), PhyloError> {
        if self.n_nodes() != 2 * self.n_tips() - 1 {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "expected {} nodes for {} tips, found {}",
                    2 * self.n_tips() - 1,
                    self.n_tips(),
                    self.n_nodes()
                ),
            });
        }
        if self.parent(self.root()).is_some() {
            return Err(PhyloError::InvalidTree { message: "root has a parent".into() });
        }
        self.tables.check_links().map_err(|message| PhyloError::InvalidTree { message })?;
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![self.root()];
        while let Some(node) = stack.pop() {
            if seen[node] {
                return Err(PhyloError::InvalidTree {
                    message: format!("node {node} reachable twice (cycle or shared child)"),
                });
            }
            seen[node] = true;
            if let Some((a, b)) = self.children(node) {
                for child in [a, b] {
                    if self.parent(child) != Some(node) {
                        return Err(PhyloError::InvalidTree {
                            message: format!(
                                "child {child} of {node} has parent {:?}",
                                self.parent(child)
                            ),
                        });
                    }
                    if self.time(child) > self.time(node) + 1e-12 {
                        return Err(PhyloError::InvalidTree {
                            message: format!(
                                "child {child} (t={}) is older than parent {node} (t={})",
                                self.time(child),
                                self.time(node)
                            ),
                        });
                    }
                    stack.push(child);
                }
            }
        }
        if let Some(unreached) = seen.iter().position(|&s| !s) {
            return Err(PhyloError::InvalidTree {
                message: format!("node {unreached} is not reachable from the root"),
            });
        }
        Ok(())
    }

    /// The tip labels in arena order (unlabelled tips are reported as their
    /// index).
    pub fn tip_labels(&self) -> Vec<String> {
        self.tips()
            .into_iter()
            .map(|t| self.label(t).map(str::to_string).unwrap_or_else(|| t.to_string()))
            .collect()
    }

    /// Find a tip by label.
    pub fn tip_by_label(&self, label: &str) -> Option<NodeId> {
        self.tips().into_iter().find(|&t| self.label(t) == Some(label))
    }

    /// The most recent common ancestor of two nodes.
    pub fn mrca(&self, a: NodeId, b: NodeId) -> NodeId {
        // BTreeSet, not HashSet: membership-only today, but keeping the
        // sampler path free of unordered collections is invariant D1.
        let mut ancestors = std::collections::BTreeSet::new();
        let mut x = a;
        ancestors.insert(x);
        while let Some(p) = self.parent(x) {
            ancestors.insert(p);
            x = p;
        }
        let mut y = b;
        loop {
            if ancestors.contains(&y) {
                return y;
            }
            y = self.parent(y).expect("reached the root without finding the MRCA");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the five-tip example used throughout the tests:
    ///
    /// ```text
    /// time 4.0          r
    ///                  / \
    /// time 3.0        u   \
    ///                / \   \
    /// time 1.5      v   \   \
    ///              / \   \   \
    /// tips:       t0  t1  t2  w (time 2.0)
    ///                            \
    ///                            t3  t4
    /// ```
    ///
    /// Concretely: v = (t0,t1)@1.5, u = (v,t2)@3.0, w = (t3,t4)@2.0,
    /// r = (u,w)@4.0.
    fn five_tip_tree() -> GeneTree {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let t4 = b.add_tip("t4", 0.0);
        let v = b.join(t0, t1, 1.5);
        let u = b.join(v, t2, 3.0);
        let w = b.join(t3, t4, 2.0);
        let _r = b.join(u, w, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_root() {
        let t = five_tip_tree();
        assert_eq!(t.n_tips(), 5);
        assert_eq!(t.n_nodes(), 9);
        assert_eq!(t.n_internal(), 4);
        assert_eq!(t.tmrca(), 4.0);
        assert!(t.is_root(t.root()));
        assert!(!t.is_tip(t.root()));
        assert_eq!(t.non_root_internal_nodes().len(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn relationships() {
        let t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let t1 = t.tip_by_label("t1").unwrap();
        let t2 = t.tip_by_label("t2").unwrap();
        let v = t.parent(t0).unwrap();
        assert_eq!(t.parent(t1), Some(v));
        assert_eq!(t.sibling(t0), Some(t1));
        assert_eq!(t.time(v), 1.5);
        let u = t.parent(v).unwrap();
        assert_eq!(t.sibling(v), Some(t2));
        assert_eq!(t.grandparent(t0), Some(u));
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.sibling(t.root()), None);
        assert_eq!(t.grandparent(v), Some(t.root()));
        assert_eq!(t.branch_length(v), Some(1.5));
        assert_eq!(t.branch_length(t.root()), None);
        assert_eq!(t.mrca(t0, t2), u);
        assert_eq!(t.mrca(t0, t1), v);
        assert_eq!(t.mrca(t0, t.tip_by_label("t4").unwrap()), t.root());
    }

    #[test]
    fn post_order_visits_children_before_parents() {
        let t = five_tip_tree();
        let order = t.post_order();
        assert_eq!(order.len(), t.n_nodes());
        let position: Vec<usize> = {
            let mut pos = vec![0; t.n_nodes()];
            for (i, &n) in order.iter().enumerate() {
                pos[n] = i;
            }
            pos
        };
        for node in t.internal_nodes() {
            let (a, b) = t.children(node).unwrap();
            assert!(position[a] < position[node]);
            assert!(position[b] < position[node]);
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn total_branch_length_and_scaling() {
        let t = five_tip_tree();
        // Branch lengths: t0,t1 ->1.5 each; t2 -> 3.0; t3,t4 -> 2.0 each;
        // v -> 1.5; u -> 1.0; w -> 2.0. Total = 1.5+1.5+3+2+2+1.5+1+2 = 14.5.
        assert!((t.total_branch_length() - 14.5).abs() < 1e-12);
        let mut scaled = t.clone();
        scaled.scale_times(2.0);
        assert!((scaled.total_branch_length() - 29.0).abs() < 1e-12);
        assert_eq!(scaled.tmrca(), 8.0);
        scaled.validate().unwrap();
        // The clone diverged; the original is untouched (CoW value
        // semantics).
        assert_eq!(t.tmrca(), 4.0);
        assert!((t.total_branch_length() - 14.5).abs() < 1e-12);
    }

    #[test]
    fn tip_queries() {
        let t = five_tip_tree();
        assert_eq!(t.tips().len(), 5);
        assert_eq!(t.internal_nodes().len(), 4);
        assert_eq!(t.tip_labels(), vec!["t0", "t1", "t2", "t3", "t4"]);
        assert!(t.tip_by_label("nope").is_none());
        assert_eq!(t.label(t.root()), None);
        assert_eq!(t.coalescence_times().len(), 4);
    }

    #[test]
    fn surgery_primitives_rewire_consistently() {
        let mut t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let t2 = t.tip_by_label("t2").unwrap();
        let v = t.parent(t0).unwrap();
        let u = t.parent(v).unwrap();
        // Swap t0 and t2 between v and u: v = (t2, t1), u = (v, t0).
        let t1 = t.sibling(t0).unwrap();
        t.set_children(v, t2, t1);
        t.set_children(u, v, t0);
        t.validate().unwrap();
        assert_eq!(t.sibling(t2), Some(t1));
        assert_eq!(t.sibling(v), Some(t0));

        // replace_child: hang w's subtree where t0 was (and vice versa would
        // break the tree, so only do one side and then undo it).
        let err_tree = {
            let mut bad = t.clone();
            bad.set_time(v, 10.0); // v older than its parent u
            bad.validate()
        };
        assert!(err_tree.is_err());
    }

    #[test]
    fn replace_child_updates_parent_pointer() {
        let mut t = five_tip_tree();
        let t3 = t.tip_by_label("t3").unwrap();
        let t4 = t.tip_by_label("t4").unwrap();
        let w = t.parent(t3).unwrap();
        // Detach t4, attach t3's sibling slot to a clone of t4's position —
        // simplest valid exercise: replace t4 with t4 (no-op wiring) and
        // verify pointers.
        t.replace_child(w, t4, t4);
        assert_eq!(t.parent(t4), Some(w));
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "not a child")]
    fn replace_child_panics_for_non_child() {
        let mut t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let t3 = t.tip_by_label("t3").unwrap();
        let w = t.parent(t3).unwrap();
        t.replace_child(w, t0, t3);
    }

    #[test]
    fn node_records_round_trip_preserves_the_exact_arena() {
        let t = five_tip_tree();
        let records = t.node_records();
        assert_eq!(records.len(), t.n_nodes());
        let rebuilt = GeneTree::from_node_records(records, t.root()).unwrap();
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.n_tips(), 5);
        assert_eq!(rebuilt.tip_labels(), t.tip_labels());
    }

    #[test]
    fn from_node_records_rejects_corrupted_serialisations() {
        let t = five_tip_tree();
        // Out-of-range root.
        assert!(GeneTree::from_node_records(t.node_records(), t.n_nodes()).is_err());
        // Out-of-range child pointer.
        let mut bad = t.node_records();
        let interior = (0..bad.len()).find(|&i| bad[i].children.is_some()).unwrap();
        bad[interior].children = Some((0, 999));
        assert!(GeneTree::from_node_records(bad, t.root()).is_err());
        // Inconsistent parent pointer.
        let mut bad = t.node_records();
        let tip = (0..bad.len()).find(|&i| bad[i].children.is_none()).unwrap();
        bad[tip].parent = Some(t.root());
        assert!(GeneTree::from_node_records(bad, t.root()).is_err());
        // No tips at all.
        assert!(GeneTree::from_node_records(Vec::new(), 0).is_err());
    }

    #[test]
    fn validation_catches_broken_trees() {
        let mut t = five_tip_tree();
        // Break a parent pointer directly through surgery primitives:
        // point the root's children at the same node twice via set_children.
        let t0 = t.tip_by_label("t0").unwrap();
        let t1 = t.tip_by_label("t1").unwrap();
        let root = t.root();
        t.set_children(root, t0, t1);
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn set_children_rejects_duplicates() {
        let mut t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let root = t.root();
        t.set_children(root, t0, t0);
    }

    #[test]
    fn clone_is_a_cheap_snapshot_with_value_semantics() {
        use crate::tables::cow_stats;
        let mut t = five_tip_tree();
        let before = cow_stats();
        let snap = t.clone();
        let delta = cow_stats().since(&before);
        assert_eq!(delta.snapshots, 1);
        assert_eq!(delta.slab_allocs + delta.slab_cow_clones, 0);
        assert_eq!(snap, t);

        // Diverge the original; the snapshot must be unaffected.
        let root = t.root();
        t.set_time(root, 9.0);
        assert_eq!(snap.tmrca(), 4.0);
        assert_eq!(t.tmrca(), 9.0);
        assert_ne!(snap, t);
        snap.validate().unwrap();
        t.validate().unwrap();
    }
}
