//! Genealogy trees.
//!
//! A [`GeneTree`] is a rooted, binary coalescent tree stored in an arena:
//! tips carry the sampled sequences (time 0 unless serially sampled) and each
//! interior node is a coalescent event with a time measured backwards from
//! the present (larger = older). This is the `G` of the paper. The structure
//! supports the queries the samplers need — parents, children, siblings,
//! post-order traversal for the pruning likelihood, the neighborhood queries
//! of the proposal kernel (Figures 7–10) — and the in-place surgery the
//! proposal kernel performs (retiming and re-wiring the target node and its
//! parent).

mod builder;
mod intervals;

pub use builder::TreeBuilder;
pub use intervals::{CoalescentIntervals, Interval};

use crate::error::PhyloError;

/// Index of a node within a [`GeneTree`] arena.
pub type NodeId = usize;

/// One node of a genealogy.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Option<(NodeId, NodeId)>,
    pub(crate) time: f64,
    pub(crate) label: Option<String>,
}

/// A rooted binary genealogy with node times.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneTree {
    nodes: Vec<Node>,
    root: NodeId,
    n_tips: usize,
}

/// A plain-data description of one [`GeneTree`] node, in arena order — the
/// serialisation surface of a genealogy. [`GeneTree::node_records`] and
/// [`GeneTree::from_node_records`] round-trip a tree through these records
/// preserving the exact arena layout (indices, times, labels), which is what
/// lets a resumed sampler replay bit-identically: node ids recorded in
/// traces and caches stay valid.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Parent node id, `None` for the root.
    pub parent: Option<NodeId>,
    /// The two children, `None` for a tip.
    pub children: Option<(NodeId, NodeId)>,
    /// Node time (0 = present, larger = older).
    pub time: f64,
    /// Tip label, `None` for interior nodes.
    pub label: Option<String>,
}

impl GeneTree {
    pub(crate) fn from_parts(nodes: Vec<Node>, root: NodeId, n_tips: usize) -> Self {
        GeneTree { nodes, root, n_tips }
    }

    /// Export the arena as plain records (see [`NodeRecord`]).
    pub fn node_records(&self) -> Vec<NodeRecord> {
        self.nodes
            .iter()
            .map(|node| NodeRecord {
                parent: node.parent,
                children: node.children,
                time: node.time,
                label: node.label.clone(),
            })
            .collect()
    }

    /// Rebuild a tree from records produced by [`GeneTree::node_records`],
    /// preserving the exact arena layout. The reconstructed tree is fully
    /// validated (pointer consistency, reachability, age ordering), so a
    /// corrupted or hand-edited serialisation is rejected rather than
    /// silently producing a broken genealogy.
    pub fn from_node_records(records: Vec<NodeRecord>, root: NodeId) -> Result<Self, PhyloError> {
        let n_tips = records.iter().filter(|r| r.children.is_none()).count();
        if n_tips == 0 {
            return Err(PhyloError::InvalidTree { message: "tree records contain no tips".into() });
        }
        if root >= records.len() {
            return Err(PhyloError::InvalidTree {
                message: format!("root id {root} out of range for {} nodes", records.len()),
            });
        }
        for record in &records {
            for id in record.parent.iter().chain(record.children.iter().flat_map(|(a, b)| [a, b])) {
                if *id >= records.len() {
                    return Err(PhyloError::InvalidTree {
                        message: format!("node id {id} out of range for {} nodes", records.len()),
                    });
                }
            }
        }
        let nodes = records
            .into_iter()
            .map(|r| Node { parent: r.parent, children: r.children, time: r.time, label: r.label })
            .collect();
        let tree = GeneTree { nodes, root, n_tips };
        tree.validate()?;
        Ok(tree)
    }

    /// Number of tips (sampled sequences).
    pub fn n_tips(&self) -> usize {
        self.n_tips
    }

    /// Total number of nodes (`2 · n_tips − 1` for a binary tree).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of interior (coalescent) nodes.
    pub fn n_internal(&self) -> usize {
        self.n_nodes() - self.n_tips()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Whether `node` is a tip.
    pub fn is_tip(&self, node: NodeId) -> bool {
        self.nodes[node].children.is_none()
    }

    /// Whether `node` is the root.
    pub fn is_root(&self, node: NodeId) -> bool {
        node == self.root
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node].parent
    }

    /// The two children of an interior node, or `None` for a tip.
    pub fn children(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[node].children
    }

    /// The sibling of `node` (the other child of its parent), or `None` for
    /// the root.
    pub fn sibling(&self, node: NodeId) -> Option<NodeId> {
        let parent = self.parent(node)?;
        let (a, b) = self.children(parent).expect("parent must be interior");
        Some(if a == node { b } else { a })
    }

    /// The grandparent of `node`, if any.
    pub fn grandparent(&self, node: NodeId) -> Option<NodeId> {
        self.parent(self.parent(node)?)
    }

    /// The time of `node` (0 = present, larger = older).
    pub fn time(&self, node: NodeId) -> f64 {
        self.nodes[node].time
    }

    /// Set the time of `node`. The caller is responsible for keeping times
    /// consistent with the topology (checked by [`GeneTree::validate`]).
    pub fn set_time(&mut self, node: NodeId, time: f64) {
        self.nodes[node].time = time;
    }

    /// The tip label, if this node is a labelled tip.
    pub fn label(&self, node: NodeId) -> Option<&str> {
        self.nodes[node].label.as_deref()
    }

    /// The branch length above `node` (to its parent), or `None` for the root.
    pub fn branch_length(&self, node: NodeId) -> Option<f64> {
        let parent = self.parent(node)?;
        Some(self.time(parent) - self.time(node))
    }

    /// All tip node ids, in arena order.
    pub fn tips(&self) -> Vec<NodeId> {
        (0..self.n_nodes()).filter(|&i| self.is_tip(i)).collect()
    }

    /// All interior node ids, in arena order.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        (0..self.n_nodes()).filter(|&i| !self.is_tip(i)).collect()
    }

    /// Interior nodes other than the root — the candidate targets of the
    /// proposal kernel's auxiliary variable φ (Section 4.3).
    pub fn non_root_internal_nodes(&self) -> Vec<NodeId> {
        (0..self.n_nodes()).filter(|&i| !self.is_tip(i) && !self.is_root(i)).collect()
    }

    /// Post-order traversal from the root (children before parents), the
    /// order required by the pruning likelihood (Section 2.4).
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n_nodes());
        let mut stack = vec![(self.root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded || self.is_tip(node) {
                order.push(node);
            } else {
                stack.push((node, true));
                let (a, b) = self.children(node).expect("interior node");
                stack.push((b, false));
                stack.push((a, false));
            }
        }
        order
    }

    /// The time of the most recent common ancestor (the root time).
    pub fn tmrca(&self) -> f64 {
        self.time(self.root)
    }

    /// Sum of all branch lengths.
    pub fn total_branch_length(&self) -> f64 {
        (0..self.n_nodes()).filter_map(|i| self.branch_length(i)).sum()
    }

    /// Multiply every node time by `factor` (used when scaling the UPGMA
    /// starting tree by the driving θ, Section 5.1.3).
    pub fn scale_times(&mut self, factor: f64) {
        for node in &mut self.nodes {
            node.time *= factor;
        }
    }

    /// Re-wire `node` to have children `(a, b)`. The children's parent
    /// pointers are updated; the *previous* children of `node` keep their
    /// (now stale) parent pointers and must be re-wired by the caller —
    /// this is the primitive the proposal kernel uses when it reassembles the
    /// dissolved neighborhood, and a full [`GeneTree::validate`] in debug
    /// builds guards against leaving the tree inconsistent.
    pub fn set_children(&mut self, node: NodeId, a: NodeId, b: NodeId) {
        assert!(node != a && node != b && a != b, "set_children requires three distinct nodes");
        self.nodes[node].children = Some((a, b));
        self.nodes[a].parent = Some(node);
        self.nodes[b].parent = Some(node);
    }

    /// Replace `old_child` with `new_child` among the children of `parent`.
    ///
    /// # Panics
    /// Panics if `old_child` is not currently a child of `parent`.
    pub fn replace_child(&mut self, parent: NodeId, old_child: NodeId, new_child: NodeId) {
        let (a, b) = self.children(parent).expect("replace_child on a tip");
        if a == old_child {
            self.nodes[parent].children = Some((new_child, b));
        } else if b == old_child {
            self.nodes[parent].children = Some((a, new_child));
        } else {
            panic!("node {old_child} is not a child of {parent}");
        }
        self.nodes[new_child].parent = Some(parent);
    }

    /// Declare `node` to be the root (clearing its parent pointer).
    pub fn set_root(&mut self, node: NodeId) {
        self.root = node;
        self.nodes[node].parent = None;
    }

    /// All node times of interior nodes (the coalescent event times).
    pub fn coalescence_times(&self) -> Vec<f64> {
        self.internal_nodes().iter().map(|&n| self.time(n)).collect()
    }

    /// Extract the coalescent intervals of this genealogy (Figure 3).
    pub fn intervals(&self) -> CoalescentIntervals {
        CoalescentIntervals::from_tree(self)
    }

    /// Check structural invariants: parent/child pointers are mutually
    /// consistent, every non-root node is reachable from the root, node
    /// count is `2·n_tips − 1`, and every parent is strictly older than its
    /// children.
    pub fn validate(&self) -> Result<(), PhyloError> {
        if self.n_nodes() != 2 * self.n_tips - 1 {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "expected {} nodes for {} tips, found {}",
                    2 * self.n_tips - 1,
                    self.n_tips,
                    self.n_nodes()
                ),
            });
        }
        if self.nodes[self.root].parent.is_some() {
            return Err(PhyloError::InvalidTree { message: "root has a parent".into() });
        }
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if seen[node] {
                return Err(PhyloError::InvalidTree {
                    message: format!("node {node} reachable twice (cycle or shared child)"),
                });
            }
            seen[node] = true;
            if let Some((a, b)) = self.children(node) {
                for child in [a, b] {
                    if self.nodes[child].parent != Some(node) {
                        return Err(PhyloError::InvalidTree {
                            message: format!(
                                "child {child} of {node} has parent {:?}",
                                self.nodes[child].parent
                            ),
                        });
                    }
                    if self.time(child) > self.time(node) + 1e-12 {
                        return Err(PhyloError::InvalidTree {
                            message: format!(
                                "child {child} (t={}) is older than parent {node} (t={})",
                                self.time(child),
                                self.time(node)
                            ),
                        });
                    }
                    stack.push(child);
                }
            }
        }
        if let Some(unreached) = seen.iter().position(|&s| !s) {
            return Err(PhyloError::InvalidTree {
                message: format!("node {unreached} is not reachable from the root"),
            });
        }
        Ok(())
    }

    /// The tip labels in arena order (unlabelled tips are reported as their
    /// index).
    pub fn tip_labels(&self) -> Vec<String> {
        self.tips()
            .into_iter()
            .map(|t| self.label(t).map(str::to_string).unwrap_or_else(|| t.to_string()))
            .collect()
    }

    /// Find a tip by label.
    pub fn tip_by_label(&self, label: &str) -> Option<NodeId> {
        self.tips().into_iter().find(|&t| self.label(t) == Some(label))
    }

    /// The most recent common ancestor of two nodes.
    pub fn mrca(&self, a: NodeId, b: NodeId) -> NodeId {
        let mut ancestors = std::collections::HashSet::new();
        let mut x = a;
        ancestors.insert(x);
        while let Some(p) = self.parent(x) {
            ancestors.insert(p);
            x = p;
        }
        let mut y = b;
        loop {
            if ancestors.contains(&y) {
                return y;
            }
            y = self.parent(y).expect("reached the root without finding the MRCA");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the five-tip example used throughout the tests:
    ///
    /// ```text
    /// time 4.0          r
    ///                  / \
    /// time 3.0        u   \
    ///                / \   \
    /// time 1.5      v   \   \
    ///              / \   \   \
    /// tips:       t0  t1  t2  w (time 2.0)
    ///                            \
    ///                            t3  t4
    /// ```
    ///
    /// Concretely: v = (t0,t1)@1.5, u = (v,t2)@3.0, w = (t3,t4)@2.0,
    /// r = (u,w)@4.0.
    fn five_tip_tree() -> GeneTree {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let t4 = b.add_tip("t4", 0.0);
        let v = b.join(t0, t1, 1.5);
        let u = b.join(v, t2, 3.0);
        let w = b.join(t3, t4, 2.0);
        let _r = b.join(u, w, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_root() {
        let t = five_tip_tree();
        assert_eq!(t.n_tips(), 5);
        assert_eq!(t.n_nodes(), 9);
        assert_eq!(t.n_internal(), 4);
        assert_eq!(t.tmrca(), 4.0);
        assert!(t.is_root(t.root()));
        assert!(!t.is_tip(t.root()));
        assert_eq!(t.non_root_internal_nodes().len(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn relationships() {
        let t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let t1 = t.tip_by_label("t1").unwrap();
        let t2 = t.tip_by_label("t2").unwrap();
        let v = t.parent(t0).unwrap();
        assert_eq!(t.parent(t1), Some(v));
        assert_eq!(t.sibling(t0), Some(t1));
        assert_eq!(t.time(v), 1.5);
        let u = t.parent(v).unwrap();
        assert_eq!(t.sibling(v), Some(t2));
        assert_eq!(t.grandparent(t0), Some(u));
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.sibling(t.root()), None);
        assert_eq!(t.grandparent(v), Some(t.root()));
        assert_eq!(t.branch_length(v), Some(1.5));
        assert_eq!(t.branch_length(t.root()), None);
        assert_eq!(t.mrca(t0, t2), u);
        assert_eq!(t.mrca(t0, t1), v);
        assert_eq!(t.mrca(t0, t.tip_by_label("t4").unwrap()), t.root());
    }

    #[test]
    fn post_order_visits_children_before_parents() {
        let t = five_tip_tree();
        let order = t.post_order();
        assert_eq!(order.len(), t.n_nodes());
        let position: Vec<usize> = {
            let mut pos = vec![0; t.n_nodes()];
            for (i, &n) in order.iter().enumerate() {
                pos[n] = i;
            }
            pos
        };
        for node in t.internal_nodes() {
            let (a, b) = t.children(node).unwrap();
            assert!(position[a] < position[node]);
            assert!(position[b] < position[node]);
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn total_branch_length_and_scaling() {
        let t = five_tip_tree();
        // Branch lengths: t0,t1 ->1.5 each; t2 -> 3.0; t3,t4 -> 2.0 each;
        // v -> 1.5; u -> 1.0; w -> 2.0. Total = 1.5+1.5+3+2+2+1.5+1+2 = 14.5.
        assert!((t.total_branch_length() - 14.5).abs() < 1e-12);
        let mut scaled = t.clone();
        scaled.scale_times(2.0);
        assert!((scaled.total_branch_length() - 29.0).abs() < 1e-12);
        assert_eq!(scaled.tmrca(), 8.0);
        scaled.validate().unwrap();
    }

    #[test]
    fn tip_queries() {
        let t = five_tip_tree();
        assert_eq!(t.tips().len(), 5);
        assert_eq!(t.internal_nodes().len(), 4);
        assert_eq!(t.tip_labels(), vec!["t0", "t1", "t2", "t3", "t4"]);
        assert!(t.tip_by_label("nope").is_none());
        assert_eq!(t.label(t.root()), None);
        assert_eq!(t.coalescence_times().len(), 4);
    }

    #[test]
    fn surgery_primitives_rewire_consistently() {
        let mut t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let t2 = t.tip_by_label("t2").unwrap();
        let v = t.parent(t0).unwrap();
        let u = t.parent(v).unwrap();
        // Swap t0 and t2 between v and u: v = (t2, t1), u = (v, t0).
        let t1 = t.sibling(t0).unwrap();
        t.set_children(v, t2, t1);
        t.set_children(u, v, t0);
        t.validate().unwrap();
        assert_eq!(t.sibling(t2), Some(t1));
        assert_eq!(t.sibling(v), Some(t0));

        // replace_child: hang w's subtree where t0 was (and vice versa would
        // break the tree, so only do one side and then undo it).
        let err_tree = {
            let mut bad = t.clone();
            bad.set_time(v, 10.0); // v older than its parent u
            bad.validate()
        };
        assert!(err_tree.is_err());
    }

    #[test]
    fn replace_child_updates_parent_pointer() {
        let mut t = five_tip_tree();
        let t3 = t.tip_by_label("t3").unwrap();
        let t4 = t.tip_by_label("t4").unwrap();
        let w = t.parent(t3).unwrap();
        // Detach t4, attach t3's sibling slot to a clone of t4's position —
        // simplest valid exercise: replace t4 with t4 (no-op wiring) and
        // verify pointers.
        t.replace_child(w, t4, t4);
        assert_eq!(t.parent(t4), Some(w));
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "not a child")]
    fn replace_child_panics_for_non_child() {
        let mut t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let t3 = t.tip_by_label("t3").unwrap();
        let w = t.parent(t3).unwrap();
        t.replace_child(w, t0, t3);
    }

    #[test]
    fn node_records_round_trip_preserves_the_exact_arena() {
        let t = five_tip_tree();
        let records = t.node_records();
        assert_eq!(records.len(), t.n_nodes());
        let rebuilt = GeneTree::from_node_records(records, t.root()).unwrap();
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.n_tips(), 5);
        assert_eq!(rebuilt.tip_labels(), t.tip_labels());
    }

    #[test]
    fn from_node_records_rejects_corrupted_serialisations() {
        let t = five_tip_tree();
        // Out-of-range root.
        assert!(GeneTree::from_node_records(t.node_records(), t.n_nodes()).is_err());
        // Out-of-range child pointer.
        let mut bad = t.node_records();
        let interior = (0..bad.len()).find(|&i| bad[i].children.is_some()).unwrap();
        bad[interior].children = Some((0, 999));
        assert!(GeneTree::from_node_records(bad, t.root()).is_err());
        // Inconsistent parent pointer.
        let mut bad = t.node_records();
        let tip = (0..bad.len()).find(|&i| bad[i].children.is_none()).unwrap();
        bad[tip].parent = Some(t.root());
        assert!(GeneTree::from_node_records(bad, t.root()).is_err());
        // No tips at all.
        assert!(GeneTree::from_node_records(Vec::new(), 0).is_err());
    }

    #[test]
    fn validation_catches_broken_trees() {
        let mut t = five_tip_tree();
        // Break a parent pointer directly through surgery primitives:
        // point the root's children at the same node twice via set_children.
        let t0 = t.tip_by_label("t0").unwrap();
        let t1 = t.tip_by_label("t1").unwrap();
        let root = t.root();
        t.set_children(root, t0, t1);
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn set_children_rejects_duplicates() {
        let mut t = five_tip_tree();
        let t0 = t.tip_by_label("t0").unwrap();
        let root = t.root();
        t.set_children(root, t0, t0);
    }
}
