//! The pointer-arena genealogy representation the columnar tables replaced,
//! kept verbatim as the **oracle** of the differential test harness.
//!
//! [`LegacyTree`] stores each node as a struct of `Option` pointers — the
//! representation [`GeneTree`](crate::tree::GeneTree) used before the
//! `phylo::tables` port. It deep-clones, it interns nothing, and it is
//! deliberately *not* optimised: its value is that it is simple enough to
//! trust. The harness in `tests/harness/` replays randomized op tapes
//! against both representations and asserts bit-identical topology, times,
//! and serialized records at every step; any divergence is a bug in the
//! columnar encoding, not here.
//!
//! Only the operation surface the samplers actually use is reproduced:
//! queries, the two surgery primitives, retiming, and the
//! [`NodeRecord`]-based serialisation (shared with `GeneTree`, so records —
//! and therefore checkpoint bytes — compare directly).

use super::{NodeId, NodeRecord};
use crate::error::PhyloError;

/// One node of a legacy genealogy: the original pointer struct.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    parent: Option<NodeId>,
    children: Option<(NodeId, NodeId)>,
    time: f64,
    label: Option<String>,
}

/// A rooted binary genealogy in the original pointer-arena representation.
/// See the [module docs](self) for why this exists.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyTree {
    nodes: Vec<Node>,
    root: NodeId,
    n_tips: usize,
}

impl LegacyTree {
    /// Rebuild a tree from records (the same serialisation surface as
    /// [`GeneTree::from_node_records`](crate::tree::GeneTree::from_node_records)),
    /// with the same validation.
    pub fn from_node_records(records: Vec<NodeRecord>, root: NodeId) -> Result<Self, PhyloError> {
        let n_tips = records.iter().filter(|r| r.children.is_none()).count();
        if n_tips == 0 {
            return Err(PhyloError::InvalidTree { message: "tree records contain no tips".into() });
        }
        if root >= records.len() {
            return Err(PhyloError::InvalidTree {
                message: format!("root id {root} out of range for {} nodes", records.len()),
            });
        }
        for record in &records {
            for id in record.parent.iter().chain(record.children.iter().flat_map(|(a, b)| [a, b])) {
                if *id >= records.len() {
                    return Err(PhyloError::InvalidTree {
                        message: format!("node id {id} out of range for {} nodes", records.len()),
                    });
                }
            }
        }
        let nodes = records
            .into_iter()
            .map(|r| Node { parent: r.parent, children: r.children, time: r.time, label: r.label })
            .collect();
        let tree = LegacyTree { nodes, root, n_tips };
        tree.validate()?;
        Ok(tree)
    }

    /// Export the arena as plain records, in arena order.
    pub fn node_records(&self) -> Vec<NodeRecord> {
        self.nodes
            .iter()
            .map(|node| NodeRecord {
                parent: node.parent,
                children: node.children,
                time: node.time,
                label: node.label.clone(),
            })
            .collect()
    }

    /// Number of tips.
    pub fn n_tips(&self) -> usize {
        self.n_tips
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Whether `node` is a tip.
    pub fn is_tip(&self, node: NodeId) -> bool {
        self.nodes[node].children.is_none()
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node].parent
    }

    /// The two children of an interior node, or `None` for a tip.
    pub fn children(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[node].children
    }

    /// The sibling of `node`, or `None` for the root.
    pub fn sibling(&self, node: NodeId) -> Option<NodeId> {
        let parent = self.parent(node)?;
        let (a, b) = self.children(parent).expect("parent must be interior");
        Some(if a == node { b } else { a })
    }

    /// The time of `node`.
    pub fn time(&self, node: NodeId) -> f64 {
        self.nodes[node].time
    }

    /// Set the time of `node`.
    pub fn set_time(&mut self, node: NodeId, time: f64) {
        self.nodes[node].time = time;
    }

    /// The tip label, if this node is a labelled tip.
    pub fn label(&self, node: NodeId) -> Option<&str> {
        self.nodes[node].label.as_deref()
    }

    /// The branch length above `node`, or `None` for the root.
    pub fn branch_length(&self, node: NodeId) -> Option<f64> {
        let parent = self.parent(node)?;
        Some(self.time(parent) - self.time(node))
    }

    /// Post-order traversal from the root (children before parents) — the
    /// identical stack discipline to `GeneTree::post_order`, so traversal
    /// orders compare bit-for-bit.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n_nodes());
        let mut stack = vec![(self.root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded || self.is_tip(node) {
                order.push(node);
            } else {
                stack.push((node, true));
                let (a, b) = self.children(node).expect("interior node");
                stack.push((b, false));
                stack.push((a, false));
            }
        }
        order
    }

    /// The root time.
    pub fn tmrca(&self) -> f64 {
        self.time(self.root)
    }

    /// Sum of all branch lengths.
    pub fn total_branch_length(&self) -> f64 {
        (0..self.n_nodes()).filter_map(|i| self.branch_length(i)).sum()
    }

    /// Multiply every node time by `factor`.
    pub fn scale_times(&mut self, factor: f64) {
        for node in &mut self.nodes {
            node.time *= factor;
        }
    }

    /// Re-wire `node` to have children `(a, b)` — the original pointer
    /// semantics: previous children keep their stale parent pointers.
    pub fn set_children(&mut self, node: NodeId, a: NodeId, b: NodeId) {
        assert!(node != a && node != b && a != b, "set_children requires three distinct nodes");
        self.nodes[node].children = Some((a, b));
        self.nodes[a].parent = Some(node);
        self.nodes[b].parent = Some(node);
    }

    /// Replace `old_child` with `new_child` among the children of `parent`.
    ///
    /// # Panics
    /// Panics if `old_child` is not currently a child of `parent`.
    pub fn replace_child(&mut self, parent: NodeId, old_child: NodeId, new_child: NodeId) {
        let (a, b) = self.children(parent).expect("replace_child on a tip");
        if a == old_child {
            self.nodes[parent].children = Some((new_child, b));
        } else if b == old_child {
            self.nodes[parent].children = Some((a, new_child));
        } else {
            panic!("node {old_child} is not a child of {parent}");
        }
        self.nodes[new_child].parent = Some(parent);
    }

    /// Declare `node` to be the root (clearing its parent pointer).
    pub fn set_root(&mut self, node: NodeId) {
        self.root = node;
        self.nodes[node].parent = None;
    }

    /// The original structural validation: pointer symmetry, reachability,
    /// node count, age ordering.
    pub fn validate(&self) -> Result<(), PhyloError> {
        if self.n_nodes() != 2 * self.n_tips - 1 {
            return Err(PhyloError::InvalidTree {
                message: format!(
                    "expected {} nodes for {} tips, found {}",
                    2 * self.n_tips - 1,
                    self.n_tips,
                    self.n_nodes()
                ),
            });
        }
        if self.nodes[self.root].parent.is_some() {
            return Err(PhyloError::InvalidTree { message: "root has a parent".into() });
        }
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if seen[node] {
                return Err(PhyloError::InvalidTree {
                    message: format!("node {node} reachable twice (cycle or shared child)"),
                });
            }
            seen[node] = true;
            if let Some((a, b)) = self.children(node) {
                for child in [a, b] {
                    if self.nodes[child].parent != Some(node) {
                        return Err(PhyloError::InvalidTree {
                            message: format!(
                                "child {child} of {node} has parent {:?}",
                                self.nodes[child].parent
                            ),
                        });
                    }
                    if self.time(child) > self.time(node) + 1e-12 {
                        return Err(PhyloError::InvalidTree {
                            message: format!(
                                "child {child} (t={}) is older than parent {node} (t={})",
                                self.time(child),
                                self.time(node)
                            ),
                        });
                    }
                    stack.push(child);
                }
            }
        }
        if let Some(unreached) = seen.iter().position(|&s| !s) {
            return Err(PhyloError::InvalidTree {
                message: format!("node {unreached} is not reachable from the root"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::validate_genealogy_records;
    use crate::tree::{GeneTree, TreeBuilder};

    fn five_tip_records() -> (Vec<NodeRecord>, NodeId) {
        let mut b = TreeBuilder::new();
        let t0 = b.add_tip("t0", 0.0);
        let t1 = b.add_tip("t1", 0.0);
        let t2 = b.add_tip("t2", 0.0);
        let t3 = b.add_tip("t3", 0.0);
        let t4 = b.add_tip("t4", 0.0);
        let v = b.join(t0, t1, 1.5);
        let u = b.join(v, t2, 3.0);
        let w = b.join(t3, t4, 2.0);
        let _r = b.join(u, w, 4.0);
        let tree = b.build().unwrap();
        (tree.node_records(), tree.root())
    }

    #[test]
    fn mirrors_the_columnar_representation_exactly() {
        let (records, root) = five_tip_records();
        let legacy = LegacyTree::from_node_records(records.clone(), root).unwrap();
        let columnar = GeneTree::from_node_records(records.clone(), root).unwrap();
        assert_eq!(legacy.node_records(), columnar.node_records());
        assert_eq!(legacy.post_order(), columnar.post_order());
        assert_eq!(legacy.root(), columnar.root());
        assert_eq!(legacy.n_tips(), columnar.n_tips());
        for n in 0..legacy.n_nodes() {
            assert_eq!(legacy.parent(n), columnar.parent(n));
            assert_eq!(legacy.children(n), columnar.children(n));
            assert_eq!(legacy.sibling(n), columnar.sibling(n));
            assert_eq!(legacy.time(n).to_bits(), columnar.time(n).to_bits());
            assert_eq!(legacy.label(n), columnar.label(n));
        }
        // Both representations satisfy the shared structural contract.
        validate_genealogy_records(&legacy.node_records(), legacy.root()).unwrap();
        legacy.validate().unwrap();
    }

    #[test]
    fn surgery_matches_the_columnar_surgery() {
        let (records, root) = five_tip_records();
        let mut legacy = LegacyTree::from_node_records(records.clone(), root).unwrap();
        let mut columnar = GeneTree::from_node_records(records, root).unwrap();
        // The same swap exercised by the GeneTree unit tests.
        let v = legacy.parent(0).unwrap();
        let u = legacy.parent(v).unwrap();
        legacy.set_children(v, 2, 1);
        legacy.set_children(u, v, 0);
        legacy.set_time(v, 1.25);
        columnar.set_children(v, 2, 1);
        columnar.set_children(u, v, 0);
        columnar.set_time(v, 1.25);
        assert_eq!(legacy.node_records(), columnar.node_records());
        legacy.validate().unwrap();
        columnar.validate().unwrap();
    }

    #[test]
    fn rejects_the_same_corrupt_records() {
        let (records, root) = five_tip_records();
        assert!(LegacyTree::from_node_records(records.clone(), records.len()).is_err());
        let mut bad = records.clone();
        bad[0].parent = Some(root);
        assert!(LegacyTree::from_node_records(bad, root).is_err());
        assert!(LegacyTree::from_node_records(Vec::new(), 0).is_err());
    }
}
