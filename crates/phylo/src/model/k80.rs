//! The Kimura 1980 two-parameter (K80) substitution model.
//!
//! Transitions (A↔G, C↔T) occur at rate α and each transversion at rate β,
//! with a uniform stationary distribution. The model is parameterised by the
//! transition/transversion rate ratio κ = α/β and normalised so branch
//! lengths are expected substitutions per site (α + 2β = 1).

use super::{BaseFrequencies, SubstitutionModel};
use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;

/// The K80 model.
#[derive(Debug, Clone, PartialEq)]
pub struct K80 {
    freqs: BaseFrequencies,
    alpha: f64,
    beta: f64,
}

impl K80 {
    /// Create a K80 model from the transition/transversion rate ratio κ,
    /// normalised to one expected substitution per unit branch length.
    pub fn new(kappa: f64) -> Result<Self, PhyloError> {
        if !(kappa > 0.0 && kappa.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "kappa",
                value: kappa,
                constraint: "kappa > 0",
            });
        }
        let beta = 1.0 / (kappa + 2.0);
        let alpha = kappa * beta;
        Ok(K80 { freqs: BaseFrequencies::uniform(), alpha, beta })
    }

    /// The transition rate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The transversion rate β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The rate ratio κ = α / β.
    pub fn kappa(&self) -> f64 {
        self.alpha / self.beta
    }
}

impl SubstitutionModel for K80 {
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64 {
        let e4b = (-4.0 * self.beta * t).exp();
        let e2ab = (-2.0 * (self.alpha + self.beta) * t).exp();
        if from == to {
            0.25 + 0.25 * e4b + 0.5 * e2ab
        } else if from.is_transition_with(to) {
            0.25 + 0.25 * e4b - 0.5 * e2ab
        } else {
            0.25 - 0.25 * e4b
        }
    }

    fn base_frequencies(&self) -> &BaseFrequencies {
        &self.freqs
    }

    fn name(&self) -> &'static str {
        "K80"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conformance;
    use crate::model::Jc69;

    #[test]
    fn conformance_checks() {
        for kappa in [0.5, 1.0, 2.0, 10.0] {
            conformance::assert_all(&K80::new(kappa).unwrap());
        }
    }

    #[test]
    fn kappa_one_reduces_to_jc69() {
        let k80 = K80::new(1.0).unwrap();
        let jc = Jc69::new();
        for &t in &[0.0, 0.1, 0.7, 3.0] {
            for &x in &Nucleotide::ALL {
                for &y in &Nucleotide::ALL {
                    let a = k80.transition_prob(x, y, t);
                    let b = jc.transition_prob(x, y, t);
                    assert!((a - b).abs() < 1e-12, "t={t} {x}->{y}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn large_kappa_favours_transitions() {
        let k80 = K80::new(10.0).unwrap();
        let t = 0.2;
        let transition = k80.transition_prob(Nucleotide::A, Nucleotide::G, t);
        let transversion = k80.transition_prob(Nucleotide::A, Nucleotide::C, t);
        assert!(
            transition > 3.0 * transversion,
            "transition {transition} should dominate transversion {transversion}"
        );
    }

    #[test]
    fn normalisation_gives_unit_rate() {
        let k80 = K80::new(4.0).unwrap();
        assert!((k80.alpha() + 2.0 * k80.beta() - 1.0).abs() < 1e-12);
        assert!((k80.kappa() - 4.0).abs() < 1e-12);
        assert_eq!(k80.name(), "K80");
    }

    #[test]
    fn rejects_bad_kappa() {
        assert!(K80::new(0.0).is_err());
        assert!(K80::new(-1.0).is_err());
        assert!(K80::new(f64::NAN).is_err());
    }
}
