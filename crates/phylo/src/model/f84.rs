//! The Felsenstein 1984 (F84) substitution model.
//!
//! This is the model used by `seq-gen -mF84` in the paper's accuracy
//! experiment (Section 6.1). It superimposes two Poisson event processes:
//!
//! * *general* events at rate `b`: the base is replaced by a draw from the
//!   stationary frequencies π (any base);
//! * *within-group* events at rate `a`: the base is replaced by a draw from π
//!   restricted to its own purine/pyrimidine group.
//!
//! The resulting transition probability is
//!
//! ```text
//! P_XY(t) = e^{-(a+b)t} δ_XY
//!         + e^{-bt} (1 − e^{-at}) (π_Y / Π_{g(X)}) [g(X) = g(Y)]
//!         + (1 − e^{-bt}) π_Y
//! ```
//!
//! where `Π_{g(X)}` is the total frequency of X's group. Elevated `a`
//! produces the transition/transversion bias that distinguishes F84 from F81
//! (`a = 0` recovers F81 exactly, which is tested below).

use super::{BaseFrequencies, SubstitutionModel};
use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;

/// The F84 model.
#[derive(Debug, Clone, PartialEq)]
pub struct F84 {
    freqs: BaseFrequencies,
    /// Within-group event rate.
    a: f64,
    /// General event rate.
    b: f64,
}

impl F84 {
    /// Create an F84 model from explicit event rates `a` (within-group) and
    /// `b` (general).
    pub fn with_rates(freqs: BaseFrequencies, a: f64, b: f64) -> Result<Self, PhyloError> {
        if !(a >= 0.0 && a.is_finite()) {
            return Err(PhyloError::InvalidParameter { name: "a", value: a, constraint: "a >= 0" });
        }
        if !(b > 0.0 && b.is_finite()) {
            return Err(PhyloError::InvalidParameter { name: "b", value: b, constraint: "b > 0" });
        }
        Ok(F84 { freqs, a, b })
    }

    /// Create an F84 model from the within-group/general rate ratio
    /// κ = a / b, normalised so that one unit of branch length corresponds to
    /// one expected substitution per site.
    pub fn new(freqs: BaseFrequencies, kappa: f64) -> Result<Self, PhyloError> {
        if !(kappa >= 0.0 && kappa.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "kappa",
                value: kappa,
                constraint: "kappa >= 0",
            });
        }
        // Expected substitution rate per unit time for unit b:
        //   S1 = sum_x pi_x (1 - pi_x)                  (general events that change the base)
        //   S2 = sum_x pi_x (1 - pi_x / group(x))       (within-group events that change the base)
        // mu = b*S1 + a*S2 with a = kappa*b; choose b so mu = 1.
        let s1: f64 = Nucleotide::ALL.iter().map(|&x| freqs.freq(x) * (1.0 - freqs.freq(x))).sum();
        let s2: f64 = Nucleotide::ALL
            .iter()
            .map(|&x| freqs.freq(x) * (1.0 - freqs.freq(x) / freqs.group(x)))
            .sum();
        let b = 1.0 / (s1 + kappa * s2);
        let a = kappa * b;
        F84::with_rates(freqs, a, b)
    }

    /// The within-group event rate `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The general event rate `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Expected number of substitutions per site per unit time.
    pub fn expected_rate(&self) -> f64 {
        let s1: f64 =
            Nucleotide::ALL.iter().map(|&x| self.freqs.freq(x) * (1.0 - self.freqs.freq(x))).sum();
        let s2: f64 = Nucleotide::ALL
            .iter()
            .map(|&x| self.freqs.freq(x) * (1.0 - self.freqs.freq(x) / self.freqs.group(x)))
            .sum();
        self.b * s1 + self.a * s2
    }
}

impl SubstitutionModel for F84 {
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64 {
        let decay_both = (-(self.a + self.b) * t).exp();
        let decay_b = (-self.b * t).exp();
        let pi_to = self.freqs.freq(to);
        let mut p = (1.0 - decay_b) * pi_to;
        if from.is_purine() == to.is_purine() {
            p += decay_b * (1.0 - (-self.a * t).exp()) * pi_to / self.freqs.group(from);
        }
        if from == to {
            p += decay_both;
        }
        p
    }

    fn base_frequencies(&self) -> &BaseFrequencies {
        &self.freqs
    }

    fn name(&self) -> &'static str {
        "F84"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conformance;
    use crate::model::F81;

    fn skewed() -> BaseFrequencies {
        BaseFrequencies::new(0.35, 0.15, 0.25, 0.25).unwrap()
    }

    #[test]
    fn conformance_checks() {
        conformance::assert_all(&F84::new(skewed(), 2.0).unwrap());
        conformance::assert_all(&F84::new(skewed(), 0.0).unwrap());
        conformance::assert_all(&F84::new(BaseFrequencies::uniform(), 5.0).unwrap());
        conformance::assert_all(&F84::with_rates(skewed(), 0.3, 0.9).unwrap());
    }

    #[test]
    fn zero_kappa_reduces_to_f81() {
        let freqs = skewed();
        let f84 = F84::new(freqs, 0.0).unwrap();
        let f81 = F81::with_rate(freqs, f84.b()).unwrap();
        for &t in &[0.05, 0.4, 1.5] {
            for &x in &Nucleotide::ALL {
                for &y in &Nucleotide::ALL {
                    let a = f84.transition_prob(x, y, t);
                    let b = f81.transition_prob(x, y, t);
                    assert!((a - b).abs() < 1e-12, "t={t} {x}->{y}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn normalised_expected_rate_is_one() {
        for kappa in [0.0, 1.0, 3.0, 10.0] {
            let model = F84::new(skewed(), kappa).unwrap();
            assert!(
                (model.expected_rate() - 1.0).abs() < 1e-12,
                "kappa={kappa}: rate {}",
                model.expected_rate()
            );
        }
    }

    #[test]
    fn positive_kappa_biases_toward_transitions() {
        let model = F84::new(BaseFrequencies::uniform(), 5.0).unwrap();
        let t = 0.2;
        let transition = model.transition_prob(Nucleotide::C, Nucleotide::T, t);
        let transversion = model.transition_prob(Nucleotide::C, Nucleotide::A, t);
        assert!(
            transition > 2.0 * transversion,
            "transition {transition} vs transversion {transversion}"
        );
    }

    #[test]
    fn accessors_and_validation() {
        let m = F84::new(skewed(), 2.0).unwrap();
        assert!(m.a() > 0.0 && m.b() > 0.0);
        assert!((m.a() / m.b() - 2.0).abs() < 1e-12);
        assert_eq!(m.name(), "F84");
        assert!(F84::new(skewed(), -1.0).is_err());
        assert!(F84::with_rates(skewed(), -0.1, 1.0).is_err());
        assert!(F84::with_rates(skewed(), 0.1, 0.0).is_err());
    }
}
