//! The Felsenstein 1981 (F81) substitution model — the model of Eq. 20.
//!
//! Substitution events occur at rate `u`; when an event occurs the new base
//! is drawn from the stationary frequencies π, independent of the old base.
//! The transition probability is therefore
//!
//! ```text
//! P_XY(t) = e^{-u t} δ_XY + (1 - e^{-u t}) π_Y
//! ```
//!
//! which is exactly Eq. 20 of the paper. When π is uniform this reduces to
//! JC69.

use super::{BaseFrequencies, SubstitutionModel};
use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;

/// The F81 model.
#[derive(Debug, Clone, PartialEq)]
pub struct F81 {
    freqs: BaseFrequencies,
    rate: f64,
}

impl F81 {
    /// Create an F81 model with an explicit event rate `u` (Eq. 20's `u`).
    pub fn with_rate(freqs: BaseFrequencies, rate: f64) -> Result<Self, PhyloError> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "rate > 0",
            });
        }
        Ok(F81 { freqs, rate })
    }

    /// Create an F81 model whose *expected substitution rate* is one per unit
    /// time, so branch lengths are measured in expected substitutions per
    /// site. The event rate is `u = 1 / (1 - Σ π_i²)` because an event only
    /// produces an observable substitution when the drawn base differs from
    /// the current one.
    pub fn normalized(freqs: BaseFrequencies) -> Self {
        let sum_sq: f64 = freqs.as_array().iter().map(|p| p * p).sum();
        let rate = 1.0 / (1.0 - sum_sq);
        F81 { freqs, rate }
    }

    /// The event rate `u`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl SubstitutionModel for F81 {
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64 {
        let decay = (-self.rate * t).exp();
        let same = if from == to { 1.0 } else { 0.0 };
        decay * same + (1.0 - decay) * self.freqs.freq(to)
    }

    fn base_frequencies(&self) -> &BaseFrequencies {
        &self.freqs
    }

    fn name(&self) -> &'static str {
        "F81"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conformance;

    fn skewed() -> BaseFrequencies {
        BaseFrequencies::new(0.1, 0.2, 0.3, 0.4).unwrap()
    }

    #[test]
    fn conformance_checks() {
        conformance::assert_all(&F81::normalized(skewed()));
        conformance::assert_all(&F81::with_rate(skewed(), 0.7).unwrap());
        conformance::assert_all(&F81::normalized(BaseFrequencies::uniform()));
    }

    #[test]
    fn matches_equation_20_directly() {
        let model = F81::with_rate(skewed(), 2.0).unwrap();
        let t = 0.3;
        let decay = (-2.0f64 * t).exp();
        let p_same = model.transition_prob(Nucleotide::G, Nucleotide::G, t);
        assert!((p_same - (decay + (1.0 - decay) * 0.3)).abs() < 1e-12);
        let p_diff = model.transition_prob(Nucleotide::A, Nucleotide::T, t);
        assert!((p_diff - (1.0 - decay) * 0.4).abs() < 1e-12);
        assert_eq!(model.rate(), 2.0);
        assert_eq!(model.name(), "F81");
    }

    #[test]
    fn normalized_rate_for_uniform_frequencies_is_four_thirds() {
        let model = F81::normalized(BaseFrequencies::uniform());
        assert!((model.rate() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_expected_substitution_rate_is_one() {
        // Expected instantaneous substitution rate: sum_i pi_i * u * (1 - pi_i) = 1.
        let freqs = skewed();
        let model = F81::normalized(freqs);
        let expected: f64 = freqs.as_array().iter().map(|&pi| pi * model.rate() * (1.0 - pi)).sum();
        assert!((expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_positive_rate() {
        assert!(F81::with_rate(skewed(), 0.0).is_err());
        assert!(F81::with_rate(skewed(), -1.0).is_err());
        assert!(F81::with_rate(skewed(), f64::INFINITY).is_err());
    }
}
