//! The Tamura–Nei 1993 (TN93) substitution model and its HKY85 special case.
//!
//! TN93 allows unequal base frequencies, a transversion rate β and separate
//! transition rates within purines (α_R) and within pyrimidines (α_Y). The
//! closed-form transition probabilities use the spectral decomposition of the
//! rate matrix; with `Π_g` the total frequency of the group `g(j)` of the
//! target base and `λ_g = Π_g α_g + (1 − Π_g) β`:
//!
//! ```text
//! transversion:  P_ij(t) = π_j (1 − e^{-βt})
//! transition:    P_ij(t) = π_j + π_j (1/Π_g − 1) e^{-βt} − (π_j/Π_g) e^{-λ_g t}
//! identity:      P_jj(t) = π_j + π_j (1/Π_g − 1) e^{-βt} + ((Π_g − π_j)/Π_g) e^{-λ_g t}
//! ```
//!
//! HKY85 is TN93 with α_R = α_Y = κβ. The correctness of the closed form is
//! enforced by the shared conformance tests (stochastic rows, identity at
//! t = 0, convergence to π, detailed balance and Chapman–Kolmogorov), plus
//! reductions to JC69 and F81 in the unit tests.

use super::{BaseFrequencies, SubstitutionModel};
use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;

/// The TN93 model.
#[derive(Debug, Clone, PartialEq)]
pub struct Tn93 {
    freqs: BaseFrequencies,
    alpha_r: f64,
    alpha_y: f64,
    beta: f64,
}

impl Tn93 {
    /// Create a TN93 model from raw rates.
    pub fn with_rates(
        freqs: BaseFrequencies,
        alpha_r: f64,
        alpha_y: f64,
        beta: f64,
    ) -> Result<Self, PhyloError> {
        for (name, value) in [("alpha_r", alpha_r), ("alpha_y", alpha_y), ("beta", beta)] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(PhyloError::InvalidParameter {
                    name: match name {
                        "alpha_r" => "alpha_r",
                        "alpha_y" => "alpha_y",
                        _ => "beta",
                    },
                    value,
                    constraint: "rate > 0",
                });
            }
        }
        Ok(Tn93 { freqs, alpha_r, alpha_y, beta })
    }

    /// Create a TN93 model from the two transition/transversion ratios
    /// κ_R = α_R/β and κ_Y = α_Y/β, normalised to one expected substitution
    /// per site per unit branch length.
    pub fn new(freqs: BaseFrequencies, kappa_r: f64, kappa_y: f64) -> Result<Self, PhyloError> {
        if !(kappa_r > 0.0 && kappa_r.is_finite() && kappa_y > 0.0 && kappa_y.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "kappa",
                value: if kappa_r.is_finite() && kappa_r > 0.0 { kappa_y } else { kappa_r },
                constraint: "kappa > 0",
            });
        }
        let pi = freqs.as_array();
        let (pa, pc, pg, pt) = (pi[0], pi[1], pi[2], pi[3]);
        let pr = pa + pg;
        let py = pc + pt;
        // Expected rate for beta = 1: mu = 2(pa*pg*kr + pc*pt*ky + pr*py).
        let mu_unit = 2.0 * (pa * pg * kappa_r + pc * pt * kappa_y + pr * py);
        let beta = 1.0 / mu_unit;
        Tn93::with_rates(freqs, kappa_r * beta, kappa_y * beta, beta)
    }

    /// Purine transition rate α_R.
    pub fn alpha_r(&self) -> f64 {
        self.alpha_r
    }

    /// Pyrimidine transition rate α_Y.
    pub fn alpha_y(&self) -> f64 {
        self.alpha_y
    }

    /// Transversion rate β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Expected substitutions per site per unit time.
    pub fn expected_rate(&self) -> f64 {
        let pi = self.freqs.as_array();
        let (pa, pc, pg, pt) = (pi[0], pi[1], pi[2], pi[3]);
        let pr = pa + pg;
        let py = pc + pt;
        2.0 * (pa * pg * self.alpha_r + pc * pt * self.alpha_y + pr * py * self.beta)
    }

    fn group_rate(&self, n: Nucleotide) -> f64 {
        if n.is_purine() {
            self.alpha_r
        } else {
            self.alpha_y
        }
    }
}

impl SubstitutionModel for Tn93 {
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64 {
        let pi_j = self.freqs.freq(to);
        let e_beta = (-self.beta * t).exp();
        if from.is_transversion_with(to) {
            return pi_j * (1.0 - e_beta);
        }
        // Same group (includes the diagonal).
        let group = self.freqs.group(to);
        let alpha = self.group_rate(to);
        let lambda = group * alpha + (1.0 - group) * self.beta;
        let e_lambda = (-lambda * t).exp();
        let shared = pi_j + pi_j * (1.0 / group - 1.0) * e_beta;
        if from == to {
            shared + ((group - pi_j) / group) * e_lambda
        } else {
            shared - (pi_j / group) * e_lambda
        }
    }

    fn base_frequencies(&self) -> &BaseFrequencies {
        &self.freqs
    }

    fn name(&self) -> &'static str {
        "TN93"
    }
}

/// The Hasegawa–Kishino–Yano 1985 model: TN93 with a single transition /
/// transversion ratio κ.
#[derive(Debug, Clone, PartialEq)]
pub struct Hky85 {
    inner: Tn93,
}

impl Hky85 {
    /// Create an HKY85 model, normalised to one expected substitution per
    /// site per unit branch length.
    pub fn new(freqs: BaseFrequencies, kappa: f64) -> Result<Self, PhyloError> {
        Ok(Hky85 { inner: Tn93::new(freqs, kappa, kappa)? })
    }

    /// The underlying TN93 parameterisation.
    pub fn as_tn93(&self) -> &Tn93 {
        &self.inner
    }

    /// The transition/transversion rate ratio κ.
    pub fn kappa(&self) -> f64 {
        self.inner.alpha_r() / self.inner.beta()
    }
}

impl SubstitutionModel for Hky85 {
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64 {
        self.inner.transition_prob(from, to, t)
    }

    fn base_frequencies(&self) -> &BaseFrequencies {
        self.inner.base_frequencies()
    }

    fn name(&self) -> &'static str {
        "HKY85"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conformance;
    use crate::model::{Jc69, F81};

    fn skewed() -> BaseFrequencies {
        BaseFrequencies::new(0.3, 0.2, 0.15, 0.35).unwrap()
    }

    #[test]
    fn conformance_checks() {
        conformance::assert_all(&Tn93::new(skewed(), 2.0, 4.0).unwrap());
        conformance::assert_all(&Tn93::new(skewed(), 1.0, 1.0).unwrap());
        conformance::assert_all(&Hky85::new(skewed(), 3.0).unwrap());
        conformance::assert_all(&Hky85::new(BaseFrequencies::uniform(), 1.0).unwrap());
        conformance::assert_all(&Tn93::with_rates(skewed(), 0.5, 0.8, 0.2).unwrap());
    }

    #[test]
    fn uniform_frequencies_unit_kappa_reduces_to_jc69() {
        let hky = Hky85::new(BaseFrequencies::uniform(), 1.0).unwrap();
        let jc = Jc69::new();
        for &t in &[0.05, 0.3, 1.2] {
            for &x in &Nucleotide::ALL {
                for &y in &Nucleotide::ALL {
                    let a = hky.transition_prob(x, y, t);
                    let b = jc.transition_prob(x, y, t);
                    assert!((a - b).abs() < 1e-9, "t={t} {x}->{y}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn unit_kappa_skewed_frequencies_reduces_to_f81() {
        // With alpha = beta the TN93 rate matrix is exactly the F81 matrix
        // with event rate u = beta.
        let freqs = skewed();
        let hky = Hky85::new(freqs, 1.0).unwrap();
        let f81 = F81::with_rate(freqs, hky.as_tn93().beta()).unwrap();
        for &t in &[0.05, 0.4, 2.0] {
            for &x in &Nucleotide::ALL {
                for &y in &Nucleotide::ALL {
                    let a = hky.transition_prob(x, y, t);
                    let b = f81.transition_prob(x, y, t);
                    assert!((a - b).abs() < 1e-9, "t={t} {x}->{y}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn normalised_expected_rate_is_one() {
        for (kr, ky) in [(1.0, 1.0), (2.0, 5.0), (8.0, 3.0)] {
            let m = Tn93::new(skewed(), kr, ky).unwrap();
            assert!((m.expected_rate() - 1.0).abs() < 1e-12, "({kr},{ky}): {}", m.expected_rate());
        }
    }

    #[test]
    fn transition_bias_follows_group_rates() {
        // alpha_Y >> alpha_R: pyrimidine transitions should outpace purine ones.
        let m = Tn93::new(BaseFrequencies::uniform(), 1.0, 10.0).unwrap();
        let t = 0.1;
        let py_transition = m.transition_prob(Nucleotide::C, Nucleotide::T, t);
        let pu_transition = m.transition_prob(Nucleotide::A, Nucleotide::G, t);
        assert!(py_transition > 2.0 * pu_transition);
    }

    #[test]
    fn accessors_and_validation() {
        let m = Tn93::new(skewed(), 2.0, 3.0).unwrap();
        assert!(m.alpha_r() > 0.0 && m.alpha_y() > 0.0 && m.beta() > 0.0);
        assert!((m.alpha_r() / m.beta() - 2.0).abs() < 1e-9);
        assert!((m.alpha_y() / m.beta() - 3.0).abs() < 1e-9);
        assert_eq!(m.name(), "TN93");

        let h = Hky85::new(skewed(), 4.0).unwrap();
        assert!((h.kappa() - 4.0).abs() < 1e-9);
        assert_eq!(h.name(), "HKY85");

        assert!(Tn93::new(skewed(), 0.0, 1.0).is_err());
        assert!(Tn93::new(skewed(), 1.0, -2.0).is_err());
        assert!(Tn93::with_rates(skewed(), 1.0, 1.0, 0.0).is_err());
        assert!(Hky85::new(skewed(), f64::NAN).is_err());
    }
}
