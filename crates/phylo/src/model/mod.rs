//! Nucleotide substitution models.
//!
//! A substitution model supplies the transition probability
//! `P_{XY}(t)` — the probability that nucleotide `X` mutates to `Y` over a
//! branch of length `t` — used by the Felsenstein-pruning likelihood
//! (Eq. 19–20) and by the sequence simulator. The paper's likelihood kernel
//! uses the Felsenstein 1981 (F81) model of Eq. 20; the accuracy experiment
//! simulates data under F84 (`seq-gen -mF84`), so both are provided, along
//! with JC69, K80 and TN93/HKY85.
//!
//! All models implement [`SubstitutionModel`]; implementations satisfy the
//! usual stochastic-matrix invariants (each row of `P(t)` sums to one,
//! `P(0) = I`, `P(∞)` rows converge to the stationary frequencies) and
//! detailed balance with respect to their stationary distribution. These
//! invariants are enforced by shared property tests in this module.

mod f81;
mod f84;
mod jc69;
mod k80;
mod tn93;

pub use f81::F81;
pub use f84::F84;
pub use jc69::Jc69;
pub use k80::K80;
pub use tn93::{Hky85, Tn93};

use crate::error::PhyloError;
use crate::nucleotide::Nucleotide;

/// Stationary base frequencies (π_A, π_C, π_G, π_T).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseFrequencies {
    freqs: [f64; 4],
}

impl BaseFrequencies {
    /// Equal frequencies (¼ each).
    pub fn uniform() -> Self {
        BaseFrequencies { freqs: [0.25; 4] }
    }

    /// Build from raw frequencies, which must be non-negative and sum to a
    /// positive value; they are normalised to sum to one. Zero entries are
    /// floored at a tiny pseudo-frequency so that log-likelihoods stay finite.
    pub fn new(a: f64, c: f64, g: f64, t: f64) -> Result<Self, PhyloError> {
        let raw = [a, c, g, t];
        if raw.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "base frequency",
                value: *raw.iter().find(|&&x| x < 0.0 || !x.is_finite()).unwrap(),
                constraint: "finite and non-negative",
            });
        }
        let sum: f64 = raw.iter().sum();
        if sum <= 0.0 {
            return Err(PhyloError::InvalidParameter {
                name: "base frequency sum",
                value: sum,
                constraint: "strictly positive",
            });
        }
        const FLOOR: f64 = 1e-9;
        let mut freqs = [0.0; 4];
        for i in 0..4 {
            freqs[i] = (raw[i] / sum).max(FLOOR);
        }
        let renorm: f64 = freqs.iter().sum();
        for f in &mut freqs {
            *f /= renorm;
        }
        Ok(BaseFrequencies { freqs })
    }

    /// Build from observed counts (e.g. from an alignment), applying a
    /// +1 pseudo-count so no frequency is zero.
    pub fn from_counts(counts: [usize; 4]) -> Self {
        let total: usize = counts.iter().sum::<usize>() + 4;
        let freqs = [
            (counts[0] + 1) as f64 / total as f64,
            (counts[1] + 1) as f64 / total as f64,
            (counts[2] + 1) as f64 / total as f64,
            (counts[3] + 1) as f64 / total as f64,
        ];
        BaseFrequencies { freqs }
    }

    /// Frequency of the given nucleotide.
    #[inline]
    pub fn freq(&self, n: Nucleotide) -> f64 {
        self.freqs[n.index()]
    }

    /// Frequencies in `A, C, G, T` order.
    pub fn as_array(&self) -> [f64; 4] {
        self.freqs
    }

    /// Frequency of purines (π_A + π_G).
    pub fn purine(&self) -> f64 {
        self.freqs[Nucleotide::A.index()] + self.freqs[Nucleotide::G.index()]
    }

    /// Frequency of pyrimidines (π_C + π_T).
    pub fn pyrimidine(&self) -> f64 {
        self.freqs[Nucleotide::C.index()] + self.freqs[Nucleotide::T.index()]
    }

    /// Frequency of the group (purine or pyrimidine) that `n` belongs to.
    pub fn group(&self, n: Nucleotide) -> f64 {
        if n.is_purine() {
            self.purine()
        } else {
            self.pyrimidine()
        }
    }
}

impl Default for BaseFrequencies {
    fn default() -> Self {
        BaseFrequencies::uniform()
    }
}

/// A nucleotide substitution model.
pub trait SubstitutionModel: Send + Sync {
    /// Transition probability `P_{from,to}(t)`.
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64;

    /// The model's stationary base frequencies.
    fn base_frequencies(&self) -> &BaseFrequencies;

    /// Short human-readable model name.
    fn name(&self) -> &'static str;

    /// The full 4×4 transition matrix for branch length `t`, indexed
    /// `[from][to]`.
    fn transition_matrix(&self, t: f64) -> [[f64; 4]; 4] {
        let mut m = [[0.0; 4]; 4];
        for &x in &Nucleotide::ALL {
            for &y in &Nucleotide::ALL {
                m[x.index()][y.index()] = self.transition_prob(x, y, t);
            }
        }
        m
    }
}

/// Shared conformance checks used by each model's unit tests.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    pub fn assert_stochastic_rows<M: SubstitutionModel>(model: &M) {
        for &t in &[0.0, 1e-6, 0.01, 0.3, 1.0, 5.0, 50.0] {
            let m = model.transition_matrix(t);
            for row in &m {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{}: row sum {} at t={}", model.name(), sum, t);
                assert!(row.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // i/j index the 4x4 matrix symmetrically
    pub fn assert_identity_at_zero<M: SubstitutionModel>(model: &M) {
        let m = model.transition_matrix(0.0);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (m[i][j] - expect).abs() < 1e-9,
                    "{}: P(0)[{}][{}] = {}",
                    model.name(),
                    i,
                    j,
                    m[i][j]
                );
            }
        }
    }

    pub fn assert_converges_to_stationary<M: SubstitutionModel>(model: &M) {
        let m = model.transition_matrix(1e4);
        let pi = model.base_frequencies();
        for &x in &Nucleotide::ALL {
            for &y in &Nucleotide::ALL {
                assert!(
                    (m[x.index()][y.index()] - pi.freq(y)).abs() < 1e-6,
                    "{}: P(inf)[{}][{}] = {} but pi = {}",
                    model.name(),
                    x,
                    y,
                    m[x.index()][y.index()],
                    pi.freq(y)
                );
            }
        }
    }

    pub fn assert_detailed_balance<M: SubstitutionModel>(model: &M) {
        let pi = model.base_frequencies();
        for &t in &[0.05, 0.5, 2.0] {
            for &x in &Nucleotide::ALL {
                for &y in &Nucleotide::ALL {
                    let lhs = pi.freq(x) * model.transition_prob(x, y, t);
                    let rhs = pi.freq(y) * model.transition_prob(y, x, t);
                    assert!(
                        (lhs - rhs).abs() < 1e-9,
                        "{}: detailed balance violated at t={} for {}->{}: {} vs {}",
                        model.name(),
                        t,
                        x,
                        y,
                        lhs,
                        rhs
                    );
                }
            }
        }
    }

    pub fn assert_chapman_kolmogorov<M: SubstitutionModel>(model: &M) {
        // P(t1 + t2) = P(t1) P(t2) for time-homogeneous Markov substitution.
        let (t1, t2) = (0.17, 0.41);
        let a = model.transition_matrix(t1);
        let b = model.transition_matrix(t2);
        let c = model.transition_matrix(t1 + t2);
        for i in 0..4 {
            for j in 0..4 {
                let composed: f64 = (0..4).map(|k| a[i][k] * b[k][j]).sum();
                assert!(
                    (composed - c[i][j]).abs() < 1e-9,
                    "{}: Chapman-Kolmogorov violated at [{}][{}]: {} vs {}",
                    model.name(),
                    i,
                    j,
                    composed,
                    c[i][j]
                );
            }
        }
    }

    pub fn assert_all<M: SubstitutionModel>(model: &M) {
        assert_stochastic_rows(model);
        assert_identity_at_zero(model);
        assert_converges_to_stationary(model);
        assert_detailed_balance(model);
        assert_chapman_kolmogorov(model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_frequencies() {
        let f = BaseFrequencies::uniform();
        for &n in &Nucleotide::ALL {
            assert_eq!(f.freq(n), 0.25);
        }
        assert_eq!(f.purine(), 0.5);
        assert_eq!(f.pyrimidine(), 0.5);
        assert_eq!(BaseFrequencies::default(), f);
    }

    #[test]
    fn new_normalises_and_floors() {
        let f = BaseFrequencies::new(2.0, 1.0, 1.0, 0.0).unwrap();
        let arr = f.as_array();
        assert!((arr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f.freq(Nucleotide::A) - 0.5).abs() < 1e-6);
        assert!(f.freq(Nucleotide::T) > 0.0, "zero frequency must be floored");
    }

    #[test]
    fn new_rejects_invalid_input() {
        assert!(BaseFrequencies::new(-1.0, 1.0, 1.0, 1.0).is_err());
        assert!(BaseFrequencies::new(0.0, 0.0, 0.0, 0.0).is_err());
        assert!(BaseFrequencies::new(f64::NAN, 1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn from_counts_applies_pseudocount() {
        let f = BaseFrequencies::from_counts([6, 0, 0, 0]);
        assert!(f.freq(Nucleotide::C) > 0.0);
        assert!((f.as_array().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f.freq(Nucleotide::A), 0.7);
    }

    #[test]
    fn group_frequency_dispatch() {
        let f = BaseFrequencies::new(0.1, 0.2, 0.3, 0.4).unwrap();
        assert!((f.group(Nucleotide::A) - 0.4).abs() < 1e-9);
        assert!((f.group(Nucleotide::C) - 0.6).abs() < 1e-9);
    }
}
