//! The Jukes–Cantor 1969 (JC69) substitution model.
//!
//! All substitutions occur at the same rate and the stationary distribution
//! is uniform. With branch lengths measured in expected substitutions per
//! site the transition probabilities have the closed form
//!
//! ```text
//! P_same(t) = 1/4 + 3/4 · e^{-4t/3}
//! P_diff(t) = 1/4 − 1/4 · e^{-4t/3}
//! ```

use super::{BaseFrequencies, SubstitutionModel};
use crate::nucleotide::Nucleotide;

/// The JC69 model (no free parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct Jc69 {
    freqs: BaseFrequencies,
}

impl Jc69 {
    /// Create the model.
    pub fn new() -> Self {
        Jc69 { freqs: BaseFrequencies::uniform() }
    }

    /// The probability that the base at the two ends of a branch of length
    /// `t` differs (used by the JC distance correction).
    pub fn prob_differ(t: f64) -> f64 {
        0.75 - 0.75 * (-4.0 * t / 3.0).exp()
    }

    /// The JC69 distance correction: converts an observed proportion of
    /// differing sites `p` into an expected number of substitutions per site.
    /// Returns `None` when `p >= 3/4` (saturation).
    pub fn distance_from_p(p: f64) -> Option<f64> {
        if !(0.0..0.75).contains(&p) {
            return None;
        }
        Some(-0.75 * (1.0 - 4.0 * p / 3.0).ln())
    }
}

impl Default for Jc69 {
    fn default() -> Self {
        Jc69::new()
    }
}

impl SubstitutionModel for Jc69 {
    fn transition_prob(&self, from: Nucleotide, to: Nucleotide, t: f64) -> f64 {
        let decay = (-4.0 * t / 3.0).exp();
        if from == to {
            0.25 + 0.75 * decay
        } else {
            0.25 - 0.25 * decay
        }
    }

    fn base_frequencies(&self) -> &BaseFrequencies {
        &self.freqs
    }

    fn name(&self) -> &'static str {
        "JC69"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conformance;
    use crate::model::F81;

    #[test]
    fn conformance_checks() {
        conformance::assert_all(&Jc69::new());
    }

    #[test]
    fn equals_normalized_f81_with_uniform_frequencies() {
        let jc = Jc69::new();
        let f81 = F81::normalized(BaseFrequencies::uniform());
        for &t in &[0.0, 0.1, 0.5, 2.0] {
            for &x in &Nucleotide::ALL {
                for &y in &Nucleotide::ALL {
                    let a = jc.transition_prob(x, y, t);
                    let b = f81.transition_prob(x, y, t);
                    assert!((a - b).abs() < 1e-12, "t={t} {x}->{y}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn prob_differ_matches_off_diagonal_sum() {
        let jc = Jc69::new();
        let t = 0.37;
        let sum_off: f64 = Nucleotide::ALL
            .iter()
            .filter(|&&y| y != Nucleotide::A)
            .map(|&y| jc.transition_prob(Nucleotide::A, y, t))
            .sum();
        assert!((Jc69::prob_differ(t) - sum_off).abs() < 1e-12);
    }

    #[test]
    fn distance_correction_inverts_prob_differ() {
        for &t in &[0.01, 0.1, 0.5, 1.0] {
            let p = Jc69::prob_differ(t);
            let d = Jc69::distance_from_p(p).unwrap();
            assert!((d - t).abs() < 1e-9, "t={t} recovered as {d}");
        }
        assert_eq!(Jc69::distance_from_p(0.75), None);
        assert_eq!(Jc69::distance_from_p(0.9), None);
        assert_eq!(Jc69::distance_from_p(-0.1), None);
        assert_eq!(Jc69::distance_from_p(0.0), Some(0.0));
    }

    #[test]
    fn default_is_new() {
        assert_eq!(Jc69::default(), Jc69::new());
        assert_eq!(Jc69::new().name(), "JC69");
    }
}
