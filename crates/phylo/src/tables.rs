//! Columnar genealogy tables with copy-on-write snapshots.
//!
//! A [`TreeTables`] stores one genealogy as a *node table* in
//! structure-of-arrays form — five parallel columns indexed by [`NodeId`]:
//!
//! | column       | type  | meaning                                          |
//! |--------------|-------|--------------------------------------------------|
//! | `parent`     | `u32` | parent node id, [`NO_NODE`] for the root         |
//! | `left_child` | `u32` | first child, [`NO_NODE`] for tips                |
//! | `right_sib`  | `u32` | next sibling, [`NO_NODE`] for second children    |
//! | `time`       | `f64` | node time (0 = present, larger = older)          |
//! | `label_id`   | `u32` | index into the interned label arena, tips only   |
//!
//! This is the tskit-style "lightweight table collection" layout: the tree
//! topology is plain flat data, the two children of an interior node `n` are
//! `(left_child[n], right_sib[left_child[n]])`, and tip labels live once in
//! a shared, immutable arena instead of being cloned per tree.
//!
//! # Copy-on-write slabs
//!
//! Each column is split into fixed-size **slabs** of [`SLAB_LEN`] entries.
//! A column holds an `Arc` directory of `Arc`-counted slabs, so
//! [`TreeTables::snapshot`] is O(1): it bumps six reference counts (five
//! column directories plus the label arena) and copies *no node data at
//! all*. Mutation goes through [`Column::set`], which materialises — clones
//! — only the directory and the single touched slab, and only while they are
//! still shared. A sampler proposal that edits two nodes therefore pays for
//! at most a handful of 64-entry slabs instead of a deep tree clone, and
//! replica-exchange swaps, ensemble read-back and checkpoint export are
//! reference-count bumps.
//!
//! # View-vs-owner rules
//!
//! [`GeneTree`] is a thin *view* over one
//! `TreeTables` value: every query delegates to the columns and every
//! mutator goes through [`Column::set`], so value semantics are preserved —
//! two trees that share slabs can never observe each other's writes. Code
//! holding a `&GeneTree` may read columns directly via
//! [`GeneTree::tables`](crate::tree::GeneTree::tables); *owning* a tree (or
//! holding `&mut`) is required to mutate, exactly as before the columnar
//! port. Nothing outside this module touches slabs.
//!
//! # Instrumentation
//!
//! Thread-local counters record snapshots taken, slabs allocated, slabs
//! cloned by copy-on-write, and slabs dropped ([`cow_stats`]). They exist so
//! tests can assert the O(1) snapshot contract ("a snapshot clones zero
//! slabs") and the no-orphan contract ("dropping every snapshot returns the
//! live-slab count to its baseline") without heap profiling. Counters are
//! per-thread: drive the code under test on one thread when asserting exact
//! deltas.

use std::cell::Cell;
use std::sync::Arc;

use crate::error::PhyloError;
use crate::tree::{GeneTree, NodeId, NodeRecord};

/// Entries per copy-on-write slab. 64 keeps a whole `u32` slab in four cache
/// lines and bounds the cost of materialising one mutated slab.
pub const SLAB_LEN: usize = 64;
const SLAB_SHIFT: usize = 6;
const SLAB_MASK: usize = SLAB_LEN - 1;

/// Column sentinel for "no node" (no parent / no child / no sibling /
/// no label).
pub const NO_NODE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Copy-on-write accounting
// ---------------------------------------------------------------------------

thread_local! {
    static SNAPSHOTS_TAKEN: Cell<u64> = const { Cell::new(0) };
    static SLAB_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static SLAB_COW_CLONES: Cell<u64> = const { Cell::new(0) };
    static SLAB_DROPS: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of this thread's copy-on-write counters.
///
/// Obtain two readings and subtract to assert exact slab traffic for a code
/// region — e.g. the O(1) snapshot test takes a snapshot between readings
/// and requires `slab_allocs`, `slab_cow_clones` *and* `slab_drops` deltas
/// of zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CowStats {
    /// Snapshots taken ([`TreeTables::snapshot`] / `GeneTree::clone`).
    pub snapshots: u64,
    /// Slabs allocated from scratch (tree construction).
    pub slab_allocs: u64,
    /// Slabs materialised by copy-on-write (a mutation hit a shared slab).
    pub slab_cow_clones: u64,
    /// Slabs freed.
    pub slab_drops: u64,
}

impl CowStats {
    /// Slabs currently alive that were created *and* dropped on this thread.
    pub fn live_slabs(&self) -> i64 {
        (self.slab_allocs + self.slab_cow_clones) as i64 - self.slab_drops as i64
    }

    /// Component-wise difference `self - earlier` (counter deltas).
    pub fn since(&self, earlier: &CowStats) -> CowStats {
        CowStats {
            snapshots: self.snapshots - earlier.snapshots,
            slab_allocs: self.slab_allocs - earlier.slab_allocs,
            slab_cow_clones: self.slab_cow_clones - earlier.slab_cow_clones,
            slab_drops: self.slab_drops - earlier.slab_drops,
        }
    }
}

/// Read this thread's copy-on-write counters.
pub fn cow_stats() -> CowStats {
    CowStats {
        snapshots: SNAPSHOTS_TAKEN.with(Cell::get),
        slab_allocs: SLAB_ALLOCS.with(Cell::get),
        slab_cow_clones: SLAB_COW_CLONES.with(Cell::get),
        slab_drops: SLAB_DROPS.with(Cell::get),
    }
}

// ---------------------------------------------------------------------------
// Slabs and columns
// ---------------------------------------------------------------------------

/// One fixed-size block of column entries. Creation, copy-on-write cloning
/// and destruction are counted so tests can assert slab traffic exactly.
#[derive(Debug)]
struct Slab<T> {
    data: [T; SLAB_LEN],
}

impl<T: Copy> Slab<T> {
    fn filled(fill: T) -> Self {
        SLAB_ALLOCS.with(|c| c.set(c.get() + 1));
        Slab { data: [fill; SLAB_LEN] }
    }
}

impl<T: Copy> Clone for Slab<T> {
    /// Invoked only by `Arc::make_mut` when a mutation hits a shared slab —
    /// this *is* the copy-on-write materialisation.
    fn clone(&self) -> Self {
        SLAB_COW_CLONES.with(|c| c.set(c.get() + 1));
        Slab { data: self.data }
    }
}

impl<T> Drop for Slab<T> {
    fn drop(&mut self) {
        SLAB_DROPS.with(|c| c.set(c.get() + 1));
    }
}

/// One column of the node table: an `Arc` directory of `Arc`-counted slabs.
/// Cloning a column bumps one reference count; writing through [`Column::set`]
/// materialises the directory and the touched slab only while shared.
#[derive(Debug, Clone)]
pub struct Column<T: Copy> {
    dir: Arc<Vec<Arc<Slab<T>>>>,
    len: usize,
}

impl<T: Copy> Column<T> {
    /// Build a column from `values`, padding the final slab with `fill`.
    pub fn from_values(values: &[T], fill: T) -> Self {
        let mut dir = Vec::with_capacity(values.len().div_ceil(SLAB_LEN));
        for block in values.chunks(SLAB_LEN) {
            let mut slab = Slab::filled(fill);
            slab.data[..block.len()].copy_from_slice(block);
            dir.push(Arc::new(slab));
        }
        Column { dir: Arc::new(dir), len: values.len() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read entry `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len, "column index {i} out of range for {} entries", self.len);
        self.dir[i >> SLAB_SHIFT].data[i & SLAB_MASK]
    }

    /// Write entry `i`, materialising the directory and the touched slab if
    /// they are still shared with a snapshot (copy-on-write).
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        debug_assert!(i < self.len, "column index {i} out of range for {} entries", self.len);
        let dir = Arc::make_mut(&mut self.dir);
        let slab = Arc::make_mut(&mut dir[i >> SLAB_SHIFT]);
        slab.data[i & SLAB_MASK] = value;
    }

    /// Apply `f` to every entry in place (used by whole-tree retiming).
    pub fn map_in_place(&mut self, mut f: impl FnMut(T) -> T) {
        let len = self.len;
        let dir = Arc::make_mut(&mut self.dir);
        for (s, arc) in dir.iter_mut().enumerate() {
            let slab = Arc::make_mut(arc);
            let fill = ((s + 1) * SLAB_LEN).min(len) - s * SLAB_LEN;
            for slot in &mut slab.data[..fill] {
                *slot = f(*slot);
            }
        }
    }

    /// Whether two columns share their slab directory (bit-identical by
    /// construction).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.dir, &other.dir)
    }

    /// Number of slabs backing the column.
    pub fn slab_count(&self) -> usize {
        self.dir.len()
    }

    /// Number of backing slabs currently shared with at least one snapshot.
    /// Sharing is hierarchical: while the slab *directory* itself is shared,
    /// every slab beneath it is shared; once a mutation materialises the
    /// directory, sharing is per-slab.
    pub fn shared_slab_count(&self) -> usize {
        if Arc::strong_count(&self.dir) > 1 {
            return self.dir.len();
        }
        self.dir.iter().filter(|slab| Arc::strong_count(slab) > 1).count()
    }

    /// Check the slab ledger: the directory must hold exactly the slabs the
    /// length requires — no truncated directory, no orphan slabs hanging off
    /// the end after copy-on-write traffic.
    fn check_ledger(&self, name: &str) -> Result<(), String> {
        let expected = self.len.div_ceil(SLAB_LEN);
        if self.dir.len() != expected {
            return Err(format!(
                "column {name}: {} slabs back {} entries (expected {expected})",
                self.dir.len(),
                self.len
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The node table
// ---------------------------------------------------------------------------

/// A columnar genealogy store: five node-table columns plus an interned
/// label arena, with O(1) copy-on-write [`TreeTables::snapshot`]s. See the
/// [module docs](self) for the layout and the sharing rules.
#[derive(Debug)]
pub struct TreeTables {
    parent: Column<u32>,
    left_child: Column<u32>,
    right_sib: Column<u32>,
    time: Column<f64>,
    label_id: Column<u32>,
    /// Interned tip labels, shared (never mutated) across every snapshot.
    labels: Arc<Vec<String>>,
    root: u32,
    n_tips: u32,
}

impl Clone for TreeTables {
    /// Cloning *is* snapshotting: six reference-count bumps, no node data
    /// copied. Counted in [`CowStats::snapshots`].
    fn clone(&self) -> Self {
        SNAPSHOTS_TAKEN.with(|c| c.set(c.get() + 1));
        TreeTables {
            parent: self.parent.clone(),
            left_child: self.left_child.clone(),
            right_sib: self.right_sib.clone(),
            time: self.time.clone(),
            label_id: self.label_id.clone(),
            labels: Arc::clone(&self.labels),
            root: self.root,
            n_tips: self.n_tips,
        }
    }
}

impl TreeTables {
    /// Build a node table from plain records in arena order. Id ranges are
    /// checked here; full structural validation is the caller's job (the
    /// [`GeneTree`] constructors run
    /// [`GeneTree::validate`](crate::tree::GeneTree::validate)).
    pub fn from_records(records: &[NodeRecord], root: NodeId) -> Result<Self, PhyloError> {
        let n = records.len();
        if root >= n {
            return Err(PhyloError::InvalidTree {
                message: format!("root id {root} out of range for {n} nodes"),
            });
        }
        for record in records {
            for id in record.parent.iter().chain(record.children.iter().flat_map(|(a, b)| [a, b])) {
                if *id >= n {
                    return Err(PhyloError::InvalidTree {
                        message: format!("node id {id} out of range for {n} nodes"),
                    });
                }
            }
        }
        let mut parent = vec![NO_NODE; n];
        let mut left_child = vec![NO_NODE; n];
        let mut right_sib = vec![NO_NODE; n];
        let mut time = vec![0.0f64; n];
        let mut label_id = vec![NO_NODE; n];
        let mut labels = Vec::new();
        let mut n_tips = 0u32;
        for (i, record) in records.iter().enumerate() {
            if let Some(p) = record.parent {
                parent[i] = p as u32;
            }
            if let Some((a, b)) = record.children {
                left_child[i] = a as u32;
                right_sib[a] = b as u32;
                right_sib[b] = NO_NODE;
            } else {
                n_tips += 1;
            }
            time[i] = record.time;
            if let Some(label) = &record.label {
                label_id[i] = labels.len() as u32;
                labels.push(label.clone());
            }
        }
        Ok(TreeTables {
            parent: Column::from_values(&parent, NO_NODE),
            left_child: Column::from_values(&left_child, NO_NODE),
            right_sib: Column::from_values(&right_sib, NO_NODE),
            time: Column::from_values(&time, 0.0),
            label_id: Column::from_values(&label_id, NO_NODE),
            labels: Arc::new(labels),
            root: root as u32,
            n_tips,
        })
    }

    /// Take an O(1) copy-on-write snapshot: reference-count bumps only, no
    /// per-node copying. Later mutations of either side materialise only the
    /// touched slabs.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Export the table as plain records, in arena order.
    pub fn to_records(&self) -> Vec<NodeRecord> {
        (0..self.n_nodes())
            .map(|i| NodeRecord {
                parent: self.parent_of(i),
                children: self.children_of(i),
                time: self.time_of(i),
                label: self.label_of(i).map(str::to_string),
            })
            .collect()
    }

    /// Total number of node slots.
    pub fn n_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Number of tips.
    pub fn n_tips(&self) -> usize {
        self.n_tips as usize
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root as usize
    }

    /// The parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        decode(self.parent.get(node))
    }

    /// The first child of `node`, or `None` for a tip.
    #[inline]
    pub fn left_child_of(&self, node: NodeId) -> Option<NodeId> {
        decode(self.left_child.get(node))
    }

    /// The next sibling of `node`: the second child of its parent when
    /// `node` is a first child, `None` otherwise.
    #[inline]
    pub fn right_sib_of(&self, node: NodeId) -> Option<NodeId> {
        decode(self.right_sib.get(node))
    }

    /// Both children of an interior node (first child, then its right
    /// sibling), or `None` for a tip.
    #[inline]
    pub fn children_of(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        let first = self.left_child_of(node)?;
        let second = self
            .right_sib_of(first)
            .expect("binary node table: a first child always has a right sibling");
        Some((first, second))
    }

    /// The time of `node`.
    #[inline]
    pub fn time_of(&self, node: NodeId) -> f64 {
        self.time.get(node)
    }

    /// Set the time of `node` (copy-on-write).
    #[inline]
    pub fn set_time_of(&mut self, node: NodeId, time: f64) {
        self.time.set(node, time);
    }

    /// The interned label of `node`, if it carries one.
    #[inline]
    pub fn label_of(&self, node: NodeId) -> Option<&str> {
        decode(self.label_id.get(node)).map(|id| self.labels[id].as_str())
    }

    /// Re-wire `node` to have children `(a, b)` (copy-on-write). The
    /// children's parent and sibling links are updated; the *previous*
    /// children of `node` keep their now-stale links and must be re-wired by
    /// the caller, exactly like the pointer representation this replaces.
    pub fn set_children_of(&mut self, node: NodeId, a: NodeId, b: NodeId) {
        assert!(node != a && node != b && a != b, "set_children requires three distinct nodes");
        self.left_child.set(node, a as u32);
        self.right_sib.set(a, b as u32);
        self.right_sib.set(b, NO_NODE);
        self.parent.set(a, node as u32);
        self.parent.set(b, node as u32);
    }

    /// Replace `old_child` with `new_child` among the children of `parent`
    /// (copy-on-write).
    ///
    /// # Panics
    /// Panics if `old_child` is not currently a child of `parent`.
    pub fn replace_child_of(&mut self, parent: NodeId, old_child: NodeId, new_child: NodeId) {
        let (a, b) = self.children_of(parent).expect("replace_child on a tip");
        if a == old_child {
            self.left_child.set(parent, new_child as u32);
            self.right_sib.set(new_child, b as u32);
        } else if b == old_child {
            self.right_sib.set(a, new_child as u32);
            self.right_sib.set(new_child, NO_NODE);
        } else {
            panic!("node {old_child} is not a child of {parent}");
        }
        self.parent.set(new_child, parent as u32);
    }

    /// Declare `node` the root: clears its parent *and* sibling links.
    pub fn set_root_node(&mut self, node: NodeId) {
        self.root = node as u32;
        self.parent.set(node, NO_NODE);
        self.right_sib.set(node, NO_NODE);
    }

    /// Multiply every node time by `factor` (copy-on-write over the whole
    /// time column).
    pub fn scale_times(&mut self, factor: f64) {
        self.time.map_in_place(|t| t * factor);
    }

    /// Whether `self` and `other` share every column directory and the label
    /// arena — a pointer-level fast path implying bit-identical contents.
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        self.parent.ptr_eq(&other.parent)
            && self.left_child.ptr_eq(&other.left_child)
            && self.right_sib.ptr_eq(&other.right_sib)
            && self.time.ptr_eq(&other.time)
            && self.label_id.ptr_eq(&other.label_id)
            && Arc::ptr_eq(&self.labels, &other.labels)
    }

    /// Total slabs backing the five columns.
    pub fn total_slabs(&self) -> usize {
        self.parent.slab_count()
            + self.left_child.slab_count()
            + self.right_sib.slab_count()
            + self.time.slab_count()
            + self.label_id.slab_count()
    }

    /// Slabs currently shared with at least one snapshot.
    pub fn shared_slabs(&self) -> usize {
        self.parent.shared_slab_count()
            + self.left_child.shared_slab_count()
            + self.right_sib.shared_slab_count()
            + self.time.shared_slab_count()
            + self.label_id.shared_slab_count()
    }

    /// Structural link check specific to the columnar encoding: every column
    /// ledger is exact (no orphan or missing slabs) and every *reachable*
    /// sibling link is consistent with the parent/left-child links — a first
    /// child's `right_sib` names its actual sibling, a second child's and the
    /// root's are cleared. Catches stale links leaking out of surgery.
    pub fn check_links(&self) -> Result<(), String> {
        for (column, name) in [
            (&self.parent, "parent"),
            (&self.left_child, "left_child"),
            (&self.right_sib, "right_sib"),
        ] {
            column.check_ledger(name)?;
        }
        self.time.check_ledger("time")?;
        self.label_id.check_ledger("label_id")?;
        for node in 0..self.n_nodes() {
            let lc = self.left_child.get(node);
            if lc == NO_NODE {
                continue;
            }
            let a = lc as usize;
            let rs_a = self.right_sib.get(a);
            if rs_a == NO_NODE {
                return Err(format!("first child {a} of {node} lost its right sibling"));
            }
            let b = rs_a as usize;
            let rs_b = self.right_sib.get(b);
            if rs_b != NO_NODE {
                return Err(format!("second child {b} of {node} has a dangling right_sib {rs_b}"));
            }
        }
        if self.right_sib_of(self.root()).is_some() {
            return Err(format!(
                "root {} has a dangling right_sib {:?}",
                self.root(),
                self.right_sib_of(self.root())
            ));
        }
        Ok(())
    }
}

#[inline]
fn decode(raw: u32) -> Option<NodeId> {
    if raw == NO_NODE {
        None
    } else {
        Some(raw as usize)
    }
}

// ---------------------------------------------------------------------------
// Representation-independent genealogy checking
// ---------------------------------------------------------------------------

/// Check the structural invariants of a genealogy given as plain records:
/// mutually consistent parent/child links, exactly one root (`root`, with no
/// parent), every node reachable exactly once, binary arity implied by the
/// record shape, parents strictly older than their children (the
/// "ultrametric-in-age" ordering; serially sampled tips are allowed), and
/// tips carrying labels that are unique.
///
/// The checker is deliberately representation-independent so the columnar
/// [`TreeTables`] suite and the legacy pointer-arena suite
/// ([`crate::tree::legacy`]) assert the *same* contract.
pub fn validate_genealogy_records(records: &[NodeRecord], root: NodeId) -> Result<(), String> {
    let n = records.len();
    if n == 0 {
        return Err("genealogy has no nodes".to_string());
    }
    let n_tips = records.iter().filter(|r| r.children.is_none()).count();
    if n != 2 * n_tips.max(1) - 1 {
        return Err(format!("expected {} nodes for {n_tips} tips, found {n}", 2 * n_tips - 1));
    }
    if root >= n {
        return Err(format!("root id {root} out of range for {n} nodes"));
    }
    if records[root].parent.is_some() {
        return Err(format!("root {root} has a parent"));
    }
    for (i, record) in records.iter().enumerate() {
        if i != root && record.parent.is_none() {
            return Err(format!("non-root node {i} has no parent"));
        }
        if let Some((a, b)) = record.children {
            if a.max(b) >= n {
                return Err(format!("node {i} has out-of-range child ({a}, {b})"));
            }
            if a == b {
                return Err(format!("node {i} lists child {a} twice"));
            }
            for child in [a, b] {
                if records[child].parent != Some(i) {
                    return Err(format!(
                        "parent/child asymmetry: {i} lists child {child}, but {child}'s parent \
                         is {:?}",
                        records[child].parent
                    ));
                }
                if records[child].time > record.time + 1e-12 {
                    return Err(format!(
                        "age inversion: child {child} (t={}) is older than parent {i} (t={})",
                        records[child].time, record.time
                    ));
                }
            }
        } else if record.label.is_none() {
            return Err(format!("tip {i} carries no label"));
        }
    }
    // Reachability: every node exactly once from the root.
    let mut seen = vec![false; n];
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if seen[node] {
            return Err(format!("node {node} reachable twice (cycle or shared child)"));
        }
        seen[node] = true;
        if let Some((a, b)) = records[node].children {
            stack.push(a);
            stack.push(b);
        }
    }
    if let Some(unreached) = seen.iter().position(|&s| !s) {
        return Err(format!("node {unreached} is not reachable from the root"));
    }
    // Label uniqueness across tips.
    let mut labels: Vec<&str> = records.iter().filter_map(|r| r.label.as_deref()).collect();
    labels.sort_unstable();
    if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!("duplicate tip label {:?}", dup[0]));
    }
    Ok(())
}

/// Assert every structural invariant of a columnar genealogy, panicking with
/// a pointed message on violation: the record-level contract of
/// [`validate_genealogy_records`] *plus* the columnar link/ledger checks of
/// [`TreeTables::check_links`]. Intended for test suites; the legacy
/// representation's suites call [`validate_genealogy_records`] on their
/// exported records to assert the shared half of the contract.
#[track_caller]
pub fn assert_valid_genealogy(tree: &GeneTree) {
    if let Err(message) = validate_genealogy_records(&tree.node_records(), tree.root()) {
        panic!("invalid genealogy: {message}");
    }
    if let Err(message) = tree.tables().check_links() {
        panic!("invalid genealogy tables: {message}");
    }
    if let Err(error) = tree.validate() {
        panic!("invalid genealogy (tree::validate): {error}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn chain_records(n_tips: usize) -> (Vec<NodeRecord>, NodeId) {
        let mut builder = TreeBuilder::new();
        let mut head = builder.add_tip("t0", 0.0);
        for k in 1..n_tips {
            let tip = builder.add_tip(format!("t{k}"), 0.0);
            head = builder.join(head, tip, k as f64);
        }
        let tree = builder.build().unwrap();
        (tree.node_records(), tree.root())
    }

    #[test]
    fn records_round_trip_through_the_columns() {
        let (records, root) = chain_records(9);
        let tables = TreeTables::from_records(&records, root).unwrap();
        assert_eq!(tables.to_records(), records);
        assert_eq!(tables.n_tips(), 9);
        assert_eq!(tables.n_nodes(), 17);
        tables.check_links().unwrap();
        validate_genealogy_records(&tables.to_records(), tables.root()).unwrap();
    }

    #[test]
    fn snapshot_is_o1_and_shares_every_slab() {
        // A tree big enough to span many slabs per column.
        let (records, root) = chain_records(200);
        let tables = TreeTables::from_records(&records, root).unwrap();
        assert!(tables.total_slabs() > 25, "fixture should span many slabs");
        assert_eq!(tables.shared_slabs(), 0);

        let before = cow_stats();
        let snap = tables.snapshot();
        let after = cow_stats();
        let delta = after.since(&before);
        assert_eq!(delta.snapshots, 1);
        assert_eq!(delta.slab_allocs, 0, "snapshot must allocate no slabs");
        assert_eq!(delta.slab_cow_clones, 0, "snapshot must clone no slabs");
        assert_eq!(delta.slab_drops, 0);
        assert!(tables.shares_storage_with(&snap));
        assert_eq!(tables.shared_slabs(), tables.total_slabs());
    }

    #[test]
    fn mutation_materialises_only_the_touched_slab() {
        let (records, root) = chain_records(200);
        let mut tables = TreeTables::from_records(&records, root).unwrap();
        let snap = tables.snapshot();

        let before = cow_stats();
        tables.set_time_of(0, 42.0);
        let delta = cow_stats().since(&before);
        // One slab of the time column materialised; the directory clone is
        // a Vec of Arcs, not a slab.
        assert_eq!(delta.slab_cow_clones, 1);
        assert_eq!(delta.slab_allocs, 0);

        // The snapshot is unaffected (value semantics).
        assert_eq!(snap.time_of(0), 0.0);
        assert_eq!(tables.time_of(0), 42.0);
        // Everything but one time slab is still shared.
        assert_eq!(tables.shared_slabs(), tables.total_slabs() - 1);

        // A second write to the same slab is free.
        let before = cow_stats();
        tables.set_time_of(1, 7.0);
        let delta = cow_stats().since(&before);
        assert_eq!(delta.slab_cow_clones, 0);
        assert_eq!(snap.time_of(1), 0.0);
    }

    #[test]
    fn dropping_snapshots_leaves_no_orphan_slabs() {
        let before = cow_stats();
        {
            let (records, root) = chain_records(150);
            let mut tables = TreeTables::from_records(&records, root).unwrap();
            let snaps: Vec<TreeTables> = (0..8).map(|_| tables.snapshot()).collect();
            // Mutate through several snapshot generations.
            for k in 0..tables.n_nodes() {
                tables.set_time_of(k, tables.time_of(k) + 1.0);
            }
            // Deliberately break the sibling links (node 4 = (2, 3) in the
            // chain layout; stealing 2's second child dangles rs[1]) …
            tables.replace_child_of(4, 2, 1);
            tables.check_links().unwrap_err();
            // … which copy-on-write must keep invisible to every snapshot:
            for snap in &snaps {
                snap.check_links().unwrap();
            }
            drop(snaps);
        }
        // every slab allocated or materialised in this scope is freed again.
        let delta = cow_stats().since(&before);
        assert_eq!(delta.live_slabs(), 0, "orphan slabs after CoW mutation: {delta:?}");
    }

    #[test]
    fn surgery_keeps_sibling_links_consistent() {
        let (records, root) = chain_records(5);
        let mut tables = TreeTables::from_records(&records, root).unwrap();
        let (a, b) = tables.children_of(root).unwrap();
        // Swap the root's children through replace_child (both arms).
        tables.replace_child_of(root, a, a);
        tables.check_links().unwrap();
        tables.replace_child_of(root, b, b);
        tables.check_links().unwrap();
        assert_eq!(tables.children_of(root), Some((a, b)));
    }

    #[test]
    fn validate_genealogy_records_rejects_broken_structures() {
        let (mut records, root) = chain_records(4);
        validate_genealogy_records(&records, root).unwrap();

        // Parent/child asymmetry.
        let mut bad = records.clone();
        bad[0].parent = Some(root);
        let err = validate_genealogy_records(&bad, root).unwrap_err();
        assert!(err.contains("asymmetry") || err.contains("reachable"), "{err}");

        // Age inversion.
        let mut bad = records.clone();
        bad[0].time = 1e9;
        let err = validate_genealogy_records(&bad, root).unwrap_err();
        assert!(err.contains("age inversion"), "{err}");

        // Duplicate tip labels.
        let mut bad = records.clone();
        let tips: Vec<usize> = (0..bad.len()).filter(|&i| bad[i].children.is_none()).collect();
        bad[tips[1]].label = bad[tips[0]].label.clone();
        let err = validate_genealogy_records(&bad, root).unwrap_err();
        assert!(err.contains("duplicate tip label"), "{err}");

        // Unlabelled tip.
        records[0].label = None;
        let err = validate_genealogy_records(&records, root).unwrap_err();
        assert!(err.contains("no label"), "{err}");
    }

    #[test]
    fn column_map_in_place_touches_only_the_filled_prefix() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut column = Column::from_values(&values, f64::NAN);
        let snap = column.clone();
        column.map_in_place(|x| x * 2.0);
        for i in 0..100 {
            assert_eq!(column.get(i), 2.0 * i as f64);
            assert_eq!(snap.get(i), i as f64);
        }
    }
}
